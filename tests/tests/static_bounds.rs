//! Property tests for the static certificate pass: the capacity-aware
//! cycle-ratio bound must upper-bound the exact (state-space) throughput
//! on arbitrary graphs, the dominance order the prune oracle relies on
//! must agree with the exact engine, and switching the oracle off must
//! leave every front byte-identical — at one worker and at the CI worker
//! count, for SDF and CSDF models alike.

use buffy_analysis::{
    throughput_for, Capacities, DataflowSemantics, ExplorationLimits, StaticBounds,
};
use buffy_core::{
    explore_dependency_guided_for, explore_design_space_for, lower_bound_distribution_for,
    ExplorationResult, ExploreOptions,
};
use buffy_csdf::CsdfGraph;
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::{ActorId, ChannelId, Rational, SdfGraph, StorageDistribution};
use buffy_integration_tests::test_threads;

fn random_graph(seed: u64) -> SdfGraph {
    RandomGraphConfig {
        actors: 4,
        extra_channels: 1,
        max_repetition: 2,
        max_rate_factor: 2,
        max_execution_time: 3,
        seed,
    }
    .generate()
}

/// A genuinely phased CSDF graph (not an embedded-SDF one).
fn burst_csdf() -> CsdfGraph {
    let mut b = CsdfGraph::builder("burst3");
    let p = b.actor("p", vec![1, 1, 1]);
    let c = b.actor("c", vec![2]);
    b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
    b.build().unwrap()
}

/// The lower-bound distribution and two componentwise-larger variants.
fn sample_distributions<M: DataflowSemantics>(model: &M) -> Vec<StorageDistribution> {
    let lb = lower_bound_distribution_for(model);
    let plus: StorageDistribution = lb.as_slice().iter().map(|&c| c + 2).collect();
    let doubled: StorageDistribution = lb.as_slice().iter().map(|&c| c * 2).collect();
    vec![lb, plus, doubled]
}

fn exact_throughput<M: DataflowSemantics>(
    model: &M,
    dist: &StorageDistribution,
    observed: ActorId,
) -> Option<(Rational, bool)> {
    throughput_for(
        model,
        Capacities::from_distribution(dist),
        observed,
        ExplorationLimits::default(),
    )
    .ok()
    .map(|r| (r.throughput, r.deadlocked))
}

/// The certificate (and every relaxed per-channel certificate) never
/// under-bounds the exact throughput, and a statically proven deadlock is
/// a real one.
fn assert_sound_certificates<M: DataflowSemantics>(model: &M, observed: ActorId, label: &str) {
    let Ok(bounds) = StaticBounds::new(model, observed) else {
        return;
    };
    if !bounds.is_usable() {
        return;
    }
    for dist in sample_distributions(model) {
        let Some(cert) = bounds.certificate(&dist) else {
            continue;
        };
        let Some((exact, deadlocked)) = exact_throughput(model, &dist, observed) else {
            continue;
        };
        assert!(
            cert.bound >= exact,
            "{label} {dist}: static bound {} below exact {exact}",
            cert.bound
        );
        if cert.deadlocked {
            // The deadlock direction is exact, not just a bound.
            assert!(deadlocked, "{label} {dist}: static deadlock but live run");
            assert_eq!(exact, Rational::ZERO);
        }
        for i in 0..model.num_channels() {
            let id = ChannelId::new(i);
            if let Some(relaxed) = bounds.channel_bound(id, dist.get(id)) {
                assert!(
                    relaxed.bound >= cert.bound,
                    "{label} {dist}: relaxing to channel {i} tightened the bound \
                     ({} < {})",
                    relaxed.bound,
                    cert.bound
                );
            }
        }
    }
}

#[test]
fn static_certificate_upper_bounds_exact_throughput_on_random_sdf_graphs() {
    for seed in 0..20 {
        let g = random_graph(3000 + seed);
        let label = format!("seed {seed}");
        assert_sound_certificates(&g, g.default_observed_actor(), &label);
    }
}

#[test]
fn static_certificate_upper_bounds_exact_throughput_on_gallery_graphs() {
    for g in [
        gallery::example(),
        gallery::bipartite(),
        gallery::modem(),
        gallery::cd2dat(),
    ] {
        assert_sound_certificates(&g, g.default_observed_actor(), g.name());
    }
}

#[test]
fn static_certificate_upper_bounds_exact_throughput_on_csdf_graphs() {
    let burst = burst_csdf();
    assert_sound_certificates(&burst, burst.default_observed_actor(), "burst3");
    for seed in 0..10 {
        let g = CsdfGraph::from_sdf(&random_graph(3100 + seed));
        let label = format!("embedded seed {seed}");
        assert_sound_certificates(&g, g.default_observed_actor(), &label);
    }
}

/// The monotone dominance the prune oracle exploits: a distribution that
/// dominates another (componentwise ≥ capacities) never runs slower.
#[test]
fn exact_throughput_respects_the_dominance_order() {
    for seed in 0..12 {
        let g = random_graph(3200 + seed);
        let obs = g.default_observed_actor();
        let dists = sample_distributions(&g);
        let evaluated: Vec<(StorageDistribution, Rational)> = dists
            .into_iter()
            .filter_map(|d| exact_throughput(&g, &d, obs).map(|(t, _)| (d, t)))
            .collect();
        for (d1, t1) in &evaluated {
            for (d2, t2) in &evaluated {
                if d1.dominates(d2) {
                    assert!(t1 >= t2, "seed {seed}: {d1} dominates {d2} but {t1} < {t2}");
                }
            }
        }
    }
}

/// The front rendered to bytes: distribution capacities included, so two
/// fronts compare byte-for-byte, not just by (size, throughput).
fn front_bytes(points: &[buffy_core::ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| format!("{};{};{}\n", p.size, p.throughput, p.distribution))
        .collect()
}

/// Runs `explore` with the oracle on and off, at one worker and at the
/// CI worker count, and demands byte-identical fronts throughout.
fn assert_prune_invisible<M, F>(model: &M, label: &str, explore: F)
where
    M: DataflowSemantics + Sync,
    F: Fn(&M, &ExploreOptions) -> ExplorationResult,
{
    let run = |threads: usize, static_prune: bool| {
        explore(
            model,
            &ExploreOptions {
                threads,
                static_prune,
                ..ExploreOptions::default()
            },
        )
    };
    let reference = run(1, false);
    for threads in [1, test_threads()] {
        let pruned = run(threads, true);
        assert_eq!(
            front_bytes(reference.pareto.points()),
            front_bytes(pruned.pareto.points()),
            "{label}: pruning changed the front at {threads} thread(s)"
        );
        assert_eq!(reference.max_throughput, pruned.max_throughput, "{label}");
        assert!(
            pruned.stats.evaluations <= reference.stats.evaluations,
            "{label}: pruning must never add evaluations"
        );
    }
}

#[test]
fn pruning_preserves_exhaustive_fronts_on_sdf_graphs() {
    for g in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        assert_prune_invisible(&g, g.name(), |m, o| explore_design_space_for(m, o).unwrap());
    }
    for seed in 0..8 {
        let g = random_graph(3300 + seed);
        let label = format!("seed {seed}");
        assert_prune_invisible(&g, &label, |m, o| explore_design_space_for(m, o).unwrap());
    }
}

#[test]
fn pruning_preserves_guided_fronts_on_sdf_graphs() {
    for g in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        assert_prune_invisible(&g, g.name(), |m, o| {
            explore_dependency_guided_for(m, o).unwrap()
        });
    }
    for seed in 0..8 {
        let g = random_graph(3400 + seed);
        let label = format!("seed {seed}");
        assert_prune_invisible(&g, &label, |m, o| {
            explore_dependency_guided_for(m, o).unwrap()
        });
    }
}

#[test]
fn pruning_preserves_fronts_on_csdf_graphs() {
    let burst = burst_csdf();
    let embedded = CsdfGraph::from_sdf(&gallery::example());
    for (label, g) in [("burst3", &burst), ("embedded example", &embedded)] {
        assert_prune_invisible(g, label, |m, o| explore_design_space_for(m, o).unwrap());
        assert_prune_invisible(g, label, |m, o| {
            explore_dependency_guided_for(m, o).unwrap()
        });
    }
}
