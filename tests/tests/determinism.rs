//! Cross-thread determinism of the exploration runtime.
//!
//! The runtime consumes candidate distributions in fixed-size chunks
//! regardless of the thread count, so a parallel exploration must produce
//! a byte-identical Pareto front *and* identical statistics (analyses
//! run, cache hits, largest state space) to the sequential one — on SDF
//! and CSDF models alike. These are regression tests for that guarantee:
//! any scheduling-dependent evaluation order would show up here as a
//! diverging evaluation count.

use buffy_core::{explore_design_space, ExplorationResult, ExploreOptions};
use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
use buffy_gen::gallery;
use buffy_graph::SdfGraph;
use buffy_integration_tests::test_threads;

fn explore_with(graph: &SdfGraph, threads: usize) -> ExplorationResult {
    explore_design_space(
        graph,
        &ExploreOptions {
            threads,
            ..ExploreOptions::default()
        },
    )
    .unwrap()
}

/// The front rendered to bytes: distribution capacities included, so two
/// fronts compare byte-for-byte, not just by (size, throughput).
fn front_bytes(points: &[buffy_core::ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| format!("{};{};{}\n", p.size, p.throughput, p.distribution))
        .collect()
}

#[test]
fn sdf_exploration_is_deterministic_across_thread_counts() {
    for graph in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let seq = explore_with(&graph, 1);
        let par = explore_with(&graph, test_threads());
        assert_eq!(
            front_bytes(seq.pareto.points()),
            front_bytes(par.pareto.points()),
            "{}: fronts must be byte-identical",
            graph.name()
        );
        // ExplorationStats compares evaluations, cache hits and max
        // states (wall time is exempt from equality by design).
        assert_eq!(
            seq.stats,
            par.stats,
            "{}: statistics must not depend on the thread count",
            graph.name()
        );
        assert_eq!(seq.max_throughput, par.max_throughput);
        assert_eq!(seq.lower_bound_size, par.lower_bound_size);
        assert_eq!(seq.upper_bound_size, par.upper_bound_size);
    }
}

#[test]
fn sdf_auto_detected_threads_match_sequential() {
    let graph = gallery::example();
    let seq = explore_with(&graph, 1);
    let auto = explore_with(&graph, 0); // 0 = available_parallelism
    assert_eq!(
        front_bytes(seq.pareto.points()),
        front_bytes(auto.pareto.points())
    );
    assert_eq!(seq.stats, auto.stats);
}

#[test]
fn csdf_exploration_is_deterministic_across_thread_counts() {
    // A genuinely phased graph and an embedded-SDF one.
    let mut b = CsdfGraph::builder("burst3");
    let p = b.actor("p", vec![1, 1, 1]);
    let c = b.actor("c", vec![2]);
    b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
    let burst = b.build().unwrap();
    let embedded = CsdfGraph::from_sdf(&gallery::example());

    for (name, graph) in [("burst3", &burst), ("example", &embedded)] {
        let run = |threads: usize| {
            csdf_explore(
                graph,
                &CsdfExploreOptions {
                    threads,
                    ..CsdfExploreOptions::default()
                },
            )
            .unwrap()
        };
        let seq = run(1);
        let par = run(test_threads());
        assert_eq!(
            front_bytes(seq.pareto.points()),
            front_bytes(par.pareto.points()),
            "{name}: fronts must be byte-identical"
        );
        assert_eq!(
            seq.stats, par.stats,
            "{name}: statistics must not depend on the thread count"
        );
    }
}
