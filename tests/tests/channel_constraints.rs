//! Tests of per-channel capacity constraints (paper §8: distributed
//! memories impose "extra constraints on the channel capacities", which
//! the exploration takes into account "straightforwardly as extra
//! constraints").

use buffy_core::{
    explore_dependency_guided, explore_design_space, min_storage_for_throughput, ExploreError,
    ExploreOptions,
};
use buffy_gen::gallery;
use buffy_graph::{Rational, StorageDistribution};

fn capped(alpha: u64, beta: u64) -> ExploreOptions {
    ExploreOptions {
        max_channel_caps: Some(StorageDistribution::from_capacities(vec![alpha, beta])),
        ..ExploreOptions::default()
    }
}

/// With α capped at 5, the example graph can reach at most throughput 1/6
/// (reaching 1/5 needs α ≥ 6): the front truncates accordingly and both
/// explorers agree.
#[test]
fn capped_alpha_truncates_front() {
    let g = gallery::example();
    let opts = capped(5, 100);
    let a = explore_design_space(&g, &opts).unwrap();
    let b = explore_dependency_guided(&g, &opts).unwrap();
    let front = |r: &buffy_core::ExplorationResult| {
        r.pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>()
    };
    assert_eq!(front(&a), front(&b));
    assert_eq!(
        a.pareto.maximal().unwrap().throughput,
        Rational::new(1, 6),
        "front: {:?}",
        a.pareto.points()
    );
    // Every witness respects the constraint.
    for p in a.pareto.points() {
        assert!(p.distribution.as_slice()[0] <= 5);
    }
}

/// Constraints tight enough to forbid any positive throughput are
/// reported.
#[test]
fn infeasible_caps_reported() {
    let g = gallery::example();
    // α ≤ 3 < its BMLB bound of 4: nothing can execute.
    let err = explore_design_space(&g, &capped(3, 100)).unwrap_err();
    assert!(matches!(err, ExploreError::NoPositiveThroughput));
}

/// `min_storage_for_throughput` honours the caps: a constraint achievable
/// in general becomes infeasible under them.
#[test]
fn constraint_query_respects_caps() {
    let g = gallery::example();
    // 1/7 is achievable with α ≤ 5 …
    let p = min_storage_for_throughput(&g, Rational::new(1, 7), &capped(5, 100)).unwrap();
    assert!(p.distribution.as_slice()[0] <= 5);
    assert_eq!(p.size, 6);
    // … but 1/5 is not.
    let err = min_storage_for_throughput(&g, Rational::new(1, 5), &capped(5, 100)).unwrap_err();
    assert!(matches!(err, ExploreError::InfeasibleThroughput { .. }));
}

/// Caps that never bind leave the results unchanged.
#[test]
fn loose_caps_are_neutral() {
    let g = gallery::example();
    let unconstrained = explore_design_space(&g, &ExploreOptions::default()).unwrap();
    let loose = explore_design_space(&g, &capped(1000, 1000)).unwrap();
    let front = |r: &buffy_core::ExplorationResult| {
        r.pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>()
    };
    assert_eq!(front(&unconstrained), front(&loose));
}
