//! End-to-end checks of every concrete number the paper states for its
//! running example (Fig. 1, Table 1, Figs. 3–5, §5–§9).

use buffy_analysis::{explore, maximal_throughput, throughput, ExplorationLimits, Schedule};
use buffy_core::{
    explore_dependency_guided, explore_design_space, lower_bound_distribution,
    min_storage_for_throughput, ExploreOptions,
};
use buffy_gen::gallery;
use buffy_graph::{Rational, RepetitionVector, StorageDistribution};

#[test]
fn repetition_vector_and_consistency() {
    let g = gallery::example();
    let q = RepetitionVector::compute(&g).unwrap();
    assert_eq!(q.as_slice(), &[3, 2, 1]);
}

/// §5: "the throughput of c is 1/7" under ⟨4, 2⟩ and c enters its periodic
/// phase firing every 7 time steps.
#[test]
fn section5_throughput_of_c() {
    let g = gallery::example();
    let c = g.actor_by_name("c").unwrap();
    let d = StorageDistribution::from_named(&g, &[("alpha", 4), ("beta", 2)]).unwrap();
    let r = throughput(&g, &d, c).unwrap();
    assert_eq!(r.throughput, Rational::new(1, 7));
    assert_eq!(r.period, 7);
}

/// §6/Fig. 3: the full state space under ⟨4, 2⟩ has a transient of 2 states
/// and one cycle of 7 states (Theorem 1, Property 1).
#[test]
fn fig3_full_state_space() {
    let g = gallery::example();
    let d = StorageDistribution::from_capacities(vec![4, 2]);
    let ss = explore(&g, &d, ExplorationLimits::default()).unwrap();
    assert_eq!(ss.cycle_start, Some(2));
    assert_eq!(ss.cycle_len(), 7);
    assert_eq!(ss.states.len(), 9);
    // The §6 trace: initial state (1,0,0,0,0) then (1,0,0,2,0).
    assert_eq!(ss.states[0].act_clk, vec![1, 0, 0]);
    assert_eq!(ss.states[0].tokens, vec![0, 0]);
    assert_eq!(ss.states[1].act_clk, vec![1, 0, 0]);
    assert_eq!(ss.states[1].tokens, vec![2, 0]);
}

/// §8: ⟨4,2⟩ and ⟨6,2⟩ are minimal storage distributions; ⟨5,2⟩ is not.
#[test]
fn section8_minimality() {
    let g = gallery::example();
    let c = g.actor_by_name("c").unwrap();
    let thr = |caps: Vec<u64>| {
        throughput(&g, &StorageDistribution::from_capacities(caps), c)
            .unwrap()
            .throughput
    };
    assert_eq!(thr(vec![4, 2]), Rational::new(1, 7));
    assert_eq!(thr(vec![5, 2]), Rational::new(1, 7)); // not minimal
    assert_eq!(thr(vec![6, 2]), Rational::new(1, 6));
}

/// §8/Fig. 5: the smallest positive-throughput distribution has size 6;
/// maximal throughput 1/4 is reached at size 10 and never exceeded.
#[test]
fn fig5_pareto_space() {
    let g = gallery::example();
    let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
    let front: Vec<(u64, Rational)> = r
        .pareto
        .points()
        .iter()
        .map(|p| (p.size, p.throughput))
        .collect();
    assert_eq!(
        front,
        vec![
            (6, Rational::new(1, 7)),
            (8, Rational::new(1, 6)),
            (9, Rational::new(1, 5)),
            (10, Rational::new(1, 4)),
        ]
    );
    // 4 Pareto points for the example graph (Table 2 row "#Pareto points").
    assert_eq!(r.pareto.len(), 4);
    let c = g.actor_by_name("c").unwrap();
    assert_eq!(maximal_throughput(&g, c).unwrap(), Rational::new(1, 4));
}

/// §8: the combined lower bound ⟨4, 2⟩ (size 6) coincides with the
/// smallest positive-throughput distribution for this graph.
#[test]
fn fig7_bounds() {
    let g = gallery::example();
    let lb = lower_bound_distribution(&g);
    assert_eq!(lb.as_slice(), &[4, 2]);
    let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
    assert_eq!(r.lower_bound_size, 6);
    assert_eq!(r.pareto.minimal().unwrap().size, 6);
}

/// Table 1: the self-timed schedule under ⟨4, 2⟩ has a 2-step transient
/// (two firings of a) and a 7-step periodic phase, and it is admissible.
#[test]
fn table1_schedule() {
    let g = gallery::example();
    let d = StorageDistribution::from_capacities(vec![4, 2]);
    let s = Schedule::extract(&g, &d, ExplorationLimits::default()).unwrap();
    assert_eq!(s.period(), Some(7));
    assert_eq!(s.period_entry(), Some(2));
    s.validate(&g, &d).unwrap();

    let a = g.actor_by_name("a").unwrap();
    let b = g.actor_by_name("b").unwrap();
    let c = g.actor_by_name("c").unwrap();
    // Per period: a fires 3×, b 2×, c 1× (the repetition vector).
    let count = |actor| s.periodic_firings().filter(|f| f.actor == actor).count();
    assert_eq!(count(a), 3);
    assert_eq!(count(b), 2);
    assert_eq!(count(c), 1);
}

/// The paper's headline use case: minimal storage for a given throughput
/// constraint, across all the levels of Fig. 5.
#[test]
fn throughput_constraints() {
    let g = gallery::example();
    let opts = ExploreOptions::default();
    for (constraint, size) in [
        (Rational::new(1, 1000), 6),
        (Rational::new(1, 7), 6),
        (Rational::new(1, 6), 8),
        (Rational::new(4, 21), 9), // between 1/6 and 1/5
        (Rational::new(1, 5), 9),
        (Rational::new(1, 4), 10),
    ] {
        let p = min_storage_for_throughput(&g, constraint, &opts).unwrap();
        assert_eq!(p.size, size, "constraint {constraint}");
    }
}

/// Both exploration algorithms chart the same front, and every Pareto
/// witness produces a valid schedule realizing its throughput (§10: "if
/// the explored graph and storage distribution form a Pareto point, a
/// schedule is generated").
#[test]
fn algorithms_agree_and_witnesses_schedule() {
    let g = gallery::example();
    let opts = ExploreOptions::default();
    let a = explore_design_space(&g, &opts).unwrap();
    let b = explore_dependency_guided(&g, &opts).unwrap();
    let front = |r: &buffy_core::ExplorationResult| {
        r.pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>()
    };
    assert_eq!(front(&a), front(&b));

    let c = g.actor_by_name("c").unwrap();
    for p in a.pareto.points() {
        let s = Schedule::extract(&g, &p.distribution, ExplorationLimits::default()).unwrap();
        s.validate(&g, &p.distribution).unwrap();
        assert_eq!(s.throughput_of(c), p.throughput);
    }
}
