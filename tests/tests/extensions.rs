//! Integration tests for the extension modules: latency, shared-memory
//! peaks, the capacity-as-channels transformation, and the CSDF crate —
//! all cross-validated against the core SDF analyses.

use buffy_analysis::{
    latency, shared_memory_peak, throughput, throughput_with_capacities, transform, Capacities,
    ExplorationLimits,
};
use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_csdf::{csdf_explore, csdf_throughput, CsdfExploreOptions, CsdfGraph, CsdfLimits};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::{Rational, StorageDistribution};

/// On every Pareto point of the small gallery graphs: the latency report
/// is consistent with the throughput report (average output interval =
/// 1/throughput).
#[test]
fn latency_consistent_with_throughput() {
    for g in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let obs = g.default_observed_actor();
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let lat = latency(&g, &p.distribution, obs, ExplorationLimits::default()).unwrap();
            assert!(!lat.deadlocked);
            let min = lat.min_output_interval.unwrap();
            let max = lat.max_output_interval.unwrap();
            // 1/throughput is the mean interval; it must lie within
            // [min, max].
            let mean = p.throughput.recip();
            assert!(
                Rational::from(min) <= mean && mean <= Rational::from(max),
                "{}: mean {} outside [{min}, {max}]",
                g.name(),
                mean
            );
            assert!(lat.initial_latency.unwrap() >= 1);
        }
    }
}

/// Shared-memory peak is bounded by the distribution size on every Pareto
/// point, and by the sum of per-channel peaks.
#[test]
fn shared_memory_bounded_by_distribution() {
    for g in [gallery::example(), gallery::cd2dat(), gallery::satellite()] {
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let mem =
                shared_memory_peak(&g, &p.distribution, ExplorationLimits::default()).unwrap();
            assert!(mem.peak_tokens <= p.size, "{}", g.name());
            assert!(mem.peak_tokens <= mem.sum_of_channel_peaks);
            assert!(mem.sum_of_channel_peaks <= p.size);
        }
    }
}

/// The capacity-as-channels transformation preserves throughput on random
/// graphs and random distributions.
#[test]
fn transformation_preserves_throughput_on_random_graphs() {
    for seed in 0..10 {
        let g = RandomGraphConfig {
            actors: 4,
            extra_channels: 1,
            max_repetition: 3,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed: 3000 + seed,
        }
        .generate();
        let obs = g.default_observed_actor();
        let lb = buffy_core::lower_bound_distribution(&g);
        for extra in [0u64, 1, 3] {
            let dist: StorageDistribution = lb.as_slice().iter().map(|&c| c + extra).collect();
            let original = throughput(&g, &dist, obs).unwrap();
            let t = match transform::capacities_as_channels(&g, &dist) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let transformed = throughput_with_capacities(
                &t,
                Capacities::unbounded(t.num_channels()),
                t.actor_by_name(g.actor(obs).name()).unwrap(),
                ExplorationLimits::default(),
            )
            .unwrap();
            assert_eq!(
                original.throughput, transformed.throughput,
                "seed {seed} extra {extra}"
            );
        }
    }
}

/// The CSDF embedding of every gallery graph reproduces the SDF
/// throughput at the Pareto distributions.
#[test]
fn csdf_embedding_matches_sdf_gallery() {
    for g in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let obs = g.default_observed_actor();
        let csdf = CsdfGraph::from_sdf(&g);
        let obs_c = csdf.actor_by_name(g.actor(obs).name()).unwrap();
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let sdf_r = throughput(&g, &p.distribution, obs).unwrap();
            let csdf_r =
                csdf_throughput(&csdf, &p.distribution, obs_c, CsdfLimits::default()).unwrap();
            assert_eq!(sdf_r.throughput, csdf_r.throughput, "{}", g.name());
        }
    }
}

/// The CSDF explorer reproduces the SDF Pareto front through the
/// single-phase embedding on random graphs.
#[test]
fn csdf_explore_matches_sdf_front_on_random_graphs() {
    let mut compared = 0;
    for seed in 0..8 {
        let g = RandomGraphConfig {
            actors: 4,
            extra_channels: 1,
            max_repetition: 2,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed: 4000 + seed,
        }
        .generate();
        let Ok(sdf_result) = explore_dependency_guided(&g, &ExploreOptions::default()) else {
            continue;
        };
        let csdf = CsdfGraph::from_sdf(&g);
        let obs = csdf
            .actor_by_name(g.actor(g.default_observed_actor()).name())
            .unwrap();
        let csdf_result = csdf_explore(
            &csdf,
            &CsdfExploreOptions {
                observed: Some(obs),
                ..CsdfExploreOptions::default()
            },
        )
        .unwrap();
        let sdf_front: Vec<(u64, Rational)> = sdf_result
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        let csdf_front: Vec<(u64, Rational)> = csdf_result
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(sdf_front, csdf_front, "seed {}", 4000 + seed);
        compared += 1;
    }
    assert!(compared >= 4, "too few comparable graphs: {compared}");
}

/// The constrained search must probe realizable grid sizes only. Seed
/// 4004 generates a graph whose four channels all have step 2 and whose
/// combined lower bound (size 12) deadlocks; the cheapest live size is 14
/// with throughput 1/9. A binary search probing the hole at size 15 would
/// find no distributions there and wrongly answer 16.
#[test]
fn min_storage_lands_on_realizable_sizes() {
    let g = RandomGraphConfig {
        actors: 4,
        extra_channels: 1,
        max_repetition: 2,
        max_rate_factor: 2,
        max_execution_time: 3,
        seed: 4004,
    }
    .generate();
    let p = buffy_core::min_storage_for_throughput(&g, Rational::new(1, 9), &Default::default())
        .unwrap();
    assert_eq!(p.size, 14);
    assert_eq!(p.throughput, Rational::new(1, 9));
}

/// A genuinely cyclo-static behaviour SDF cannot express: zero-rate
/// phases let a smaller buffer reach the same throughput as the SDF
/// worst-case abstraction.
#[test]
fn csdf_needs_less_buffer_than_sdf_abstraction() {
    // CSDF producer: phases (1,1) produce (2,0) — 2 tokens per 2 steps.
    let mut b = CsdfGraph::builder("csdf");
    let p = b.actor("p", vec![1, 1]);
    let c = b.actor("c", vec![1]);
    b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
    let csdf = b.build().unwrap();
    let r = csdf_throughput(
        &csdf,
        &StorageDistribution::from_capacities(vec![4]),
        c,
        CsdfLimits::default(),
    )
    .unwrap();
    assert_eq!(r.throughput, Rational::ONE);

    // SDF abstraction: one firing per 2 steps producing 2 tokens needs
    // BMLB 2+1-1 = 2, but for throughput 1 of c it needs capacity 4 too;
    // the distinction shows at capacity 2: CSDF deadlock-free with thr
    // 2/3, SDF 1/2 (the SDF burst blocks longer).
    let mut b = buffy_graph::SdfGraph::builder("sdf");
    let p = b.actor("p", 2);
    let c = b.actor("c", 1);
    b.channel("d", p, 2, c, 1).unwrap();
    let sdf = b.build().unwrap();
    let sdf_r = throughput(&sdf, &StorageDistribution::from_capacities(vec![2]), c).unwrap();
    let csdf_r = csdf_throughput(
        &csdf,
        &StorageDistribution::from_capacities(vec![2]),
        csdf.actor_by_name("c").unwrap(),
        CsdfLimits::default(),
    )
    .unwrap();
    assert!(
        csdf_r.throughput >= sdf_r.throughput,
        "CSDF {} vs SDF {}",
        csdf_r.throughput,
        sdf_r.throughput
    );
}
