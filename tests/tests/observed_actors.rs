//! Paper §5: "the throughput of each pair of actors in a graph is related
//! to each other via a constant" — the ratio of their repetition-vector
//! entries. These tests pin that property across analyses and explorers.

use buffy_analysis::{maximal_throughput, throughput};
use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::{Rational, RepetitionVector};

/// Under any storage distribution, thr(a)/thr(b) = q(a)/q(b) for every
/// actor pair (gallery graphs, Pareto witnesses).
#[test]
fn throughputs_scale_with_repetition_vector() {
    for g in [gallery::example(), gallery::bipartite(), gallery::cd2dat()] {
        let q = RepetitionVector::compute(&g).unwrap();
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let per_actor: Vec<Rational> = g
                .actor_ids()
                .map(|a| throughput(&g, &p.distribution, a).unwrap().throughput)
                .collect();
            for a in g.actor_ids() {
                for b in g.actor_ids() {
                    assert_eq!(
                        per_actor[a.index()] * Rational::from(q[b]),
                        per_actor[b.index()] * Rational::from(q[a]),
                        "{}: actors {a}/{b} at γ = {}",
                        g.name(),
                        p.distribution
                    );
                }
            }
        }
    }
}

/// The same scaling holds for the maximal (MCM-based) throughput.
#[test]
fn maximal_throughputs_scale_with_repetition_vector() {
    for seed in 0..8 {
        let g = RandomGraphConfig {
            actors: 5,
            extra_channels: 1,
            max_repetition: 3,
            max_rate_factor: 2,
            max_execution_time: 4,
            seed: 5000 + seed,
        }
        .generate();
        let q = RepetitionVector::compute(&g).unwrap();
        let values: Vec<_> = g.actor_ids().map(|a| maximal_throughput(&g, a)).collect();
        if values.iter().any(|v| v.is_err()) {
            continue; // token-free cycle
        }
        let values: Vec<Rational> = values.into_iter().map(|v| v.unwrap()).collect();
        for a in g.actor_ids() {
            for b in g.actor_ids() {
                assert_eq!(
                    values[a.index()] * Rational::from(q[b]),
                    values[b.index()] * Rational::from(q[a]),
                    "seed {} actors {a}/{b}",
                    5000 + seed
                );
            }
        }
    }
}

/// Exploring with a different observed actor yields a front with the same
/// distribution sizes and proportionally scaled throughputs.
#[test]
fn exploration_fronts_scale_between_observed_actors() {
    let g = gallery::example();
    let q = RepetitionVector::compute(&g).unwrap();
    let a = g.actor_by_name("a").unwrap();
    let c = g.actor_by_name("c").unwrap();
    let front = |obs| {
        explore_dependency_guided(
            &g,
            &ExploreOptions {
                observed: Some(obs),
                ..ExploreOptions::default()
            },
        )
        .unwrap()
    };
    let fa = front(a);
    let fc = front(c);
    assert_eq!(fa.pareto.len(), fc.pareto.len());
    let ratio = Rational::new(q[a] as i128, q[c] as i128);
    for (pa, pc) in fa.pareto.points().iter().zip(fc.pareto.points()) {
        assert_eq!(pa.size, pc.size);
        assert_eq!(pa.throughput, pc.throughput * ratio);
    }
}
