//! Behavioural checks of the six experimental graphs (paper §11,
//! Table 2): structural counts, liveness, and sane Pareto fronts.

use buffy_analysis::throughput;
use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_gen::gallery;
use buffy_graph::{Rational, SdfGraph, StorageDistribution};

/// Exploration options per graph: the H.263 decoder's space is capped in
/// debug-mode tests (its full exploration is exercised by the Table 2
/// harness and release benches).
fn options_for(g: &SdfGraph) -> ExploreOptions {
    ExploreOptions {
        max_size: (g.name() == "h263decoder").then_some(1210),
        ..ExploreOptions::default()
    }
}

/// Every gallery graph explores successfully and yields a strictly
/// monotone Pareto front whose top equals the maximal throughput.
#[test]
fn all_gallery_fronts_are_monotone() {
    for g in gallery::all() {
        let capped = g.name() == "h263decoder";
        let r = explore_dependency_guided(&g, &options_for(&g))
            .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        let pts = r.pareto.points();
        assert!(!pts.is_empty(), "{}: empty front", g.name());
        for w in pts.windows(2) {
            assert!(w[0].size < w[1].size, "{}: sizes not increasing", g.name());
            assert!(
                w[0].throughput < w[1].throughput,
                "{}: throughputs not increasing",
                g.name()
            );
        }
        if !capped {
            assert_eq!(
                r.pareto.maximal().unwrap().throughput,
                r.max_throughput,
                "{}: front must reach the maximal throughput",
                g.name()
            );
        }
        assert!(r.pareto.minimal().unwrap().size >= r.lower_bound_size);
        assert!(r.pareto.maximal().unwrap().size <= r.upper_bound_size);
    }
}

/// Fig. 6 property one: either α or β must exceed its lower bound of 1 for
/// a positive throughput — the combined lower bound ⟨1,1,1,1⟩ deadlocks.
#[test]
fn bipartite_lower_bound_deadlocks() {
    let g = gallery::bipartite();
    let d = g.actor_by_name("d").unwrap();
    let lb = StorageDistribution::from_capacities(vec![1, 1, 1, 1]);
    let r = throughput(&g, &lb, d).unwrap();
    assert!(r.deadlocked);

    // Raising either ring channel unblocks the graph.
    for caps in [vec![2, 1, 1, 1], vec![1, 2, 1, 1]] {
        let r = throughput(&g, &StorageDistribution::from_capacities(caps), d).unwrap();
        assert!(!r.deadlocked);
    }
}

/// Fig. 6 property two: storage distributions ⟨1,2,3,3⟩ and ⟨2,1,3,3⟩
/// realize the same throughput for actor d — minimal storage
/// distributions are not unique (§8).
#[test]
fn bipartite_minimal_distributions_not_unique() {
    let g = gallery::bipartite();
    let d = g.actor_by_name("d").unwrap();
    let t1 = throughput(
        &g,
        &StorageDistribution::from_capacities(vec![1, 2, 3, 3]),
        d,
    )
    .unwrap()
    .throughput;
    let t2 = throughput(
        &g,
        &StorageDistribution::from_capacities(vec![2, 1, 3, 3]),
        d,
    )
    .unwrap()
    .throughput;
    assert_eq!(t1, t2);
    assert!(t1 > Rational::ZERO);
}

/// The H.263 decoder's design space contains many Pareto points whose
/// throughputs lie close together — the paper's motivation for
/// quantization (§11) — and quantizing shrinks the reported front
/// drastically.
#[test]
fn h263_quantization_thins_the_front() {
    let g = gallery::h263_decoder();
    // Capped search window (the full space is explored by the Table 2
    // harness); the window already contains several close Pareto points.
    let base = options_for(&g);
    let full = explore_dependency_guided(&g, &base).unwrap();
    assert!(
        full.pareto.len() >= 8,
        "H.263 should expose many close Pareto points, got {}",
        full.pareto.len()
    );
    let quantized = explore_dependency_guided(
        &g,
        &ExploreOptions {
            quantum: Some(Rational::new(1, 100_000)),
            ..base
        },
    )
    .unwrap();
    assert!(quantized.pareto.len() * 2 <= full.pareto.len());
    assert!(!quantized.pareto.is_empty());
}

/// The state spaces stay small across the gallery (Table 2 "maximum
/// #states" row reports small numbers).
#[test]
fn gallery_state_spaces_stay_small() {
    for g in gallery::all() {
        let r = explore_dependency_guided(&g, &options_for(&g)).unwrap();
        assert!(
            r.stats.max_states < 2_000,
            "{}: {} states",
            g.name(),
            r.stats.max_states
        );
    }
}

/// cd2dat: the front's smallest distribution matches the sum of the
/// per-channel BMLB bounds (32), as for the example graph.
#[test]
fn cd2dat_minimum_is_the_combined_lower_bound() {
    let g = gallery::cd2dat();
    let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
    assert_eq!(r.lower_bound_size, 32);
    assert_eq!(r.pareto.minimal().unwrap().size, 32);
}
