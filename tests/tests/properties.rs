//! Property-based tests on randomly generated consistent SDF graphs and
//! random rationals: the invariants the paper's algorithms rest on.
//!
//! Deterministic seeded-loop style: each property draws many cases from
//! the in-repo [`SplitMix64`] stream; the failing case index is part of
//! the assertion message, so failures reproduce directly.

use buffy_analysis::{throughput, ExplorationLimits, Schedule};
use buffy_core::{channel_lower_bound, lower_bound_distribution, DistributionSpace};
use buffy_gen::{RandomGraphConfig, SplitMix64};
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::{Rational, RepetitionVector, SdfGraph, StorageDistribution};

const CASES: u64 = 48;

/// A small random consistent graph drawn from `rng`.
fn small_graph(rng: &mut SplitMix64) -> SdfGraph {
    RandomGraphConfig {
        actors: rng.range_usize(3, 6),
        extra_channels: rng.range_usize(0, 3),
        max_repetition: rng.range_u64(1, 3),
        max_rate_factor: 2,
        max_execution_time: rng.range_u64(1, 2),
        seed: rng.range_u64(0, 499),
    }
    .generate()
}

fn small_rational(rng: &mut SplitMix64) -> Rational {
    let n = rng.range_u64(0, 2000) as i128 - 1000;
    let d = rng.range_u64(1, 99) as i128;
    Rational::new(n, d)
}

/// Rational arithmetic laws used throughout the exploration.
#[test]
fn rational_field_laws() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0001);
    for case in 0..CASES * 4 {
        let a = small_rational(&mut rng);
        let b = small_rational(&mut rng);
        let c = small_rational(&mut rng);
        assert_eq!(a + b, b + a, "case {case}");
        assert_eq!((a + b) + c, a + (b + c), "case {case}");
        assert_eq!(a * (b + c), a * b + a * c, "case {case}");
        assert_eq!(a - a, Rational::ZERO, "case {case}");
        if !b.is_zero() {
            assert_eq!((a / b) * b, a, "case {case}");
        }
        // Ordering is total and consistent with subtraction.
        assert_eq!(a < b, (a - b).numer() < 0, "case {case}");
    }
}

/// Parsing a displayed rational returns the same value.
#[test]
fn rational_display_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0002);
    for case in 0..CASES * 4 {
        let n = rng.range_u64(0, 20_000) as i128 - 10_000;
        let d = rng.range_u64(1, 9_999) as i128;
        let r = Rational::new(n, d);
        let back: Rational = r.to_string().parse().unwrap();
        assert_eq!(r, back, "case {case}");
    }
}

/// The repetition vector solves the balance equations and is minimal
/// (component-wise gcd 1).
#[test]
fn repetition_vector_balances() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0003);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let q = RepetitionVector::compute(&g).unwrap();
        for (_, ch) in g.channels() {
            assert_eq!(
                q[ch.source()] * ch.production(),
                q[ch.target()] * ch.consumption(),
                "case {case}: channel {}",
                ch.name()
            );
        }
        let gcd = q
            .as_slice()
            .iter()
            .fold(0u64, |acc, &e| buffy_graph::gcd_u64(acc, e));
        assert_eq!(gcd, 1, "case {case}");
    }
}

/// SDF3-style XML round-trips every generated graph exactly.
#[test]
fn xml_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0004);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let text = write_sdf_xml(&g);
        let back = read_sdf_xml(&text).unwrap();
        assert_eq!(g, back, "case {case}");
    }
}

/// Throughput is monotone in the storage distribution (the property §9's
/// divide-and-conquer and binary search rely on).
#[test]
fn throughput_monotone() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0005);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let n_bumps = rng.range_usize(1, 4);
        let bumps: Vec<usize> = (0..n_bumps).map(|_| rng.range_usize(0, 8)).collect();
        let obs = g.default_observed_actor();
        let base = lower_bound_distribution(&g);
        let Ok(t0) = throughput(&g, &base, obs).map(|r| r.throughput) else {
            continue;
        };
        let mut grown = base.clone();
        for b in bumps {
            let cid = buffy_graph::ChannelId::new(b % g.num_channels());
            grown = grown.grown(cid, 1 + (b as u64 % 3));
        }
        let Ok(t1) = throughput(&g, &grown, obs).map(|r| r.throughput) else {
            continue;
        };
        assert!(
            t1 >= t0,
            "case {case}: thr {t0} -> {t1} when growing {base} -> {grown}"
        );
    }
}

/// Self-timed schedules extracted for arbitrary distributions are always
/// admissible, and their throughput matches the reduced analysis.
#[test]
fn schedules_always_validate() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0006);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let extra = rng.range_u64(0, 5);
        let obs = g.default_observed_actor();
        let dist: StorageDistribution = g
            .channels()
            .map(|(_, c)| channel_lower_bound(c) + extra)
            .collect();
        let limits = ExplorationLimits::default();
        let Ok(s) = Schedule::extract(&g, &dist, limits) else {
            continue;
        };
        assert!(s.validate(&g, &dist).is_ok(), "case {case}");
        let r = throughput(&g, &dist, obs).unwrap();
        assert_eq!(s.throughput_of(obs), r.throughput, "case {case}");
    }
}

/// Distribution enumeration covers exactly the grid: every enumerated
/// distribution has the requested size, respects the per-channel
/// minimums, and distinct sizes never overlap.
#[test]
fn enumeration_is_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0007);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let extra = rng.range_u64(0, 4);
        let space = DistributionSpace::of(&g);
        let size = space.min_size() + extra;
        let all = space.all_of_size(size);
        let lb = lower_bound_distribution(&g);
        for d in &all {
            assert_eq!(d.size(), size, "case {case}");
            assert!(d.dominates(&lb), "case {case}");
        }
        // No duplicates.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "case {case}");
    }
}

/// The BMLB per-channel bound is tight for an isolated two-actor channel:
/// capacity bound−1 deadlocks, capacity bound is live.
#[test]
fn bmlb_tight_on_isolated_channel() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0008);
    for case in 0..CASES * 2 {
        let p = rng.range_u64(1, 6);
        let c = rng.range_u64(1, 6);
        let d = rng.range_u64(0, 4);
        let mut b = SdfGraph::builder("iso");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("ch", x, p, y, c, d).unwrap();
        let g = b.build().unwrap();
        let y = g.actor_by_name("y").unwrap();
        let bound = channel_lower_bound(g.channel(g.channel_by_name("ch").unwrap()));
        let at = throughput(&g, &StorageDistribution::from_capacities(vec![bound]), y).unwrap();
        assert!(
            !at.deadlocked,
            "case {case}: capacity {bound} should be live"
        );
        if bound > d {
            // Below the bound (but still holding the initial tokens) the
            // channel must eventually deadlock.
            let below = throughput(
                &g,
                &StorageDistribution::from_capacities(vec![bound - 1]),
                y,
            )
            .unwrap();
            assert!(
                below.deadlocked,
                "case {case}: capacity {} should deadlock",
                bound - 1
            );
        }
    }
}
