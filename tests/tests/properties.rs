//! Property-based tests (proptest) on randomly generated consistent SDF
//! graphs and random rationals: the invariants the paper's algorithms
//! rest on.

use buffy_analysis::{throughput, ExplorationLimits, Schedule};
use buffy_core::{channel_lower_bound, lower_bound_distribution, DistributionSpace};
use buffy_gen::RandomGraphConfig;
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::{Rational, RepetitionVector, SdfGraph, StorageDistribution};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = SdfGraph> {
    (0u64..500, 3usize..6, 0usize..3, 1u64..4, 1u64..3).prop_map(
        |(seed, actors, extra, max_rep, max_exec)| {
            RandomGraphConfig {
                actors,
                extra_channels: extra,
                max_repetition: max_rep,
                max_rate_factor: 2,
                max_execution_time: max_exec,
                seed,
            }
            .generate()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rational arithmetic laws used throughout the exploration.
    #[test]
    fn rational_field_laws(an in -1000i128..1000, ad in 1i128..100,
                           bn in -1000i128..1000, bd in 1i128..100,
                           cn in -1000i128..1000, cd in 1i128..100) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
        // Ordering is total and consistent with subtraction.
        prop_assert_eq!(a < b, (a - b).numer() < 0);
    }

    /// Parsing a displayed rational returns the same value.
    #[test]
    fn rational_display_roundtrip(n in -10_000i128..10_000, d in 1i128..10_000) {
        let r = Rational::new(n, d);
        let back: Rational = r.to_string().parse().unwrap();
        prop_assert_eq!(r, back);
    }

    /// The repetition vector solves the balance equations and is minimal
    /// (component-wise gcd 1).
    #[test]
    fn repetition_vector_balances(g in small_graph()) {
        let q = RepetitionVector::compute(&g).unwrap();
        for (_, ch) in g.channels() {
            prop_assert_eq!(
                q[ch.source()] * ch.production(),
                q[ch.target()] * ch.consumption()
            );
        }
        let gcd = q.as_slice().iter().fold(0u64, |acc, &e| buffy_graph::gcd_u64(acc, e));
        prop_assert_eq!(gcd, 1);
    }

    /// SDF3-style XML round-trips every generated graph exactly.
    #[test]
    fn xml_roundtrip(g in small_graph()) {
        let text = write_sdf_xml(&g);
        let back = read_sdf_xml(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    /// Throughput is monotone in the storage distribution (the property
    /// §9's divide-and-conquer and binary search rely on).
    #[test]
    fn throughput_monotone(g in small_graph(), bumps in proptest::collection::vec(0usize..8, 1..4)) {
        let obs = g.default_observed_actor();
        let base = lower_bound_distribution(&g);
        let limits = ExplorationLimits { max_states: 1 << 16, max_steps: 1 << 22 };
        let Ok(t0) = throughput(&g, &base, obs).map(|r| r.throughput) else { return Ok(()); };
        let mut grown = base.clone();
        for b in bumps {
            let cid = buffy_graph::ChannelId::new(b % g.num_channels());
            grown = grown.grown(cid, 1 + (b as u64 % 3));
        }
        let Ok(t1) = throughput(&g, &grown, obs).map(|r| r.throughput) else { return Ok(()); };
        let _ = limits;
        prop_assert!(t1 >= t0, "thr {} -> {} when growing {} -> {}", t0, t1, base, grown);
    }

    /// Self-timed schedules extracted for arbitrary distributions are
    /// always admissible, and their throughput matches the reduced
    /// analysis.
    #[test]
    fn schedules_always_validate(g in small_graph(), extra in 0u64..6) {
        let obs = g.default_observed_actor();
        let dist: StorageDistribution = g
            .channels()
            .map(|(_, c)| channel_lower_bound(c) + extra)
            .collect();
        let limits = ExplorationLimits::default();
        let Ok(s) = Schedule::extract(&g, &dist, limits) else { return Ok(()); };
        prop_assert!(s.validate(&g, &dist).is_ok());
        let r = throughput(&g, &dist, obs).unwrap();
        prop_assert_eq!(s.throughput_of(obs), r.throughput);
    }

    /// Distribution enumeration covers exactly the grid: every enumerated
    /// distribution has the requested size, respects the per-channel
    /// minimums, and distinct sizes never overlap.
    #[test]
    fn enumeration_is_exact(g in small_graph(), extra in 0u64..5) {
        let space = DistributionSpace::of(&g);
        let size = space.min_size() + extra;
        let all = space.all_of_size(size);
        let lb = lower_bound_distribution(&g);
        for d in &all {
            prop_assert_eq!(d.size(), size);
            prop_assert!(d.dominates(&lb));
        }
        // No duplicates.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), all.len());
    }

    /// The BMLB per-channel bound is tight for an isolated two-actor
    /// channel: capacity bound−1 deadlocks, capacity bound is live.
    #[test]
    fn bmlb_tight_on_isolated_channel(p in 1u64..7, c in 1u64..7, d in 0u64..5) {
        let mut b = SdfGraph::builder("iso");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("ch", x, p, y, c, d).unwrap();
        let g = b.build().unwrap();
        let y = g.actor_by_name("y").unwrap();
        let bound = channel_lower_bound(g.channel(g.channel_by_name("ch").unwrap()));
        let at = throughput(&g, &StorageDistribution::from_capacities(vec![bound]), y).unwrap();
        prop_assert!(!at.deadlocked, "capacity {} should be live", bound);
        if bound > d {
            // Below the bound (but still holding the initial tokens) the
            // channel must eventually deadlock.
            let below = throughput(
                &g,
                &StorageDistribution::from_capacities(vec![bound - 1]),
                y,
            )
            .unwrap();
            prop_assert!(below.deadlocked, "capacity {} should deadlock", bound - 1);
        }
    }
}
