//! Neighbour warm starts never change results — only allocations.
//!
//! The evaluation pipeline seeds each cold analysis's allocations from a
//! neighbouring distribution's recorded state count. That hint is an
//! allocation-layer effect only: self-timed execution is a deterministic
//! function of the model and the capacities, so hash-table pre-sizing
//! cannot alter any computed value. These properties pin the guarantee
//! down: with warm starts on or off, at one worker or many, on SDF and
//! CSDF models, under both drivers, the fronts are byte-identical and the
//! statistics equal (the warm-start tallies themselves are excluded from
//! `ExplorationStats` equality by design, like wall time) — and a
//! checkpoint-resumed run still reproduces the uninterrupted one exactly.

use std::sync::{Arc, Mutex};

use buffy_core::{
    explore_dependency_guided, explore_design_space, explore_design_space_observed, CancelToken,
    ExplorationResult, ExploreObserver, ExploreOptions, ParetoPoint, WarmStart,
};
use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
use buffy_gen::gallery;
use buffy_graph::{Rational, SdfGraph, StorageDistribution};
use buffy_integration_tests::test_threads;

fn front_bytes(points: &[ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| format!("{};{};{}\n", p.size, p.throughput, p.distribution))
        .collect()
}

fn explore_with(graph: &SdfGraph, threads: usize, warm: bool) -> ExplorationResult {
    explore_design_space(
        graph,
        &ExploreOptions {
            threads,
            warm_start_neighbours: warm,
            ..ExploreOptions::default()
        },
    )
    .unwrap()
}

/// Exhaustive driver, SDF: warm starts change the warm-start tallies and
/// nothing else, at one worker and at the test thread count.
#[test]
fn sdf_fronts_identical_with_and_without_warm_starts() {
    for graph in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let cold = explore_with(&graph, 1, false);
        assert_eq!(cold.stats.warm_starts, 0, "{}", graph.name());
        assert_eq!(cold.stats.warm_start_states, 0, "{}", graph.name());
        for threads in [1, test_threads()] {
            let warm = explore_with(&graph, threads, true);
            assert_eq!(
                front_bytes(cold.pareto.points()),
                front_bytes(warm.pareto.points()),
                "{}, threads {threads}: fronts must be byte-identical",
                graph.name()
            );
            assert_eq!(
                cold.stats,
                warm.stats,
                "{}, threads {threads}: statistics must not depend on warm starts",
                graph.name()
            );
            assert_eq!(cold.max_throughput, warm.max_throughput);
            if threads == 1 {
                // Sequentially the memo always holds the neighbours of
                // later candidates, so some evaluations must be seeded.
                assert!(warm.stats.warm_starts > 0, "{}", graph.name());
                assert!(warm.stats.warm_start_states > 0, "{}", graph.name());
            }
        }
    }
}

/// Dependency-guided driver: same guarantee through the shared pipeline.
#[test]
fn guided_fronts_identical_with_and_without_warm_starts() {
    for graph in [gallery::example(), gallery::modem()] {
        let run = |threads: usize, warm: bool| {
            explore_dependency_guided(
                &graph,
                &ExploreOptions {
                    threads,
                    warm_start_neighbours: warm,
                    ..ExploreOptions::default()
                },
            )
            .unwrap()
        };
        let cold = run(1, false);
        assert_eq!(cold.stats.warm_starts, 0, "{}", graph.name());
        for threads in [1, test_threads()] {
            let warm = run(threads, true);
            assert_eq!(
                front_bytes(cold.pareto.points()),
                front_bytes(warm.pareto.points()),
                "{}, threads {threads}",
                graph.name()
            );
            assert_eq!(
                cold.stats,
                warm.stats,
                "{}, threads {threads}",
                graph.name()
            );
        }
    }
}

/// CSDF explorer: warm starts are equally invisible for phased graphs and
/// for embedded-SDF ones.
#[test]
fn csdf_fronts_identical_with_and_without_warm_starts() {
    let mut b = CsdfGraph::builder("burst3");
    let p = b.actor("p", vec![1, 1, 1]);
    let c = b.actor("c", vec![2]);
    b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
    let burst = b.build().unwrap();
    let embedded = CsdfGraph::from_sdf(&gallery::example());

    for (name, graph) in [("burst3", &burst), ("example", &embedded)] {
        let run = |threads: usize, warm: bool| {
            csdf_explore(
                graph,
                &CsdfExploreOptions {
                    threads,
                    warm_start_neighbours: warm,
                    ..CsdfExploreOptions::default()
                },
            )
            .unwrap()
        };
        let cold = run(1, false);
        assert_eq!(cold.stats.warm_starts, 0, "{name}");
        for threads in [1, test_threads()] {
            let warm = run(threads, true);
            assert_eq!(
                front_bytes(cold.pareto.points()),
                front_bytes(warm.pareto.points()),
                "{name}, threads {threads}: fronts must be byte-identical"
            );
            assert_eq!(cold.stats, warm.stats, "{name}, threads {threads}");
        }
    }
}

/// Records every evaluation in the shape a checkpoint persists them.
#[derive(Default)]
struct Recorder {
    entries: Mutex<Vec<(StorageDistribution, Rational, u64)>>,
}

impl ExploreObserver for Recorder {
    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        _nanos: u64,
    ) {
        self.entries
            .lock()
            .unwrap()
            .push((dist.clone(), throughput, states));
    }
}

impl Recorder {
    fn into_warm_start(self) -> WarmStart {
        self.entries
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(d, t, s)| (d, (t, s)))
            .collect()
    }
}

/// Checkpoint/resume interaction: interrupt a warm-started run, replay
/// its recorded evaluations, and the resumed run — with neighbour warm
/// starts on or off — still reproduces the uninterrupted front and
/// statistics exactly. Replayed records carry real state counts, so they
/// may themselves seed neighbours; that must stay invisible too.
#[test]
fn checkpoint_resume_composes_with_warm_starts() {
    let graph = gallery::example();
    let exact = explore_with(&graph, 1, true);
    assert!(exact.stats.evaluations > 2);

    let rec = Recorder::default();
    let budget = exact.stats.evaluations / 2;
    let interrupted = ExploreOptions {
        cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget.max(1)))),
        ..ExploreOptions::default()
    };
    let _ = explore_design_space_observed(&graph, &interrupted, &rec);
    let warm_map = Arc::new(rec.into_warm_start());
    assert!(!warm_map.is_empty());

    for threads in [1, test_threads()] {
        for neighbours in [true, false] {
            let resumed = explore_design_space(
                &graph,
                &ExploreOptions {
                    threads,
                    warm_start: Some(Arc::clone(&warm_map)),
                    warm_start_neighbours: neighbours,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert!(resumed.completeness.exact);
            assert_eq!(
                front_bytes(exact.pareto.points()),
                front_bytes(resumed.pareto.points()),
                "threads {threads}, neighbours {neighbours}"
            );
            assert_eq!(
                exact.stats, resumed.stats,
                "threads {threads}, neighbours {neighbours}"
            );
        }
    }
}
