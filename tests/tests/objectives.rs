//! Properties of the n-dimensional objective space.
//!
//! The refactor from the hardcoded storage/throughput pair to declared
//! [`ObjectiveSpace`]s must be invisible in the default space: fronts and
//! statistics stay byte-identical at any thread count, with warm starts
//! on or off, for SDF and CSDF models alike. Declaring the energy axis
//! attaches an exact rational energy per iteration to every point without
//! moving the front (energy is a monotone function of throughput, so 3D
//! dominance coincides with 2D dominance on evaluated points — the same
//! argument that keeps the throughput-only prune oracle sound). These
//! tests pin each of those claims, including the energy figures against
//! a hand-computed value and an independent schedule-walking oracle.

use buffy_analysis::{schedule_energy_per_iteration, throughput, ExplorationLimits, Schedule};
use buffy_core::{
    explore_dependency_guided, explore_design_space, ExplorationResult, ExploreOptions,
    ObjectiveKind, ObjectiveSpace, ParetoPoint,
};
use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
use buffy_gen::gallery;
use buffy_graph::{Rational, SdfGraph, StorageDistribution};
use buffy_integration_tests::test_threads;

/// The front rendered to bytes, including any energy values, so two runs
/// compare byte-for-byte.
fn front_bytes(points: &[ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{};{};{:?};{}\n",
                p.size,
                p.throughput,
                p.energy(),
                p.distribution
            )
        })
        .collect()
}

fn explore_sdf(graph: &SdfGraph, opts: ExploreOptions) -> ExplorationResult {
    explore_design_space(graph, &opts).unwrap()
}

/// The example graph of the paper with every actor annotated
/// `active = 10, idle = 2`.
fn powered_example() -> SdfGraph {
    let mut b = SdfGraph::builder("example-power");
    let a = b.actor_with_power("a", 1, 10, 2).unwrap();
    let bb = b.actor_with_power("b", 2, 10, 2).unwrap();
    let c = b.actor_with_power("c", 2, 10, 2).unwrap();
    b.channel("alpha", a, 2, bb, 3).unwrap();
    b.channel("beta", bb, 1, c, 2).unwrap();
    b.build().unwrap()
}

/// A small power-annotated CSDF graph: a bursty two-phase producer
/// feeding a unit-rate consumer.
fn powered_updown() -> CsdfGraph {
    let mut b = CsdfGraph::builder("updown-power");
    let p = b.actor_with_power("p", vec![1, 1], 8, 3).unwrap();
    let c = b.actor_with_power("c", vec![1], 5, 1).unwrap();
    b.channel("d", p, vec![2, 0], c, vec![1], 0).unwrap();
    b.build().unwrap()
}

#[test]
fn default_space_is_byte_identical_across_threads_and_warm_start() {
    for graph in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let reference = explore_sdf(&graph, ExploreOptions::default());
        assert!(reference
            .pareto
            .points()
            .iter()
            .all(|p| p.energy().is_none()));
        for threads in [1, test_threads()] {
            for warm in [true, false] {
                let run = explore_sdf(
                    &graph,
                    ExploreOptions {
                        threads,
                        warm_start_neighbours: warm,
                        objectives: ObjectiveSpace::default_2d(),
                        ..ExploreOptions::default()
                    },
                );
                assert_eq!(
                    front_bytes(reference.pareto.points()),
                    front_bytes(run.pareto.points()),
                    "{}: default-space front must be byte-identical (threads {threads}, warm {warm})",
                    graph.name()
                );
                assert_eq!(
                    reference.stats,
                    run.stats,
                    "{}: statistics must be identical too (threads {threads}, warm {warm})",
                    graph.name()
                );
            }
        }
    }
}

#[test]
fn csdf_default_space_is_byte_identical_across_threads_and_warm_start() {
    for graph in [
        buffy_csdf::gallery::updown(),
        buffy_csdf::gallery::line_scaler(),
    ] {
        let reference = csdf_explore(&graph, &CsdfExploreOptions::default()).unwrap();
        for threads in [1, test_threads()] {
            for warm in [true, false] {
                let run = csdf_explore(
                    &graph,
                    &CsdfExploreOptions {
                        threads,
                        warm_start_neighbours: warm,
                        objectives: ObjectiveSpace::default_2d(),
                        ..CsdfExploreOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    front_bytes(reference.pareto.points()),
                    front_bytes(run.pareto.points()),
                    "{}: CSDF default-space front must be byte-identical (threads {threads}, warm {warm})",
                    graph.name()
                );
                assert_eq!(reference.stats, run.stats, "{}", graph.name());
            }
        }
    }
}

#[test]
fn energy_matches_the_hand_computed_value_on_the_example() {
    // Repetition vector (3, 2, 1), execution times (1, 2, 2): busy time
    // per iteration is 3·1 + 2·2 + 1·2 = 9 actor-time-units. With every
    // actor at active 10 / idle 2:
    //   work            W  = 10 · 9              = 90
    //   idle-while-busy Iᵦ =  2 · 9              = 18
    //   idle rate       I  =  2 + 2 + 2          =  6   (per time step)
    // so E(t) = (W − Iᵦ) + I · q_obs / t. γ = ⟨4, 2⟩ runs at t = 1/7
    // observed on c (q_c = 1): E = 72 + 6 · 7 = 114.
    let graph = powered_example();
    let obs = graph.default_observed_actor();
    let dist = StorageDistribution::from_capacities(vec![4, 2]);
    let t = throughput(&graph, &dist, obs).unwrap().throughput;
    assert_eq!(t, Rational::new(1, 7));

    let result = explore_sdf(
        &graph,
        ExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            ..ExploreOptions::default()
        },
    );
    let point = result
        .pareto
        .points()
        .iter()
        .find(|p| p.distribution == dist)
        .expect("⟨4, 2⟩ is the minimal live distribution and on the front");
    assert_eq!(point.energy(), Some(Rational::new(114, 1)));
}

#[test]
fn energy_matches_the_schedule_walking_oracle_on_the_modem() {
    let graph = gallery::modem_power();
    let obs = graph.default_observed_actor();
    let result = explore_dependency_guided(
        &graph,
        &ExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert!(!result.pareto.is_empty());
    for p in result.pareto.points() {
        let schedule =
            Schedule::extract(&graph, &p.distribution, ExplorationLimits::default()).unwrap();
        let oracle = schedule_energy_per_iteration(&graph, &schedule, obs)
            .expect("Pareto points never deadlock");
        assert_eq!(
            p.energy(),
            Some(oracle),
            "closed-form energy must match the schedule walk for γ = {}",
            p.distribution
        );
    }
}

#[test]
fn three_d_front_projects_onto_the_default_front() {
    // Energy is monotone non-increasing in throughput, so declaring the
    // axis must neither add nor remove points: the (size, throughput, γ)
    // projection of the 3D front equals the 2D front exactly. Checked on
    // SDF and CSDF models, across thread counts.
    let graph = gallery::modem_power();
    let plain = explore_sdf(&graph, ExploreOptions::default());
    for threads in [1, test_threads()] {
        let energetic = explore_sdf(
            &graph,
            ExploreOptions {
                threads,
                objectives: ObjectiveSpace::with_energy(),
                ..ExploreOptions::default()
            },
        );
        assert_eq!(
            plain
                .pareto
                .points()
                .iter()
                .map(|p| (p.size, p.throughput, p.distribution.clone()))
                .collect::<Vec<_>>(),
            energetic
                .pareto
                .points()
                .iter()
                .map(|p| (p.size, p.throughput, p.distribution.clone()))
                .collect::<Vec<_>>(),
            "the 3D front must project onto the default front"
        );
        // Same evaluations either way: the energy axis is derived from
        // recorded throughputs, never simulated separately.
        assert_eq!(plain.stats, energetic.stats);
        for p in energetic.pareto.points() {
            assert!(p.energy().is_some());
        }
    }

    let csdf = powered_updown();
    let plain = csdf_explore(&csdf, &CsdfExploreOptions::default()).unwrap();
    let energetic = csdf_explore(
        &csdf,
        &CsdfExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            ..CsdfExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        plain
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput, p.distribution.clone()))
            .collect::<Vec<_>>(),
        energetic
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput, p.distribution.clone()))
            .collect::<Vec<_>>()
    );
    assert!(energetic
        .pareto
        .points()
        .iter()
        .all(|p| p.energy().is_some()));
}

#[test]
fn throughput_only_pruning_stays_sound_under_the_energy_axis() {
    // The prune oracle reasons about throughput bounds only. Because
    // E(t) = W + I·f/t with W, I, f ≥ 0 is non-increasing in t, a pruned
    // distribution can never have offered strictly lower energy at
    // comparable throughput — so pruned and unpruned energy-aware runs
    // must chart byte-identical 3D fronts.
    let graph = gallery::modem_power();
    let pruned = explore_sdf(
        &graph,
        ExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            ..ExploreOptions::default()
        },
    );
    let unpruned = explore_sdf(
        &graph,
        ExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            static_prune: false,
            ..ExploreOptions::default()
        },
    );
    assert_eq!(
        front_bytes(pruned.pareto.points()),
        front_bytes(unpruned.pareto.points())
    );
    // Energy falls (weakly) along the front as throughput rises.
    for pair in pruned.pareto.points().windows(2) {
        assert!(pair[1].energy() <= pair[0].energy());
    }
}

#[test]
fn objective_space_parsing_round_trips() {
    for text in ["storage,throughput", "storage,throughput,energy"] {
        let space: ObjectiveSpace = text.parse().unwrap();
        assert_eq!(space.to_string(), text);
    }
    // Canonical order is restored on parse, duplicates and truncated
    // spaces are refused.
    let space: ObjectiveSpace = "throughput,energy,storage".parse().unwrap();
    assert_eq!(space.to_string(), "storage,throughput,energy");
    assert!(space.has(ObjectiveKind::Energy));
    assert!("storage".parse::<ObjectiveSpace>().is_err());
    assert!("storage,throughput,storage"
        .parse::<ObjectiveSpace>()
        .is_err());
    assert!("storage,throughput,joules"
        .parse::<ObjectiveSpace>()
        .is_err());
}
