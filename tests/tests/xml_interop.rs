//! XML interoperability: the gallery round-trips through the SDF3-style
//! format, and graphs loaded from XML analyze identically to the
//! originals (the paper's `buffy` "takes an XML description of an SDF
//! graph as input", §10).

use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_gen::gallery;
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use buffy_graph::Rational;

#[test]
fn gallery_roundtrips_through_xml() {
    for g in gallery::all() {
        let text = write_sdf_xml(&g);
        let back = read_sdf_xml(&text).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        assert_eq!(g, back, "{} round-trip", g.name());
    }
}

#[test]
fn graph_loaded_from_xml_explores_identically() {
    let g = gallery::example();
    let loaded = read_sdf_xml(&write_sdf_xml(&g)).unwrap();
    let a = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
    let b = explore_dependency_guided(&loaded, &ExploreOptions::default()).unwrap();
    assert_eq!(a.pareto.points(), b.pareto.points());
}

/// A hand-written SDF3-style document (ports + properties) describing the
/// paper's example graph yields the paper's numbers.
#[test]
fn handwritten_sdf3_document() {
    let text = r#"<?xml version="1.0"?>
<sdf3 type="sdf" version="1.0">
  <applicationGraph name="example">
    <sdf name="example" type="Example">
      <actor name="a" type="A"><port name="out" type="out" rate="2"/></actor>
      <actor name="b" type="B">
        <port name="in" type="in" rate="3"/>
        <port name="out" type="out" rate="1"/>
      </actor>
      <actor name="c" type="C"><port name="in" type="in" rate="2"/></actor>
      <channel name="alpha" srcActor="a" srcPort="out" dstActor="b" dstPort="in"/>
      <channel name="beta" srcActor="b" srcPort="out" dstActor="c" dstPort="in"/>
    </sdf>
    <sdfProperties>
      <actorProperties actor="a"><processor type="p" default="true"><executionTime time="1"/></processor></actorProperties>
      <actorProperties actor="b"><processor type="p" default="true"><executionTime time="2"/></processor></actorProperties>
      <actorProperties actor="c"><processor type="p" default="true"><executionTime time="2"/></processor></actorProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#;
    let g = read_sdf_xml(text).unwrap();
    let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
    let sizes: Vec<u64> = r.pareto.points().iter().map(|p| p.size).collect();
    assert_eq!(sizes, vec![6, 8, 9, 10]);
    assert_eq!(r.max_throughput, Rational::new(1, 4));
}
