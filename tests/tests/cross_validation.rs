//! Cross-validation between independent implementations of the same
//! quantities: full vs reduced state spaces, MCM vs simulation, exhaustive
//! vs dependency-guided exploration.

use buffy_analysis::{
    explore, max_cycle_ratio, max_cycle_ratio_brute_force, maximal_throughput, throughput,
    ExplorationLimits, Hsdf, RatioGraph, Schedule,
};
use buffy_core::{explore_dependency_guided, explore_design_space, ExploreOptions};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::{Rational, RepetitionVector, SdfGraph, StorageDistribution};

fn front(r: &buffy_core::ExplorationResult) -> Vec<(u64, Rational)> {
    r.pareto
        .points()
        .iter()
        .map(|p| (p.size, p.throughput))
        .collect()
}

/// Full and reduced state spaces agree on throughput for a sweep of
/// distributions over random graphs.
#[test]
fn full_vs_reduced_state_space_on_random_graphs() {
    for seed in 0..15 {
        let g = RandomGraphConfig {
            actors: 4,
            extra_channels: 1,
            max_repetition: 3,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed,
        }
        .generate();
        let obs = g.default_observed_actor();
        let q = RepetitionVector::compute(&g).unwrap();
        // A generous distribution plus two tighter variants.
        let generous: StorageDistribution = g
            .channels()
            .map(|(_, c)| {
                c.initial_tokens()
                    + c.production() * q[c.source()]
                    + c.consumption() * q[c.target()]
            })
            .collect();
        for scale in [1u64, 2] {
            let d: StorageDistribution = generous.as_slice().iter().map(|&c| c * scale).collect();
            let full = explore(&g, &d, ExplorationLimits::default()).unwrap();
            let red = throughput(&g, &d, obs).unwrap();
            assert_eq!(
                full.throughput_of(obs),
                red.throughput,
                "seed {seed} scale {scale}"
            );
        }
    }
}

/// The MCM-based maximal throughput equals the state-space throughput
/// under a sufficiently large distribution, on random graphs.
#[test]
fn mcm_vs_simulation_on_random_graphs() {
    for seed in 0..15 {
        let g = RandomGraphConfig {
            actors: 4,
            extra_channels: 1,
            max_repetition: 3,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed: 1000 + seed,
        }
        .generate();
        let obs = g.default_observed_actor();
        let q = RepetitionVector::compute(&g).unwrap();
        let Ok(mcm_thr) = maximal_throughput(&g, obs) else {
            continue; // token-free cycle: nothing to compare
        };
        // 8 iterations of slack per channel is far beyond saturation for
        // these small graphs.
        let d: StorageDistribution = g
            .channels()
            .map(|(_, c)| {
                c.initial_tokens()
                    + 8 * (c.production() * q[c.source()]).max(c.consumption() * q[c.target()])
            })
            .collect();
        let r = throughput(&g, &d, obs).unwrap();
        assert_eq!(r.throughput, mcm_thr, "seed {}", 1000 + seed);
    }
}

/// Howard's algorithm matches the brute-force cycle enumeration on the
/// gallery graphs' homogeneous expansions (small enough to enumerate).
#[test]
fn howard_vs_brute_force_on_gallery_expansions() {
    for g in [gallery::example(), gallery::bipartite()] {
        let q = RepetitionVector::compute(&g).unwrap();
        let h = Hsdf::expand(&g, &q);
        let rg = RatioGraph::from_hsdf(&h);
        assert_eq!(
            max_cycle_ratio(&rg).unwrap(),
            max_cycle_ratio_brute_force(&rg).unwrap(),
            "{}",
            g.name()
        );
    }
}

/// The exhaustive and dependency-guided explorations produce identical
/// (size, throughput) Pareto fronts on random graphs.
#[test]
fn exhaustive_vs_guided_on_random_graphs() {
    let mut compared = 0;
    for seed in 0..12 {
        let g = RandomGraphConfig {
            actors: 4,
            extra_channels: 1,
            max_repetition: 2,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed: 2000 + seed,
        }
        .generate();
        let opts = ExploreOptions::default();
        let (Ok(a), Ok(b)) = (
            explore_design_space(&g, &opts),
            explore_dependency_guided(&g, &opts),
        ) else {
            continue; // e.g. token-free cycles
        };
        assert_eq!(front(&a), front(&b), "seed {}", 2000 + seed);
        compared += 1;
    }
    assert!(
        compared >= 6,
        "too few comparable random graphs: {compared}"
    );
}

/// The two explorers also agree on the small gallery graphs.
#[test]
fn exhaustive_vs_guided_on_small_gallery() {
    for g in [gallery::example(), gallery::bipartite()] {
        let opts = ExploreOptions::default();
        let a = explore_design_space(&g, &opts).unwrap();
        let b = explore_dependency_guided(&g, &opts).unwrap();
        assert_eq!(front(&a), front(&b), "{}", g.name());
    }
}

/// The two explorers agree on the mid-size gallery graphs (slower;
/// exercised in release runs).
#[test]
#[ignore = "minutes in debug builds; run with --ignored --release"]
fn exhaustive_vs_guided_on_large_gallery() {
    for g in [gallery::modem(), gallery::cd2dat(), gallery::satellite()] {
        let opts = ExploreOptions::default();
        let a = explore_design_space(&g, &opts).unwrap();
        let b = explore_dependency_guided(&g, &opts).unwrap();
        assert_eq!(front(&a), front(&b), "{}", g.name());
    }
}

/// Every Pareto witness on every gallery graph yields a valid schedule
/// realizing the reported throughput.
#[test]
fn pareto_witness_schedules_validate() {
    for g in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        let obs = g.default_observed_actor();
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let s = Schedule::extract(&g, &p.distribution, ExplorationLimits::default()).unwrap();
            s.validate(&g, &p.distribution)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert_eq!(s.throughput_of(obs), p.throughput, "{}", g.name());
        }
    }
}

/// Monotonicity (the property §9 builds on): growing any single channel
/// never lowers the throughput.
#[test]
fn throughput_monotone_in_capacity_on_gallery() {
    for g in [gallery::example(), gallery::bipartite()] {
        let obs = g.default_observed_actor();
        let r = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        for p in r.pareto.points() {
            let base = throughput(&g, &p.distribution, obs).unwrap().throughput;
            for cid in g.channel_ids() {
                let grown = p.distribution.grown(cid, 1);
                let t = throughput(&g, &grown, obs).unwrap().throughput;
                assert!(t >= base, "{}: channel {cid}", g.name());
            }
        }
    }
}

/// Explicit tiny-case cross-check: a two-actor graph where every quantity
/// is hand-computable.
#[test]
fn hand_computed_two_actor_case() {
    // x --(2:1)--> y, exec (2, 1): x produces 2 tokens every 2 steps;
    // y consumes 1 per firing, 1 step. Max thr(y) = 1.
    let mut b = SdfGraph::builder("hand");
    let x = b.actor("x", 2);
    let y = b.actor("y", 1);
    b.channel("c", x, 2, y, 1).unwrap();
    let g = b.build().unwrap();
    assert_eq!(maximal_throughput(&g, y).unwrap(), Rational::ONE);
    // Capacity 2 (= BMLB): x fires, blocked until y drains both tokens;
    // cycle: x busy 2, then y twice … period 3 wait: t0 x starts; t2 x done
    // (tokens 2), x blocked (space 0), y starts; t3 y done (1), x blocked
    // (space 1 < 2), y starts; t4 y done (0), x starts; period = 4−1? The
    // oracle is the simulator itself — assert the exact value it must
    // give: 2 firings of y per 4 steps = 1/2.
    let r = throughput(&g, &StorageDistribution::from_capacities(vec![2]), y).unwrap();
    assert_eq!(r.throughput, Rational::new(1, 2));
    // Capacity 4 allows full overlap: y fires every step once warmed up.
    let r = throughput(&g, &StorageDistribution::from_capacities(vec![4]), y).unwrap();
    assert_eq!(r.throughput, Rational::ONE);
}
