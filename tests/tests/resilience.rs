//! Resilience guarantees of the exploration runtime, exercised across
//! crates and thread counts on randomly generated graphs:
//!
//! * **Partial-front soundness** — a run truncated by an evaluation
//!   budget still reports only achievable Pareto points, each dominated
//!   by (or equal to) a point of the exact front, and annotates the
//!   sizes it never settled with a sound throughput ceiling.
//! * **Resume determinism** — replaying the evaluations recorded from an
//!   interrupted run as a warm start reproduces the exact front and
//!   statistics byte-for-byte, sequentially and in parallel.
//! * **Panic containment** — an evaluation that panics inside a worker
//!   degrades to a zero-throughput entry; the run completes, reports the
//!   failure, and stays deterministic across thread counts.

use std::sync::{Arc, Mutex};

use buffy_core::{
    explore_design_space, explore_design_space_observed, CancelReason, CancelToken,
    ExplorationResult, ExploreError, ExploreObserver, ExploreOptions, ParetoPoint, WarmStart,
};
use buffy_gen::{RandomGraphConfig, SplitMix64};
use buffy_graph::{Rational, SdfGraph, StorageDistribution};
use buffy_integration_tests::test_threads;

const CASES: u64 = 12;

/// A small random consistent graph drawn from `rng` (the properties.rs
/// generator, kept in sync by hand).
fn small_graph(rng: &mut SplitMix64) -> SdfGraph {
    RandomGraphConfig {
        actors: rng.range_usize(3, 6),
        extra_channels: rng.range_usize(0, 3),
        max_repetition: rng.range_u64(1, 3),
        max_rate_factor: 2,
        max_execution_time: rng.range_u64(1, 2),
        seed: rng.range_u64(0, 499),
    }
    .generate()
}

fn explore_with(graph: &SdfGraph, opts: ExploreOptions) -> ExplorationResult {
    explore_design_space(graph, &opts).unwrap()
}

fn front_bytes(points: &[ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| format!("{};{};{}\n", p.size, p.throughput, p.distribution))
        .collect()
}

/// Records every evaluation an observed run performs, in the shape a
/// checkpoint would persist them.
#[derive(Default)]
struct Recorder {
    entries: Mutex<Vec<(StorageDistribution, Rational, u64)>>,
}

impl ExploreObserver for Recorder {
    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        _nanos: u64,
    ) {
        self.entries
            .lock()
            .unwrap()
            .push((dist.clone(), throughput, states));
    }
}

impl Recorder {
    fn into_warm_start(self) -> WarmStart {
        self.entries
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(d, t, s)| (d, (t, s)))
            .collect()
    }
}

/// Every point of a budget-truncated front is achievable: the exact front
/// dominates it, and the skipped-size annotations carry a sound ceiling.
#[test]
fn truncated_fronts_are_sound_across_thread_counts() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0010);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let exact = explore_with(&g, ExploreOptions::default());
        if exact.stats.evaluations < 2 {
            continue;
        }
        let budgets = [exact.stats.evaluations / 2, exact.stats.evaluations - 1];
        for threads in [1, test_threads()] {
            for &budget in &budgets {
                if budget == 0 {
                    continue;
                }
                let opts = ExploreOptions {
                    threads,
                    cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget))),
                    ..ExploreOptions::default()
                };
                let partial = match explore_design_space(&g, &opts) {
                    // Tripped before anything was established: a hard
                    // cancellation is the documented outcome.
                    Err(ExploreError::Cancelled { reason }) => {
                        assert_eq!(
                            reason,
                            CancelReason::EvaluationBudget,
                            "case {case}, budget {budget}, threads {threads}"
                        );
                        continue;
                    }
                    other => other.unwrap(),
                };
                // With `budget == evaluations - 1` and several workers, an
                // in-flight analysis can finish after the token trips; no
                // distribution is skipped and the run is legitimately
                // exact. It must then match the exact result verbatim.
                if partial.completeness.exact {
                    assert_eq!(
                        front_bytes(partial.pareto.points()),
                        front_bytes(exact.pareto.points()),
                        "case {case}, budget {budget}, threads {threads}"
                    );
                    continue;
                }
                assert_eq!(
                    partial.completeness.truncated_by,
                    Some(CancelReason::EvaluationBudget),
                    "case {case}, budget {budget}, threads {threads}"
                );
                for p in partial.pareto.points() {
                    assert!(
                        exact
                            .pareto
                            .points()
                            .iter()
                            .any(|q| q.size <= p.size && q.throughput >= p.throughput),
                        "case {case}, budget {budget}, threads {threads}: stray point {p}"
                    );
                    assert!(
                        p.throughput <= exact.max_throughput,
                        "case {case}: partial point above the maximal throughput"
                    );
                }
                // Skipped sizes: the ceiling bounds everything the exact
                // search found at that size, and the counts add up.
                for s in &partial.skipped {
                    for q in exact.pareto.points().iter().filter(|q| q.size == s.size) {
                        assert!(
                            q.throughput <= s.throughput_bound,
                            "case {case}: skipped size {} under-bounds {}",
                            s.size,
                            q.throughput
                        );
                    }
                    assert!(s.distributions > 0, "case {case}: empty skipped size");
                }
                assert_eq!(
                    partial.completeness.distributions_skipped,
                    partial.skipped.iter().map(|s| s.distributions).sum::<u64>(),
                    "case {case}, budget {budget}, threads {threads}"
                );
            }
        }
    }
}

/// Replaying the evaluations recorded before an interruption warm-starts
/// the search into the exact result: byte-identical front, identical
/// statistics (recorded entries count as evaluations), at every thread
/// count.
#[test]
fn resume_from_recorded_evaluations_is_byte_identical() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0011);
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let exact = explore_with(&g, ExploreOptions::default());
        if exact.stats.evaluations < 2 {
            continue;
        }
        // An interrupted run: budget at half the exact evaluation count,
        // every finished evaluation recorded (the checkpoint contract).
        let rec = Recorder::default();
        let budget = exact.stats.evaluations / 2;
        let opts = ExploreOptions {
            cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget.max(1)))),
            ..ExploreOptions::default()
        };
        let _ = explore_design_space_observed(&g, &opts, &rec);
        let warm = Arc::new(rec.into_warm_start());

        for threads in [1, test_threads()] {
            let resumed = explore_with(
                &g,
                ExploreOptions {
                    threads,
                    warm_start: Some(Arc::clone(&warm)),
                    ..ExploreOptions::default()
                },
            );
            assert!(resumed.completeness.exact, "case {case}, threads {threads}");
            assert_eq!(
                front_bytes(resumed.pareto.points()),
                front_bytes(exact.pareto.points()),
                "case {case}, threads {threads}: resumed front diverged"
            );
            assert_eq!(
                resumed.stats, exact.stats,
                "case {case}, threads {threads}: resumed statistics diverged"
            );
            assert_eq!(resumed.max_throughput, exact.max_throughput);
            assert_eq!(resumed.lower_bound_size, exact.lower_bound_size);
            assert_eq!(resumed.upper_bound_size, exact.upper_bound_size);
        }
    }
}

/// A worker panic during one evaluation degrades that distribution to
/// zero throughput instead of aborting: the run completes, names the
/// failure, keeps the failed point off the front, and remains
/// deterministic across thread counts.
#[test]
fn injected_panics_degrade_without_aborting() {
    let mut rng = SplitMix64::seed_from_u64(0xB0FF_0012);
    let mut exercised = 0u32;
    for case in 0..CASES {
        let g = small_graph(&mut rng);
        let exact = explore_with(&g, ExploreOptions::default());
        // Fail the evaluation of the exact front's maximal point; graphs
        // whose front is a single point are skipped (losing the only
        // point would leave nothing to compare).
        if exact.pareto.points().len() < 2 {
            continue;
        }
        exercised += 1;
        let fail = exact.pareto.maximal().unwrap().distribution.clone();
        let mut per_thread = Vec::new();
        for threads in [1, test_threads()] {
            let r = explore_with(
                &g,
                ExploreOptions {
                    threads,
                    fail_distribution: Some(fail.clone()),
                    ..ExploreOptions::default()
                },
            );
            assert!(r.completeness.exact, "case {case}, threads {threads}");
            assert_eq!(r.failures.len(), 1, "case {case}, threads {threads}");
            assert_eq!(r.failures[0].distribution, fail);
            assert!(
                r.failures[0].message.contains("injected"),
                "case {case}: {}",
                r.failures[0].message
            );
            assert!(
                r.pareto.points().iter().all(|p| p.distribution != fail),
                "case {case}, threads {threads}: failed distribution on the front"
            );
            for p in r.pareto.points() {
                assert!(
                    exact
                        .pareto
                        .points()
                        .iter()
                        .any(|q| q.size <= p.size && q.throughput >= p.throughput),
                    "case {case}, threads {threads}: stray point {p}"
                );
            }
            per_thread.push((front_bytes(r.pareto.points()), r.stats));
        }
        assert_eq!(
            per_thread[0], per_thread[1],
            "case {case}: degraded run depends on the thread count"
        );
    }
    assert!(exercised > 0, "no case exercised the panic path");
}
