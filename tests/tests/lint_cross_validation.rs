//! Cross-validation of the `buffy-lint` rules against the execution
//! engines: what the linter calls a guaranteed deadlock must actually
//! deadlock in the state-space exploration, and graphs that are
//! consistent by construction must never be flagged inconsistent.

use buffy_analysis::throughput;
use buffy_core::{channel_lower_bound, lower_bound_distribution};
use buffy_gen::{RandomGraphConfig, SplitMix64};
use buffy_graph::{SdfGraph, StorageDistribution};
use buffy_lint::{lint_sdf, LintContext, Severity};

const CASES: u64 = 40;

fn random_config(rng: &mut SplitMix64) -> RandomGraphConfig {
    RandomGraphConfig {
        actors: rng.range_usize(2, 6),
        extra_channels: rng.range_usize(0, 3),
        max_repetition: rng.range_u64(1, 3),
        seed: rng.range_u64(0, 1_000),
        ..RandomGraphConfig::default()
    }
}

/// The generator derives rates from a repetition vector, so its graphs
/// are consistent and connected by construction; the linter must agree.
#[test]
fn generated_graphs_are_never_flagged_inconsistent_or_disconnected() {
    let mut rng = SplitMix64::seed_from_u64(0x11A7_0001);
    for _ in 0..CASES {
        let g = random_config(&mut rng).generate();
        let report = lint_sdf(&g, &LintContext::default());
        for d in &report.diagnostics {
            assert_ne!(d.code, "B001", "{}: {}", g.name(), report.render_human());
            assert_ne!(d.code, "B002", "{}: {}", g.name(), report.render_human());
            // Cycle-closing channels carry a full iteration of tokens,
            // so generated cycles are live too.
            assert_ne!(d.code, "B003", "{}: {}", g.name(), report.render_human());
        }
    }
}

/// Rings without initial tokens are the canonical guaranteed deadlock:
/// the linter must flag B003 and the engine must indeed deadlock under
/// any (generous) storage distribution.
#[test]
fn token_free_cycles_flagged_and_deadlock_in_engine() {
    let mut rng = SplitMix64::seed_from_u64(0x11A7_0002);
    for _ in 0..CASES {
        let n = rng.range_usize(2, 6);
        let mut b = SdfGraph::builder("ring");
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("a{i}"), rng.range_u64(1, 4)))
            .collect();
        for i in 0..n {
            let r = rng.range_u64(1, 3);
            b.channel(format!("c{i}"), ids[i], r, ids[(i + 1) % n], r)
                .unwrap();
        }
        let g = b.build().unwrap();

        let report = lint_sdf(&g, &LintContext::default());
        assert!(
            report.diagnostics.iter().any(|d| d.code == "B003"),
            "{}",
            report.render_human()
        );
        assert!(report.has_errors());

        let dist = StorageDistribution::from_capacities(vec![64; n]);
        let r = throughput(&g, &dist, g.default_observed_actor()).unwrap();
        assert!(
            r.deadlocked,
            "lint promised a deadlock the engine did not see"
        );
    }
}

/// A capacity strictly below the §7 lower bound (but still holding the
/// initial tokens) can never sustain repeated firings: B004 must fire and
/// the execution must deadlock under exactly that distribution.
#[test]
fn capacities_below_bound_flagged_and_deadlock_in_engine() {
    let mut rng = SplitMix64::seed_from_u64(0x11A7_0003);
    let mut exercised = 0;
    for _ in 0..CASES {
        let g = random_config(&mut rng).generate();
        let mut caps: Vec<u64> = lower_bound_distribution(&g).as_slice().to_vec();
        // Pick a channel whose bound can drop by one without dipping
        // below its initial tokens (capacity < tokens is a different,
        // ill-formed regime).
        let Some(victim) = g
            .channels()
            .find(|(cid, c)| caps[cid.index()] > c.initial_tokens().max(1))
            .map(|(cid, _)| cid)
        else {
            continue;
        };
        caps[victim.index()] -= 1;
        exercised += 1;

        let dist = StorageDistribution::from_capacities(caps);
        let ctx = LintContext {
            distribution: Some(dist.clone()),
            ..LintContext::default()
        };
        let report = lint_sdf(&g, &ctx);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "B004" && d.severity == Severity::Error),
            "{}: {}",
            g.name(),
            report.render_human()
        );

        let r = throughput(&g, &dist, g.default_observed_actor()).unwrap();
        assert!(r.deadlocked, "{}: B004 promised a deadlock", g.name());
    }
    assert!(
        exercised > CASES / 2,
        "too few cases exercised the reduction"
    );
}

/// Conversely: at the per-channel lower bounds no B004 can fire, and the
/// bound returned by the lint model matches `channel_lower_bound`.
#[test]
fn lower_bound_distribution_is_never_flagged() {
    let mut rng = SplitMix64::seed_from_u64(0x11A7_0004);
    for _ in 0..CASES {
        let g = random_config(&mut rng).generate();
        let dist = lower_bound_distribution(&g);
        for (cid, c) in g.channels() {
            assert_eq!(dist.get(cid), channel_lower_bound(c));
        }
        let ctx = LintContext {
            distribution: Some(dist),
            ..LintContext::default()
        };
        let report = lint_sdf(&g, &ctx);
        assert!(
            report.diagnostics.iter().all(|d| d.code != "B004"),
            "{}: {}",
            g.name(),
            report.render_human()
        );
    }
}

/// An infeasible throughput constraint (B005) is one the exploration can
/// never meet: verify against the engine's maximal throughput under a
/// huge distribution.
#[test]
fn infeasible_constraints_match_engine_maximum() {
    let mut rng = SplitMix64::seed_from_u64(0x11A7_0005);
    for _ in 0..(CASES / 2) {
        let g = random_config(&mut rng).generate();
        let obs = g.default_observed_actor();
        let Ok(max) = buffy_analysis::maximal_throughput(&g, obs) else {
            continue;
        };
        // Just feasible: silent. Just infeasible: B005.
        let feasible = LintContext {
            throughput_constraint: Some(max),
            ..LintContext::default()
        };
        assert!(
            lint_sdf(&g, &feasible)
                .diagnostics
                .iter()
                .all(|d| d.code != "B005"),
            "{}",
            g.name()
        );
        let infeasible = LintContext {
            throughput_constraint: Some(max + max),
            ..LintContext::default()
        };
        assert!(
            lint_sdf(&g, &infeasible)
                .diagnostics
                .iter()
                .any(|d| d.code == "B005"),
            "{}",
            g.name()
        );
    }
}
