//! Telemetry is observation-only: installing a recorder must not change
//! a single byte of any exploration result — front, bounds or statistics
//! — at any thread count. These tests run the same explorations with and
//! without a recorder installed, sequentially and in parallel, and
//! compare the rendered results byte for byte.
//!
//! The recorder slot is process-global, so every test here serialises on
//! one mutex: a concurrent test installing/uninstalling mid-run would
//! otherwise make "recorder absent" unobservable.

use buffy_core::{explore_design_space, ExplorationResult, ExploreOptions};
use buffy_core::{explore_design_space_observed, LiveObserver};
use buffy_csdf::{
    csdf_explore, csdf_explore_observed, CsdfExplorationResult, CsdfExploreOptions, CsdfGraph,
};
use buffy_gen::gallery;
use buffy_graph::SdfGraph;
use buffy_integration_tests::test_threads;
use buffy_obs::{ObsServer, ServeState};
use buffy_telemetry::{names, Recorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static RECORDER_SLOT: Mutex<()> = Mutex::new(());

/// Runs `f` with a freshly installed recorder, uninstalling afterwards
/// even on panic; returns the result and the recorder.
fn with_recorder<T>(f: impl FnOnce() -> T) -> (T, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::new());
    buffy_telemetry::install(Arc::clone(&recorder));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    buffy_telemetry::uninstall();
    match result {
        Ok(v) => (v, recorder),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Everything an SDF exploration reports, rendered to bytes. Wall time
/// (`eval_nanos`) is deliberately excluded: it is the one field the
/// runtime documents as non-deterministic.
fn render(r: &ExplorationResult) -> String {
    let mut out = String::new();
    for p in r.pareto.points() {
        out.push_str(&format!("{};{};{}\n", p.size, p.throughput, p.distribution));
    }
    out.push_str(&format!(
        "max={} lb={} ub={} evals={} hits={} states={} failures={}\n",
        r.max_throughput,
        r.lower_bound_size,
        r.upper_bound_size,
        r.stats.evaluations,
        r.stats.cache_hits,
        r.stats.max_states,
        r.stats.failures
    ));
    out
}

fn render_csdf(r: &CsdfExplorationResult) -> String {
    let mut out = String::new();
    for p in r.pareto.points() {
        out.push_str(&format!("{};{};{}\n", p.size, p.throughput, p.distribution));
    }
    out.push_str(&format!(
        "max={} evals={} hits={} states={}\n",
        r.max_throughput, r.stats.evaluations, r.stats.cache_hits, r.stats.max_states
    ));
    out
}

fn explore_with(graph: &SdfGraph, threads: usize) -> ExplorationResult {
    explore_design_space(
        graph,
        &ExploreOptions {
            threads,
            ..ExploreOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn sdf_results_are_identical_with_and_without_recorder() {
    let _guard = RECORDER_SLOT.lock().unwrap_or_else(|e| e.into_inner());
    for graph in [gallery::example(), gallery::bipartite(), gallery::modem()] {
        for threads in [1, test_threads()] {
            let bare = explore_with(&graph, threads);
            let (observed, recorder) = with_recorder(|| explore_with(&graph, threads));
            assert_eq!(
                render(&bare),
                render(&observed),
                "{} at {threads} threads: telemetry must be observation-only",
                graph.name()
            );
            // And the recorder did observe the run.
            let snapshot = recorder.snapshot();
            let latency = &snapshot.histograms[names::EVAL_LATENCY_NS];
            assert_eq!(
                latency.count,
                observed.stats.evaluations,
                "{}: one latency sample per analysis",
                graph.name()
            );
        }
    }
}

#[test]
fn csdf_results_are_identical_with_and_without_recorder() {
    let _guard = RECORDER_SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let mut b = CsdfGraph::builder("burst3");
    let p = b.actor("p", vec![1, 1, 1]);
    let c = b.actor("c", vec![2]);
    b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
    let graph = b.build().unwrap();
    for threads in [1, test_threads()] {
        let opts = CsdfExploreOptions {
            threads,
            ..CsdfExploreOptions::default()
        };
        let bare = csdf_explore(&graph, &opts).unwrap();
        let (observed, recorder) = with_recorder(|| csdf_explore(&graph, &opts).unwrap());
        assert_eq!(
            render_csdf(&bare),
            render_csdf(&observed),
            "csdf at {threads} threads: telemetry must be observation-only"
        );
        // The CSDF wrapper marks itself in the trace.
        assert!(recorder
            .trace_events()
            .iter()
            .any(|e| e.name == "csdf-explore"));
    }
}

/// One blocking HTTP GET against the embedded server; returns the full
/// response (head and body).
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    response
}

/// Runs `f` with a [`LiveObserver`] teed to a live [`ObsServer`] while a
/// scraper thread hammers `/metrics` and `/status` concurrently — the
/// attached-server analogue of [`with_recorder`]. Returns the result,
/// the last `/metrics` and `/status` scrapes (taken after the terminal
/// event), and the full `/events` replay.
fn with_server<T>(
    graph_name: &str,
    f: impl FnOnce(&LiveObserver) -> T,
) -> (T, String, String, String) {
    let recorder = Arc::new(Recorder::new());
    buffy_telemetry::install(Arc::clone(&recorder));
    let live = LiveObserver::new();
    let server = ObsServer::start(
        "127.0.0.1:0",
        ServeState {
            graph: graph_name.to_string(),
            algorithm: "test".to_string(),
            stats: live.stats(),
            ring: live.ring(),
            recorder: Arc::clone(&recorder),
            budget_evaluations: None,
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    // Mid-run scrapes: a thread hammers the endpoints for the whole run,
    // so any interference with the search would surface as a diff below.
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Acquire) {
                let _ = (http_get(addr, "/metrics"), http_get(addr, "/status"));
                scrapes += 1;
            }
            scrapes
        })
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&live)));
    live.finish("exact");
    stop.store(true, Ordering::Release);
    // A run faster than one scrape roundtrip legitimately yields zero
    // mid-run scrapes; the slower gallery graphs see plenty.
    let _scrapes = scraper.join().unwrap();
    // The run has ended: these scrapes see the final counters (the
    // per-shard tallies publish at end of run) and the complete front,
    // and /events replays the ring and completes.
    let metrics = http_get(addr, "/metrics");
    let status = http_get(addr, "/status");
    let events = http_get(addr, "/events");
    drop(server);
    buffy_telemetry::uninstall();
    match result {
        Ok(v) => (v, metrics, status, events),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[test]
fn sdf_results_are_identical_with_server_attached() {
    let _guard = RECORDER_SLOT.lock().unwrap_or_else(|e| e.into_inner());
    for graph in [gallery::example(), gallery::modem()] {
        for threads in [1, test_threads()] {
            let bare = explore_with(&graph, threads);
            let opts = ExploreOptions {
                threads,
                ..ExploreOptions::default()
            };
            let (served, metrics, status, events) = with_server(graph.name(), |live| {
                explore_design_space_observed(&graph, &opts, live).unwrap()
            });
            assert_eq!(
                render(&bare),
                render(&served),
                "{} at {threads} threads: an attached server must be observation-only",
                graph.name()
            );
            // The concurrent scrapes saw real data: live Prometheus
            // counters and, after the terminal event, the finished status
            // with the full front.
            assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
            assert!(metrics.contains("buffy_memo_shard"), "{metrics}");
            assert!(status.contains("\"finished\":true"), "{status}");
            assert!(
                status.contains(&format!("\"evaluations\":{}", served.stats.evaluations)),
                "{status}"
            );
            assert!(
                status.contains(&format!("\"front_size\":{}", served.pareto.len())),
                "{status}"
            );
            // The SSE replay is framed and terminated.
            assert!(events.contains("event: phase"), "{events}");
            assert!(events.contains("event: evaluation"), "{events}");
            assert!(events.contains("event: end"), "{events}");
        }
    }
}

#[test]
fn csdf_results_are_identical_with_server_attached() {
    let _guard = RECORDER_SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let mut b = CsdfGraph::builder("burst3");
    let p = b.actor("p", vec![1, 1, 1]);
    let c = b.actor("c", vec![2]);
    b.channel("d", p, vec![3, 0, 3], c, vec![2], 0).unwrap();
    let graph = b.build().unwrap();
    for threads in [1, test_threads()] {
        let opts = CsdfExploreOptions {
            threads,
            ..CsdfExploreOptions::default()
        };
        let bare = csdf_explore(&graph, &opts).unwrap();
        let (served, _metrics, status, events) = with_server("burst3", |live| {
            csdf_explore_observed(&graph, &opts, live).unwrap()
        });
        assert_eq!(
            render_csdf(&bare),
            render_csdf(&served),
            "csdf at {threads} threads: an attached server must be observation-only"
        );
        assert!(status.contains("\"graph\":\"burst3\""), "{status}");
        assert!(status.contains("\"finished\":true"), "{status}");
        assert!(events.contains("event: phase"), "{events}");
        assert!(events.contains("event: end"), "{events}");
    }
}

#[test]
fn recorder_collects_per_shard_and_analysis_metrics() {
    let _guard = RECORDER_SLOT.lock().unwrap_or_else(|e| e.into_inner());
    let graph = gallery::example();
    let (result, recorder) = with_recorder(|| explore_with(&graph, 1));
    let snapshot = recorder.snapshot();

    // Per-shard memo statistics sum to the run's totals.
    let hits = buffy_telemetry::Snapshot::family_values(&snapshot.counters, names::SHARD_HITS);
    let misses = buffy_telemetry::Snapshot::family_values(&snapshot.counters, names::SHARD_MISSES);
    let total_hits: u64 = hits.iter().map(|(_, v)| v).sum();
    let total_misses: u64 = misses.iter().map(|(_, v)| v).sum();
    assert_eq!(total_hits, result.stats.cache_hits);
    // Every miss becomes an analysis (plus warm-start replays, absent
    // here).
    assert_eq!(total_misses, result.stats.evaluations);

    // The analysis layer reported interner probe lengths and state
    // counts.
    assert!(snapshot.histograms[names::INTERNER_PROBE_LEN].count > 0);
    assert!(snapshot.histograms[names::ANALYSIS_STATES].count > 0);
    assert!(snapshot.gauges[names::INTERNER_OCCUPANCY_MAX] > 0);

    // Phase spans landed both in the trace and in the phase histogram
    // family.
    let phases = buffy_telemetry::Snapshot::family_values(&snapshot.histograms, names::PHASE_NS);
    assert!(
        phases.iter().any(|(phase, _)| *phase == "bounds"),
        "{phases:?}"
    );
    assert!(recorder
        .trace_events()
        .iter()
        .any(|e| e.name == "phase:bounds"));
}
