//! Cross-model guarantees of the unified execution-and-exploration
//! kernel.
//!
//! Since PR 2 the timed engine, the reduced-state-space throughput
//! analysis, and the design-space exploration drivers are implemented
//! once against `buffy_analysis::DataflowSemantics`, with `SdfGraph` and
//! `CsdfGraph` as the two model implementations. Every SDF graph embeds
//! as a single-phase CSDF graph, and through the shared kernel the two
//! routes must agree *exactly* — same states, same reports, same fronts —
//! not merely up to throughput values.

use buffy_analysis::{throughput_for, Capacities, ExplorationLimits};
use buffy_core::{explore_design_space, explore_design_space_for, ExploreOptions};
use buffy_csdf::{csdf_explore, CsdfExploreOptions, CsdfGraph};
use buffy_gen::RandomGraphConfig;
use buffy_graph::{Rational, SdfGraph, StorageDistribution};

fn paper_example() -> SdfGraph {
    let mut b = SdfGraph::builder("example");
    let a = b.actor("a", 1);
    let bb = b.actor("b", 2);
    let c = b.actor("c", 2);
    b.channel("alpha", a, 2, bb, 3).unwrap();
    b.channel("beta", bb, 1, c, 2).unwrap();
    b.build().unwrap()
}

fn random_graph(seed: u64) -> SdfGraph {
    RandomGraphConfig {
        actors: 4,
        extra_channels: 1,
        max_repetition: 3,
        max_rate_factor: 2,
        max_execution_time: 3,
        seed,
    }
    .generate()
}

/// The same kernel analysis run through both trait implementations must
/// produce byte-identical reports: every field, not just the throughput.
#[test]
fn single_phase_reports_are_byte_identical() {
    for seed in 7000..7010u64 {
        let sdf = random_graph(seed);
        let csdf = CsdfGraph::from_sdf(&sdf);
        let obs = sdf.default_observed_actor();
        let mut caps: Vec<u64> = sdf
            .channels()
            .map(|(id, _)| buffy_core::channel_lower_bound(sdf.channel(id)))
            .collect();
        // Probe the lower-bound corner and two roomier distributions.
        for bump in 0..3u64 {
            let dist = StorageDistribution::from_capacities(caps.clone());
            let s = throughput_for(
                &sdf,
                Capacities::from_distribution(&dist),
                obs,
                ExplorationLimits::default(),
            );
            let c = throughput_for(
                &csdf,
                Capacities::from_distribution(&dist),
                obs,
                ExplorationLimits::default(),
            );
            match (s, c) {
                (Ok(s), Ok(c)) => {
                    assert_eq!(s, c, "seed {seed} bump {bump}: reports diverge");
                    assert_eq!(
                        format!("{s:?}"),
                        format!("{c:?}"),
                        "seed {seed} bump {bump}"
                    );
                }
                (Err(se), Err(ce)) => {
                    assert_eq!(se.to_string(), ce.to_string(), "seed {seed} bump {bump}");
                }
                (s, c) => panic!("seed {seed} bump {bump}: one route failed: {s:?} vs {c:?}"),
            }
            for cap in caps.iter_mut() {
                *cap += 1;
            }
        }
    }
}

/// The full exploration of a single-phase embedding must reproduce the
/// SDF Pareto set byte for byte — identical grids, identical fronts,
/// identical distributions at each point.
#[test]
fn single_phase_pareto_sets_are_byte_identical() {
    for seed in 7000..7006u64 {
        let sdf = random_graph(seed);
        let csdf = CsdfGraph::from_sdf(&sdf);
        let s = explore_design_space(&sdf, &ExploreOptions::default());
        let c = csdf_explore(&csdf, &CsdfExploreOptions::default());
        match (s, c) {
            (Ok(s), Ok(c)) => {
                assert_eq!(s.pareto, c.pareto, "seed {seed}: fronts diverge");
                assert_eq!(format!("{:?}", s.pareto), format!("{:?}", c.pareto));
                assert_eq!(s.max_throughput, c.max_throughput, "seed {seed}");
            }
            (Err(se), Err(ce)) => {
                assert_eq!(se.to_string(), ce.to_string(), "seed {seed}");
            }
            (s, c) => panic!("seed {seed}: one route failed: {s:?} vs {c:?}"),
        }
    }
}

/// The generic driver invoked directly on the CSDF embedding agrees with
/// both typed wrappers on the paper's running example.
#[test]
fn generic_driver_matches_typed_wrappers_on_the_paper_example() {
    let sdf = paper_example();
    let csdf = CsdfGraph::from_sdf(&sdf);
    let s = explore_design_space(&sdf, &ExploreOptions::default()).unwrap();
    let g = explore_design_space_for(&csdf, &ExploreOptions::default()).unwrap();
    let w = csdf_explore(&csdf, &CsdfExploreOptions::default()).unwrap();
    assert_eq!(s.pareto, g.pareto);
    assert_eq!(g.pareto, w.pareto);
    let front: Vec<(u64, Rational)> = s
        .pareto
        .points()
        .iter()
        .map(|p| (p.size, p.throughput))
        .collect();
    assert_eq!(
        front,
        vec![
            (6, Rational::new(1, 7)),
            (8, Rational::new(1, 6)),
            (9, Rational::new(1, 5)),
            (10, Rational::new(1, 4)),
        ]
    );
}

/// Exploration statistics regression: the memoized evaluator is exercised
/// by the CSDF path. A multi-point exploration revisits distributions
/// (the divide-and-conquer probes overlap), so the cache must answer some
/// requests — misses (`evaluations`) stay strictly below total requests.
#[test]
fn csdf_exploration_exercises_the_memo_cache() {
    let sdf = paper_example();
    let csdf = CsdfGraph::from_sdf(&sdf);
    let r = csdf_explore(&csdf, &CsdfExploreOptions::default()).unwrap();
    assert!(r.pareto.len() >= 4, "need a multi-point exploration");
    assert!(r.stats.evaluations > 0);
    assert!(
        r.stats.cache_hits > 0,
        "expected repeated evaluation requests to hit the cache \
         (evaluations {}, cache hits {})",
        r.stats.evaluations,
        r.stats.cache_hits
    );
    assert!(
        r.stats.evaluations < r.stats.requests(),
        "cache misses must stay strictly below total requests"
    );
    // The threaded exploration reports the same front and the same number
    // of distinct analyses (the cache is shared across workers).
    let threaded = csdf_explore(
        &csdf,
        &CsdfExploreOptions {
            threads: 2,
            ..CsdfExploreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r.pareto, threaded.pareto);
}
