//! Integration-test-only package; see the tests/ directory.

/// Thread count for the parallel halves of cross-thread determinism
/// tests: `BUFFY_TEST_THREADS` when set (CI runs the suite with 4),
/// otherwise 4.
pub fn test_threads() -> usize {
    std::env::var("BUFFY_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}
