//! Energy-aware Pareto exploration of the power-annotated modem.
//!
//! Explores the modem graph in the three-axis objective space
//! (storage, throughput, energy) and shows that
//!
//! 1. every front point carries the exact rational energy per graph
//!    iteration derived from the actor power annotations,
//! 2. the energy figures agree with an independent oracle that walks the
//!    periodic phase of each point's actual schedule, and
//! 3. the front itself is byte-identical to the default 2D run — energy
//!    is a monotone function of throughput, so declaring the axis never
//!    changes which distributions are Pareto-optimal.
//!
//! Run with: `cargo run --release -p buffy-examples --bin energy_pareto`

use buffy_analysis::{schedule_energy_per_iteration, ExplorationLimits, Schedule};
use buffy_core::{explore_dependency_guided, ExploreOptions, ObjectiveSpace};
use buffy_gen::gallery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gallery::modem_power();
    let observed = graph.default_observed_actor();

    let opts = ExploreOptions {
        objectives: ObjectiveSpace::with_energy(),
        ..ExploreOptions::default()
    };
    let result = explore_dependency_guided(&graph, &opts)?;

    println!(
        "energy-aware Pareto space of the modem ({} analyses):",
        result.stats.evaluations
    );
    for p in result.pareto.points() {
        println!(
            "  size {:>3}  throughput {:>6}  energy/iteration {:>10}",
            p.size,
            p.throughput.to_string(),
            p.energy().expect("energy axis declared").to_string()
        );
    }

    // Cross-check each point against the schedule-walking oracle: the
    // closed-form energy must match the energy summed over the periodic
    // phase of the point's actual self-timed schedule.
    for p in result.pareto.points() {
        let schedule = Schedule::extract(&graph, &p.distribution, ExplorationLimits::default())?;
        let oracle = schedule_energy_per_iteration(&graph, &schedule, observed)
            .expect("Pareto points never deadlock");
        assert_eq!(
            p.energy().expect("energy axis declared"),
            oracle,
            "closed-form energy must match the schedule walk for γ = {}",
            p.distribution
        );
    }
    println!(
        "schedule-walk oracle agrees on all {} points",
        result.pareto.len()
    );

    // Declaring the energy axis must not move the front: project it back
    // to (size, throughput) and compare with a default-space run.
    let plain = explore_dependency_guided(&graph, &ExploreOptions::default())?;
    assert_eq!(
        result
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput, p.distribution.clone()))
            .collect::<Vec<_>>(),
        plain
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput, p.distribution.clone()))
            .collect::<Vec<_>>(),
        "the 2D projection of the 3D front must equal the default front"
    );
    println!("2D projection matches the default storage/throughput front");

    // Energy falls as the buffers grow: more storage lets the graph run
    // faster, and idle energy per iteration shrinks with the period.
    for pair in result.pareto.points().windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            b.energy() <= a.energy(),
            "energy must be non-increasing along the front"
        );
    }
    println!("energy decreases monotonically along the front");
    Ok(())
}
