//! Working with SDF3-style XML: load a graph from an XML document, explore
//! its design space, and export the graph as XML and Graphviz DOT.
//!
//! Run with: `cargo run -p buffy-examples --bin custom_graph_xml`

use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_graph::dot::to_dot;
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};

/// A small audio effects pipeline, written in the compact channel
/// encoding (rates directly on the channels).
const PIPELINE_XML: &str = r#"<?xml version="1.0"?>
<sdf3 type="sdf" version="1.0">
  <applicationGraph name="effects">
    <sdf name="effects">
      <actor name="src"/>
      <actor name="fft"/>
      <actor name="eq"/>
      <actor name="ifft"/>
      <actor name="sink"/>
      <!-- 64-sample blocks into the FFT, spectra through the EQ -->
      <channel name="blocks"  srcActor="src"  srcRate="1"  dstActor="fft"  dstRate="64"/>
      <channel name="spectra" srcActor="fft"  srcRate="1"  dstActor="eq"   dstRate="1"/>
      <channel name="shaped"  srcActor="eq"   srcRate="1"  dstActor="ifft" dstRate="1"/>
      <channel name="samples" srcActor="ifft" srcRate="64" dstActor="sink" dstRate="1"/>
    </sdf>
    <sdfProperties>
      <actorProperties actor="src"><processor type="dsp" default="true"><executionTime time="1"/></processor></actorProperties>
      <actorProperties actor="fft"><processor type="dsp" default="true"><executionTime time="12"/></processor></actorProperties>
      <actorProperties actor="eq"><processor type="dsp" default="true"><executionTime time="3"/></processor></actorProperties>
      <actorProperties actor="ifft"><processor type="dsp" default="true"><executionTime time="12"/></processor></actorProperties>
      <actorProperties actor="sink"><processor type="dsp" default="true"><executionTime time="1"/></processor></actorProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = read_sdf_xml(PIPELINE_XML)?;
    println!(
        "loaded {:?}: {} actors, {} channels",
        graph.name(),
        graph.num_actors(),
        graph.num_channels()
    );

    let result = explore_dependency_guided(&graph, &ExploreOptions::default())?;
    println!("\nPareto points (observed actor: sink):");
    for p in result.pareto.points() {
        println!("  {p}");
    }

    println!(
        "\nGraphviz DOT (pipe into `dot -Tsvg`):\n{}",
        to_dot(&graph)
    );

    // Round-trip: the canonical SDF3-style serialization of the graph.
    let xml = write_sdf_xml(&graph);
    assert_eq!(read_sdf_xml(&xml)?, graph);
    println!(
        "canonical XML serialization round-trips ({} bytes)",
        xml.len()
    );
    Ok(())
}
