//! Quickstart: build the paper's running example, analyze one storage
//! distribution, and chart the full storage/throughput Pareto space.
//!
//! Run with: `cargo run -p buffy-examples --bin quickstart`

use buffy_analysis::{throughput, ExplorationLimits, Schedule};
use buffy_core::{explore_design_space, ExploreOptions};
use buffy_graph::{SdfGraph, StorageDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model the graph of the paper's Fig. 1:
    //    a --α: 2,3--> b --β: 1,2--> c, execution times (1, 2, 2).
    let mut builder = SdfGraph::builder("example");
    let a = builder.actor("a", 1);
    let b = builder.actor("b", 2);
    let c = builder.actor("c", 2);
    builder.channel("alpha", a, 2, b, 3)?;
    builder.channel("beta", b, 1, c, 2)?;
    let graph = builder.build()?;

    // 2. Throughput of actor c under the storage distribution ⟨4, 2⟩.
    let dist = StorageDistribution::from_capacities(vec![4, 2]);
    let report = throughput(&graph, &dist, c)?;
    println!(
        "throughput of c under γ = {dist}: {} (period {} time steps)",
        report.throughput, report.period
    );

    // 3. The self-timed schedule realizing it (paper Table 1).
    let schedule = Schedule::extract(&graph, &dist, ExplorationLimits::default())?;
    println!("\nself-timed schedule (first 16 time steps):");
    print!("{}", schedule.gantt(&graph, 16));

    // 4. The complete Pareto space (paper Fig. 5).
    let result = explore_design_space(&graph, &ExploreOptions::default())?;
    println!("\nstorage/throughput trade-offs (Pareto points):");
    for point in result.pareto.points() {
        println!("  {point}");
    }
    println!(
        "\nmaximal achievable throughput: {} (reached at size {})",
        result.max_throughput,
        result.pareto.maximal().expect("non-empty front").size
    );
    Ok(())
}
