//! Cyclo-Static Dataflow: buffer sizing for a bursty video line processor.
//!
//! A line-based image scaler emits pixels cyclo-statically: during the
//! first phase of each line it outputs a burst of blocks, then it is
//! silent while it reads ahead. Plain SDF cannot express the within-line
//! variation; CSDF can — and buffer sizing must account for the burst.
//! This example explores the buffer/throughput trade-off of such a
//! pipeline with `buffy-csdf`.
//!
//! Run with: `cargo run -p buffy-examples --bin csdf_bursty`

use buffy_csdf::{csdf_explore, csdf_throughput, CsdfExploreOptions, CsdfGraph, CsdfLimits};
use buffy_graph::StorageDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scaler: 3 phases per line — burst 4 blocks, burst 2, then silence
    // while reading ahead (phase times 1, 1, 2).
    // Filter: consumes 2 blocks per firing, 1 time unit each.
    let mut b = CsdfGraph::builder("line-scaler");
    let scaler = b.actor("scaler", vec![1, 1, 2]);
    let filter = b.actor("filter", vec![1]);
    let sink = b.actor("sink", vec![1]);
    b.channel("blocks", scaler, vec![4, 2, 0], filter, vec![2], 0)?;
    b.channel("pixels", filter, vec![1], sink, vec![1], 0)?;
    let graph = b.build()?;

    // A couple of hand-picked distributions first.
    println!(
        "{:>14} {:>14} {:>12}",
        "blocks buffer", "pixels buffer", "thr(sink)"
    );
    for caps in [[4u64, 1], [4, 2], [6, 1], [6, 2], [8, 2]] {
        let dist = StorageDistribution::from_capacities(caps.to_vec());
        let r = csdf_throughput(&graph, &dist, sink, CsdfLimits::default())?;
        println!(
            "{:>14} {:>14} {:>12}",
            caps[0],
            caps[1],
            if r.deadlocked {
                "deadlock".into()
            } else {
                r.throughput.to_string()
            }
        );
    }

    // The full Pareto front.
    let result = csdf_explore(&graph, &CsdfExploreOptions::default())?;
    println!(
        "\nPareto front (unified-kernel exploration, {} analyses, {} cache hits):",
        result.stats.evaluations, result.stats.cache_hits
    );
    for p in result.pareto.points() {
        println!("  {p}");
    }
    println!(
        "\nmaximal throughput of the sink: {}",
        result.max_throughput
    );

    // Contrast with the SDF approximation, which must assume the worst
    // burst in *every* firing: rates (6 per cycle → 2 per firing average
    // cannot be expressed; the conservative SDF model uses the peak).
    println!(
        "\nnote: an SDF abstraction of the scaler would need the peak rate (4) every\n\
         firing and therefore over-sizes the buffer; CSDF captures the real bursts."
    );
    Ok(())
}
