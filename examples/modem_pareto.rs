//! Pareto space of the modem application (paper Fig. 13).
//!
//! Charts the storage/throughput trade-offs of the 16-actor modem graph
//! with both exploration algorithms and verifies they agree, then prints
//! the schedule of the cheapest configuration meeting 80% of the maximal
//! throughput.
//!
//! Run with: `cargo run --release -p buffy-examples --bin modem_pareto`

use buffy_analysis::{ExplorationLimits, Schedule};
use buffy_core::{
    explore_dependency_guided, explore_design_space, min_storage_for_throughput, ExploreOptions,
};
use buffy_gen::gallery;
use buffy_graph::Rational;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gallery::modem();
    let opts = ExploreOptions::default();

    let guided = explore_dependency_guided(&graph, &opts)?;
    println!(
        "dependency-guided exploration: {} Pareto points, {} analyses",
        guided.pareto.len(),
        guided.stats.evaluations
    );
    let exhaustive = explore_design_space(&graph, &opts)?;
    println!(
        "exhaustive exploration:        {} Pareto points, {} analyses",
        exhaustive.pareto.len(),
        exhaustive.stats.evaluations
    );
    assert_eq!(
        guided
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>(),
        exhaustive
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>(),
        "the two algorithms must chart the same front"
    );

    println!("\nPareto space of the modem (Fig. 13):");
    for p in guided.pareto.points() {
        let bar = "#".repeat((p.throughput.to_f64() * 80.0) as usize);
        println!(
            "  size {:>3}  thr {:>6}  {bar}",
            p.size,
            p.throughput.to_string()
        );
    }

    // Pick the cheapest configuration for a 80%-of-max constraint and show
    // its periodic schedule.
    let constraint = guided.max_throughput * Rational::new(4, 5);
    let point = min_storage_for_throughput(&graph, constraint, &opts)?;
    println!(
        "\nminimal storage for ≥ {} (80% of max): size {} with γ = {}",
        constraint, point.size, point.distribution
    );
    let schedule = Schedule::extract(&graph, &point.distribution, ExplorationLimits::default())?;
    println!(
        "schedule: period {} time steps entered at t = {}",
        schedule.period().expect("live"),
        schedule.period_entry().expect("live"),
    );
    Ok(())
}
