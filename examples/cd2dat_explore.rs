//! Full Pareto exploration of the CD→DAT sample-rate converter.
//!
//! The six-actor chain (paper Fig. 11) converts 44.1 kHz audio to 48 kHz
//! through rate changes 1:1, 2:3, 2:7, 8:7, 5:1. Its repetition vector
//! (147, 147, 98, 28, 32, 160) makes buffer sizing non-obvious: this
//! example charts the whole storage/throughput trade-off with the
//! dependency-guided explorer and renders it as an ASCII Pareto plot.
//!
//! Run with: `cargo run --release -p buffy-examples --bin cd2dat_explore`

use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_gen::gallery;
use buffy_graph::RepetitionVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gallery::cd2dat();
    let q = RepetitionVector::compute(&graph)?;
    println!("cd2dat repetition vector: {:?}", q.as_slice());

    let result = explore_dependency_guided(&graph, &ExploreOptions::default())?;
    println!(
        "explored with {} throughput analyses (max {} states per analysis)\n",
        result.stats.evaluations, result.stats.max_states
    );

    println!("Pareto points (distribution order: c1..c5):");
    for p in result.pareto.points() {
        println!("  {p}");
    }

    // ASCII trade-off chart: size on the x axis, throughput on the y axis.
    let points = result.pareto.points();
    let min_size = points.first().expect("non-empty").size;
    let max_size = points.last().expect("non-empty").size;
    let max_thr = result.max_throughput.to_f64();
    let height = 12usize;
    let width = 48usize;
    println!("\nthroughput");
    let mut rows = vec![vec![b' '; width + 1]; height + 1];
    let mut level = 0.0f64;
    // The x loop fills one cell per column across rows; an iterator
    // rewrite over `rows` would obscure the plot construction.
    #[allow(clippy::needless_range_loop)]
    for x in 0..=width {
        let size = min_size as f64 + (max_size - min_size) as f64 * x as f64 / width as f64;
        for p in points {
            if (p.size as f64) <= size {
                level = p.throughput.to_f64();
            }
        }
        let y = ((level / max_thr) * height as f64).round() as usize;
        rows[height - y][x] = b'*';
    }
    for row in rows {
        println!("  |{}", String::from_utf8_lossy(&row));
    }
    println!("  +{}", "-".repeat(width + 1));
    println!(
        "   size {min_size} .. {max_size} (lb {}, ub {})",
        result.lower_bound_size, result.upper_bound_size
    );
    Ok(())
}
