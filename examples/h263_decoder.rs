//! Buffer sizing for an H.263 video decoder under a frame-rate constraint.
//!
//! The decoder (paper Fig. 12) processes QCIF frames of 594 blocks through
//! VLD → IQ → IDCT → MC. A playback deadline fixes the minimum frame rate;
//! this example computes the smallest channel buffers that still meet it —
//! the paper's headline use case — and contrasts it with the buffers
//! needed for maximal throughput.
//!
//! Run with: `cargo run --release -p buffy-examples --bin h263_decoder`

use buffy_analysis::maximal_throughput;
use buffy_core::{min_storage_for_throughput, ExploreOptions};
use buffy_gen::gallery;
use buffy_graph::Rational;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gallery::h263_decoder();
    let mc = graph.actor_by_name("mc").unwrap();

    // One firing of MC = one decoded frame. The maximal achievable frame
    // rate is fixed by the graph structure and execution times.
    let max_rate = maximal_throughput(&graph, mc)?;
    println!(
        "maximal frame rate: {} frames per time unit (1 frame per {} units)",
        max_rate,
        max_rate.recip()
    );

    // Sweep a few frame-rate requirements: full speed, 90%, 75%, 50%.
    let opts = ExploreOptions::default();
    println!(
        "\n{:>10}  {:>12}  {:>28}",
        "demand", "min storage", "distribution"
    );
    for (label, fraction) in [
        ("100%", Rational::ONE),
        ("90%", Rational::new(9, 10)),
        ("75%", Rational::new(3, 4)),
        ("50%", Rational::new(1, 2)),
    ] {
        let constraint = max_rate * fraction;
        let point = min_storage_for_throughput(&graph, constraint, &opts)?;
        println!(
            "{label:>10}  {:>12}  {:>28}",
            point.size,
            point.distribution.to_string()
        );
    }

    // An infeasible demand is rejected with a typed error.
    let too_fast = max_rate * Rational::new(11, 10);
    match min_storage_for_throughput(&graph, too_fast, &opts) {
        Err(e) => println!("\n110% of the maximal rate: {e}"),
        Ok(_) => unreachable!("constraint above the maximum must be rejected"),
    }
    Ok(())
}
