//! The paper's benchmark graphs (§11, Figs. 1, 6, 9–12).
//!
//! Two graphs are fully determined by the paper text and the literature
//! and are reproduced exactly:
//!
//! - [`example`]: the running example of Fig. 1 (reconstructed from the
//!   generated code of Fig. 8);
//! - [`cd2dat`]: the classic CD→DAT sample-rate converter chain (Fig. 11),
//!   with its textbook rates 1:1, 2:3, 2:7, 8:7, 5:1 and repetition vector
//!   (147, 147, 98, 28, 32, 160);
//! - [`h263_decoder`]: the 4-actor QCIF H.263 decoder model (Fig. 12) with
//!   the standard 594-block multirate (1:594 / 594:1); execution times are
//!   scaled down ~100× from the authors' cycle counts to keep state spaces
//!   tractable (documented substitution — ratios are approximately
//!   preserved).
//!
//! The modem (Fig. 9) and satellite receiver (Fig. 10) topologies live in
//! figures lost to the OCR of the source text; [`modem`] and [`satellite`]
//! are reconstructions matching the published actor/channel counts
//! (16/19 and 22/26), rate character and cyclic structure. [`bipartite`]
//! (Fig. 6) is calibrated to the two properties the paper states for it:
//! minimal storage distributions are not unique (⟨1,2,3,3⟩ and ⟨2,1,3,3⟩
//! realize the same throughput for actor d), and either α or β must exceed
//! its lower bound of 1 for a positive throughput.

use buffy_graph::SdfGraph;

/// The paper's running example (Fig. 1): `a --α:2,3--> b --β:1,2--> c`
/// with execution times (1, 2, 2) and repetition vector (3, 2, 1).
pub fn example() -> SdfGraph {
    let mut b = SdfGraph::builder("example");
    let a = b.actor("a", 1);
    let bb = b.actor("b", 2);
    let c = b.actor("c", 2);
    b.channel("alpha", a, 2, bb, 3).expect("static graph");
    b.channel("beta", bb, 1, c, 2).expect("static graph");
    b.build().expect("static graph")
}

/// The Fig. 6 graph: a two-actor ring (α: a→b, β: b→a, one initial token
/// on each) feeding a chain b → c → d. Four actors, four channels.
///
/// Properties asserted by the paper and reproduced here: with α and β both
/// at their lower bound of 1 the graph deadlocks (both ring channels are
/// full, so neither a nor b can claim output space); storage distributions
/// ⟨1,2,3,3⟩ and ⟨2,1,3,3⟩ both realize the same throughput for `d`.
pub fn bipartite() -> SdfGraph {
    let mut b = SdfGraph::builder("bipartite");
    let a = b.actor("a", 1);
    let bb = b.actor("b", 1);
    let c = b.actor("c", 1);
    let d = b.actor("d", 1);
    b.channel_with_tokens("alpha", a, 1, bb, 1, 1)
        .expect("static graph");
    b.channel_with_tokens("beta", bb, 1, a, 1, 1)
        .expect("static graph");
    b.channel("gamma", bb, 1, c, 1).expect("static graph");
    b.channel("delta", c, 1, d, 1).expect("static graph");
    b.build().expect("static graph")
}

/// The CD→DAT sample-rate converter (Fig. 11, from \[BML99\]): a six-actor
/// chain converting 44.1 kHz to 48 kHz through rate changes
/// 1:1, 2:3, 2:7, 8:7, 5:1; repetition vector (147, 147, 98, 28, 32, 160).
pub fn cd2dat() -> SdfGraph {
    let mut b = SdfGraph::builder("cd2dat");
    let cd = b.actor("cd", 1);
    let f1 = b.actor("fir1", 2);
    let f2 = b.actor("fir2", 2);
    let f3 = b.actor("fir3", 3);
    let f4 = b.actor("fir4", 2);
    let dat = b.actor("dat", 1);
    b.channel("c1", cd, 1, f1, 1).expect("static graph");
    b.channel("c2", f1, 2, f2, 3).expect("static graph");
    b.channel("c3", f2, 2, f3, 7).expect("static graph");
    b.channel("c4", f3, 8, f4, 7).expect("static graph");
    b.channel("c5", f4, 5, dat, 1).expect("static graph");
    b.build().expect("static graph")
}

/// The H.263 decoder model (Fig. 12): VLD → IQ → IDCT → MC over QCIF
/// frames of 594 blocks. Four actors, three channels; repetition vector
/// (1, 594, 594, 1).
///
/// Execution times are the authors' cycle counts scaled down by ~100×
/// (26018, 559, 486, 10958 → 260, 6, 5, 110) so that a period of the
/// self-timed execution stays around 10⁴ rather than 10⁶ time steps —
/// a documented substitution that preserves the ratios (and therefore the
/// shape of the trade-off space) to within rounding.
pub fn h263_decoder() -> SdfGraph {
    let mut b = SdfGraph::builder("h263decoder");
    let vld = b.actor("vld", 260);
    let iq = b.actor("iq", 6);
    let idct = b.actor("idct", 5);
    let mc = b.actor("mc", 110);
    b.channel("vld_iq", vld, 594, iq, 1).expect("static graph");
    b.channel("iq_idct", iq, 1, idct, 1).expect("static graph");
    b.channel("idct_mc", idct, 1, mc, 594)
        .expect("static graph");
    b.build().expect("static graph")
}

/// A modem graph (Fig. 9, from \[BML99\]): 16 actors, 19 channels.
///
/// Reconstruction (the original figure is not recoverable from the source
/// text): a symbol-rate front end with a 16:1 serial-to-parallel
/// conversion, an adaptive-equalizer feedback loop, a carrier-tracking
/// loop, and a 1:16 parallel-to-serial back end — matching the published
/// actor/channel counts, the mostly-1:1-with-a-few-multirate rate
/// character, and the cyclic structure of the original.
pub fn modem() -> SdfGraph {
    let mut b = SdfGraph::builder("modem");
    let input = b.actor("input", 1);
    let s2p = b.actor("s2p", 2); // serial-to-parallel 16:1
    let agc = b.actor("agc", 3);
    let filt = b.actor("filt", 5);
    let eq = b.actor("eq", 4); // adaptive equalizer
    let eq_upd = b.actor("eq_upd", 2); // coefficient update (feedback)
    let carr = b.actor("carr", 3); // carrier recovery
    let loopf = b.actor("loopf", 1); // loop filter (feedback)
    let demod = b.actor("demod", 4);
    let slicer = b.actor("slicer", 1);
    let err = b.actor("err", 2); // error estimator feeding both loops
    let deco = b.actor("deco", 6);
    let descr = b.actor("descr", 3);
    let p2s = b.actor("p2s", 2); // parallel-to-serial 1:16
    let sink = b.actor("sink", 1);
    let hilb = b.actor("hilb", 4); // Hilbert filter side path

    // Front end (multirate down-conversion).
    b.channel("c_in", input, 1, s2p, 16).expect("static graph");
    b.channel("c_s2p", s2p, 1, agc, 1).expect("static graph");
    b.channel("c_agc", agc, 1, filt, 1).expect("static graph");
    b.channel("c_filt", filt, 1, eq, 1).expect("static graph");
    // Hilbert side path around the filter.
    b.channel("c_hilb_in", agc, 1, hilb, 1)
        .expect("static graph");
    b.channel("c_hilb_out", hilb, 1, eq, 1)
        .expect("static graph");
    // Equalizer to demodulator to slicer.
    b.channel("c_eq", eq, 1, demod, 1).expect("static graph");
    b.channel("c_demod", demod, 1, slicer, 1)
        .expect("static graph");
    // Error estimation.
    b.channel("c_sl_err", slicer, 1, err, 1)
        .expect("static graph");
    b.channel("c_dem_err", demod, 1, err, 1)
        .expect("static graph");
    // Equalizer adaptation loop (delayed by one symbol).
    b.channel("c_err_upd", err, 1, eq_upd, 1)
        .expect("static graph");
    b.channel_with_tokens("c_upd_eq", eq_upd, 1, eq, 1, 1)
        .expect("static graph");
    // Carrier tracking loop (delayed).
    b.channel("c_err_carr", err, 1, carr, 1)
        .expect("static graph");
    b.channel("c_carr_loop", carr, 1, loopf, 1)
        .expect("static graph");
    b.channel_with_tokens("c_loop_demod", loopf, 1, demod, 1, 1)
        .expect("static graph");
    // Decoder back end (multirate up-conversion).
    b.channel("c_sl_deco", slicer, 1, deco, 1)
        .expect("static graph");
    b.channel("c_deco", deco, 1, descr, 1)
        .expect("static graph");
    b.channel("c_descr", descr, 16, p2s, 1)
        .expect("static graph");
    b.channel("c_out", p2s, 1, sink, 1).expect("static graph");
    b.build().expect("static graph")
}

/// A satellite receiver (Fig. 10, from Ritz et al.): 22 actors,
/// 26 channels.
///
/// Reconstruction: matched I/Q processing chains (filter bank, decimation
/// 4:1, matched filter, interpolator 1:2) with a shared front end, a
/// phase-error feedback loop coupling the two chains, and a shared
/// demapper/decoder tail — matching the published actor/channel counts
/// and rate character of the original.
pub fn satellite() -> SdfGraph {
    let mut b = SdfGraph::builder("satellite");
    let ant = b.actor("antenna", 1);
    let lna = b.actor("lna", 1);
    let split = b.actor("split", 1);

    // I chain.
    let mix_i = b.actor("mix_i", 1);
    let fir1_i = b.actor("fir1_i", 2);
    let dec_i = b.actor("dec_i", 1);
    let fir2_i = b.actor("fir2_i", 2);
    let mf_i = b.actor("mf_i", 3);
    let interp_i = b.actor("interp_i", 1);

    // Q chain.
    let mix_q = b.actor("mix_q", 1);
    let fir1_q = b.actor("fir1_q", 2);
    let dec_q = b.actor("dec_q", 1);
    let fir2_q = b.actor("fir2_q", 2);
    let mf_q = b.actor("mf_q", 3);
    let interp_q = b.actor("interp_q", 1);

    // Shared tail and synchronization loop.
    let combine = b.actor("combine", 1);
    let phase = b.actor("phase", 2);
    let nco = b.actor("nco", 1); // numerically controlled oscillator
    let demap = b.actor("demap", 1);
    let deint = b.actor("deint", 2);
    let viterbi = b.actor("viterbi", 4);
    let sink = b.actor("sink", 1);

    // Front end.
    b.channel("s_ant", ant, 1, lna, 1).expect("static graph");
    b.channel("s_lna", lna, 1, split, 1).expect("static graph");
    b.channel("s_split_i", split, 1, mix_i, 1)
        .expect("static graph");
    b.channel("s_split_q", split, 1, mix_q, 1)
        .expect("static graph");

    // I chain: decimate 4:1, interpolate 1:2.
    b.channel("s_mix_i", mix_i, 1, fir1_i, 1)
        .expect("static graph");
    b.channel("s_fir1_i", fir1_i, 4, dec_i, 4)
        .expect("static graph");
    b.channel("s_dec_i", dec_i, 1, fir2_i, 4)
        .expect("static graph");
    b.channel("s_fir2_i", fir2_i, 1, mf_i, 1)
        .expect("static graph");
    b.channel("s_mf_i", mf_i, 1, interp_i, 1)
        .expect("static graph");
    b.channel("s_int_i", interp_i, 2, combine, 2)
        .expect("static graph");

    // Q chain (mirrors I).
    b.channel("s_mix_q", mix_q, 1, fir1_q, 1)
        .expect("static graph");
    b.channel("s_fir1_q", fir1_q, 4, dec_q, 4)
        .expect("static graph");
    b.channel("s_dec_q", dec_q, 1, fir2_q, 4)
        .expect("static graph");
    b.channel("s_fir2_q", fir2_q, 1, mf_q, 1)
        .expect("static graph");
    b.channel("s_mf_q", mf_q, 1, interp_q, 1)
        .expect("static graph");
    b.channel("s_int_q", interp_q, 2, combine, 2)
        .expect("static graph");

    // Phase-error loop: combine → phase → nco → both mixers (delayed).
    b.channel("s_comb_phase", combine, 1, phase, 1)
        .expect("static graph");
    b.channel("s_phase_nco", phase, 1, nco, 1)
        .expect("static graph");
    // The mixers run at 4× the symbol rate, so the oscillator fans out 4
    // samples per firing; the 4 initial tokens decouple one iteration.
    b.channel_with_tokens("s_nco_i", nco, 4, mix_i, 1, 4)
        .expect("static graph");
    b.channel_with_tokens("s_nco_q", nco, 4, mix_q, 1, 4)
        .expect("static graph");

    // Timing-error feedback from the phase detector into both matched
    // filters (delayed by one symbol each).
    b.channel_with_tokens("s_phase_mf_i", phase, 1, mf_i, 1, 1)
        .expect("static graph");
    b.channel_with_tokens("s_phase_mf_q", phase, 1, mf_q, 1, 1)
        .expect("static graph");

    // Tail.
    b.channel("s_comb_demap", combine, 1, demap, 1)
        .expect("static graph");
    b.channel("s_demap", demap, 2, deint, 2)
        .expect("static graph");
    b.channel("s_deint", deint, 1, viterbi, 1)
        .expect("static graph");
    b.channel("s_vit", viterbi, 1, sink, 1)
        .expect("static graph");
    b.build().expect("static graph")
}

/// Rebuilds `graph` under a new name with the given actor power table
/// (name → active/idle, dimensionless energy per time step); actors
/// absent from the table stay unannotated.
fn annotate_power(graph: &SdfGraph, name: &str, powers: &[(&str, u64, u64)]) -> SdfGraph {
    let mut b = SdfGraph::builder(name);
    let ids: Vec<_> = graph
        .actors()
        .map(
            |(_, a)| match powers.iter().find(|(n, _, _)| *n == a.name()) {
                Some(&(_, active, idle)) => b
                    .actor_with_power(a.name(), a.execution_time(), active, idle)
                    .expect("static power table"),
                None => b.actor(a.name(), a.execution_time()),
            },
        )
        .collect();
    for (_, ch) in graph.channels() {
        b.channel_with_tokens(
            ch.name(),
            ids[ch.source().index()],
            ch.production(),
            ids[ch.target().index()],
            ch.consumption(),
            ch.initial_tokens(),
        )
        .expect("static graph");
    }
    b.build().expect("static graph")
}

/// [`modem`] with an actor power model for energy-aware exploration.
/// Kept out of [`all`] so the paper's Table 2 gallery is untouched; the
/// figures loosely track each actor's computational weight (the decoder
/// and equalizer dominate, glue actors are cheap).
pub fn modem_power() -> SdfGraph {
    annotate_power(
        &modem(),
        "modem-power",
        &[
            ("input", 5, 1),
            ("s2p", 8, 2),
            ("agc", 12, 3),
            ("filt", 20, 4),
            ("eq", 25, 6),
            ("eq_upd", 10, 2),
            ("carr", 14, 3),
            ("loopf", 6, 1),
            ("demod", 22, 5),
            ("slicer", 4, 1),
            ("err", 9, 2),
            ("deco", 28, 7),
            ("descr", 15, 3),
            ("p2s", 8, 2),
            ("sink", 3, 1),
            ("hilb", 18, 4),
        ],
    )
}

/// [`cd2dat`] with an actor power model for energy-aware exploration.
/// Kept out of [`all`] like [`modem_power`]; the FIR stages dominate,
/// the rate converters at the ends are cheap.
pub fn cd2dat_power() -> SdfGraph {
    annotate_power(
        &cd2dat(),
        "cd2dat-power",
        &[
            ("cd", 6, 1),
            ("fir1", 12, 2),
            ("fir2", 12, 2),
            ("fir3", 16, 3),
            ("fir4", 12, 2),
            ("dat", 5, 1),
        ],
    )
}

/// [`h263_decoder`] with an actor power model mirroring the CSDF
/// gallery's figures (motion compensation dominates, the IDCT is
/// cheap). Kept out of [`all`] like [`modem_power`].
pub fn h263_decoder_power() -> SdfGraph {
    annotate_power(
        &h263_decoder(),
        "h263decoder-power",
        &[("vld", 30, 6), ("iq", 10, 2), ("idct", 8, 1), ("mc", 45, 9)],
    )
}

/// All six gallery graphs with their paper names, in the order of the
/// paper's Table 2.
pub fn all() -> Vec<SdfGraph> {
    vec![
        example(),
        bipartite(),
        modem(),
        cd2dat(),
        satellite(),
        h263_decoder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{is_consistent, RepetitionVector};

    #[test]
    fn table2_actor_and_channel_counts() {
        let cases = [
            ("example", 3, 2),
            ("bipartite", 4, 4),
            ("modem", 16, 19),
            ("cd2dat", 6, 5),
            ("satellite", 22, 26),
            ("h263decoder", 4, 3),
        ];
        for (g, (name, actors, channels)) in all().iter().zip(cases) {
            assert_eq!(g.name(), name);
            assert_eq!(g.num_actors(), actors, "{name} actor count");
            assert_eq!(g.num_channels(), channels, "{name} channel count");
        }
    }

    #[test]
    fn all_graphs_consistent_and_connected() {
        for g in all() {
            assert!(is_consistent(&g), "{} inconsistent", g.name());
            assert!(g.is_connected(), "{} not connected", g.name());
        }
    }

    #[test]
    fn cd2dat_repetition_vector() {
        let g = cd2dat();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[147, 147, 98, 28, 32, 160]);
    }

    #[test]
    fn h263_repetition_vector() {
        let g = h263_decoder();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 594, 594, 1]);
    }

    #[test]
    fn power_variants_mirror_their_unannotated_graphs() {
        for (base, powered) in [
            (modem(), modem_power()),
            (cd2dat(), cd2dat_power()),
            (h263_decoder(), h263_decoder_power()),
        ] {
            assert!(is_consistent(&powered), "{}", powered.name());
            assert_eq!(powered.num_actors(), base.num_actors());
            assert_eq!(powered.num_channels(), base.num_channels());
            for (id, a) in base.actors() {
                let p = powered.actor(id);
                assert_eq!(p.name(), a.name());
                assert_eq!(p.execution_time(), a.execution_time());
                assert!(p.active_power() > 0, "{} unannotated", p.name());
                assert!(p.idle_power() <= p.active_power());
            }
        }
        let g = modem_power();
        let eq = g.actor_by_name("eq").unwrap();
        assert_eq!(g.actor(eq).active_power(), 25);
        assert_eq!(g.actor(eq).idle_power(), 6);
    }

    #[test]
    fn modem_and_satellite_have_unit_iterations_mostly() {
        // The reconstructions keep repetition vectors modest so that state
        // spaces stay small (as the paper's Table 2 reports).
        for g in [modem(), satellite()] {
            let q = RepetitionVector::compute(&g).unwrap();
            assert!(
                q.as_slice().iter().all(|&e| e <= 16),
                "{}: {:?}",
                g.name(),
                q.as_slice()
            );
        }
    }
}
