//! Seeded random generation of consistent SDF graphs.
//!
//! The generator fixes a random repetition vector first and derives channel
//! rates from it, so every generated graph is consistent by construction
//! (the role SDF3's `sdf3generate` plays for the original tool chain).
//! Cycle-closing channels receive one full iteration of initial tokens,
//! which keeps every cycle live.

use crate::rng::SplitMix64;
use buffy_graph::{gcd_u64, SdfGraph};

/// Configuration for the random graph generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomGraphConfig {
    /// Number of actors (≥ 1).
    pub actors: usize,
    /// Extra channels beyond the spanning tree (tree uses `actors − 1`).
    pub extra_channels: usize,
    /// Repetition-vector entries are drawn from `1..=max_repetition`.
    pub max_repetition: u64,
    /// Rate multipliers are drawn from `1..=max_rate_factor`.
    pub max_rate_factor: u64,
    /// Execution times are drawn from `1..=max_execution_time`.
    pub max_execution_time: u64,
    /// RNG seed: the same configuration always yields the same graph.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            actors: 6,
            extra_channels: 2,
            max_repetition: 4,
            max_rate_factor: 2,
            max_execution_time: 4,
            seed: 0,
        }
    }
}

impl RandomGraphConfig {
    /// Generates the graph for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `actors == 0` or a bound parameter is zero.
    pub fn generate(&self) -> SdfGraph {
        assert!(self.actors >= 1, "need at least one actor");
        assert!(self.max_repetition >= 1 && self.max_rate_factor >= 1);
        assert!(self.max_execution_time >= 1);
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let n = self.actors;

        // Random repetition vector.
        let q: Vec<u64> = (0..n)
            .map(|_| rng.range_u64(1, self.max_repetition))
            .collect();

        let mut b = SdfGraph::builder(format!("random-{}", self.seed));
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("n{i}"), rng.range_u64(1, self.max_execution_time)))
            .collect();

        // Rates for an edge u→v consistent with q: p = k·q(v)/g,
        // c = k·q(u)/g with g = gcd(q(u), q(v)).
        let rates = |rng: &mut SplitMix64, u: usize, v: usize| {
            let g = gcd_u64(q[u], q[v]);
            let k = rng.range_u64(1, self.max_rate_factor);
            (k * (q[v] / g), k * (q[u] / g))
        };

        // Spanning tree over a random actor order: guarantees weak
        // connectivity.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.range_usize(0, i + 1);
            order.swap(i, j);
        }
        let mut nch = 0usize;
        for w in 1..n {
            let u = order[rng.range_usize(0, w)];
            let v = order[w];
            let (p, c) = rates(&mut rng, u, v);
            b.channel(format!("t{nch}"), ids[u], p, ids[v], c)
                .expect("positive rates");
            nch += 1;
        }

        // Extra channels; give each one full iteration of initial tokens
        // so any cycle it closes stays live.
        for _ in 0..self.extra_channels {
            let u = rng.range_usize(0, n);
            let v = rng.range_usize(0, n);
            let (p, c) = rates(&mut rng, u, v);
            let tokens = p * q[u];
            b.channel_with_tokens(format!("t{nch}"), ids[u], p, ids[v], c, tokens)
                .expect("positive rates");
            nch += 1;
        }

        b.build().expect("names are unique by construction")
    }
}

/// A homogeneous chain of `n` actors with unit rates and the given
/// execution time for every actor.
pub fn chain(n: usize, execution_time: u64) -> SdfGraph {
    assert!(n >= 1);
    let mut b = SdfGraph::builder(format!("chain-{n}"));
    let mut prev = b.actor("n0", execution_time);
    for i in 1..n {
        let next = b.actor(format!("n{i}"), execution_time);
        b.channel(format!("c{i}"), prev, 1, next, 1)
            .expect("positive rates");
        prev = next;
    }
    b.build().expect("static construction")
}

/// A homogeneous ring of `n` actors with unit rates, `tokens` initial
/// tokens on the closing channel and the given execution time everywhere.
pub fn ring(n: usize, execution_time: u64, tokens: u64) -> SdfGraph {
    assert!(n >= 2);
    let mut b = SdfGraph::builder(format!("ring-{n}"));
    let first = b.actor("n0", execution_time);
    let mut prev = first;
    for i in 1..n {
        let next = b.actor(format!("n{i}"), execution_time);
        b.channel(format!("c{i}"), prev, 1, next, 1)
            .expect("positive rates");
        prev = next;
    }
    b.channel_with_tokens("c0", prev, 1, first, 1, tokens)
        .expect("positive rates");
    b.build().expect("static construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{is_consistent, RepetitionVector};

    #[test]
    fn generated_graphs_are_consistent_and_connected() {
        for seed in 0..50 {
            let g = RandomGraphConfig {
                seed,
                ..RandomGraphConfig::default()
            }
            .generate();
            assert!(is_consistent(&g), "seed {seed}");
            assert!(g.is_connected(), "seed {seed}");
            assert_eq!(g.num_actors(), 6);
            assert_eq!(g.num_channels(), 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomGraphConfig {
            seed: 42,
            ..RandomGraphConfig::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = RandomGraphConfig {
            seed: 43,
            ..RandomGraphConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn repetition_vector_divides_generated_one() {
        // The generated graph's minimal repetition vector must divide the
        // one the generator drew (rates were derived from it).
        let cfg = RandomGraphConfig {
            seed: 7,
            max_repetition: 6,
            ..RandomGraphConfig::default()
        };
        let g = cfg.generate();
        let q = RepetitionVector::compute(&g).unwrap();
        assert!(q.as_slice().iter().all(|&e| (1..=6).contains(&e)));
    }

    #[test]
    fn chain_and_ring_shapes() {
        let c = chain(5, 2);
        assert_eq!(c.num_actors(), 5);
        assert_eq!(c.num_channels(), 4);
        assert_eq!(c.sources().len(), 1);
        assert_eq!(c.sinks().len(), 1);

        let r = ring(4, 1, 2);
        assert_eq!(r.num_actors(), 4);
        assert_eq!(r.num_channels(), 4);
        assert!(r.sinks().is_empty());
        assert!(is_consistent(&r));
        assert_eq!(r.total_initial_tokens(), 2);
    }

    #[test]
    fn single_actor_generation() {
        let g = RandomGraphConfig {
            actors: 1,
            extra_channels: 1,
            seed: 3,
            ..RandomGraphConfig::default()
        }
        .generate();
        assert_eq!(g.num_actors(), 1);
        assert!(is_consistent(&g)); // self-loop rates are equal
    }
}
