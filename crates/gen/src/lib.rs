//! # buffy-gen
//!
//! Benchmark workloads for **buffy-rs**: the six graphs of the paper's
//! experimental evaluation ([`gallery`]) and seeded random
//! consistent-graph generators ([`random`]) used by property tests and
//! scalability benchmarks.
//!
//! ```
//! use buffy_gen::gallery;
//! let g = gallery::example();
//! assert_eq!(g.num_actors(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod gallery;
pub mod random;
pub mod rng;

pub use random::{chain, ring, RandomGraphConfig};
pub use rng::SplitMix64;
