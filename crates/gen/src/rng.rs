//! A small deterministic PRNG for graph generation and property tests.
//!
//! The workspace builds fully offline, so instead of an external `rand`
//! dependency the generators use a SplitMix64 stream: a 64-bit counter
//! passed through a mixing finalizer. The sequence is stable across
//! platforms and releases, which keeps seeded graph generation
//! reproducible — the same guarantee `StdRng::seed_from_u64` provided.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// Not cryptographically secure; intended for reproducible test-input
/// generation only.
///
/// # Examples
///
/// ```
/// use buffy_gen::rng::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(7);
/// let mut b = SplitMix64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_u64(1, 6);
/// assert!((1..=6).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in the inclusive range `lo..=hi`.
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Largest multiple of `span` that fits in u64; reject above it.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// A uniform `usize` in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.range_u64(lo as u64, hi as u64 - 1) as usize
    }

    /// A boolean that is `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        assert!(denom > 0, "zero denominator");
        self.range_u64(0, denom - 1) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::seed_from_u64(123);
        let mut b = SplitMix64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_value() {
        // Reference value of the SplitMix64 stream for seed 0 — guards
        // against accidental changes to the mixing constants.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range_u64(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let u = r.range_usize(0, 5);
            assert!(u < 5);
        }
        assert!(seen_lo && seen_hi, "range endpoints should both appear");
    }

    #[test]
    fn degenerate_ranges() {
        let mut r = SplitMix64::seed_from_u64(1);
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_usize(2, 3), 2);
        let _ = r.range_u64(0, u64::MAX); // full range must not loop forever
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = SplitMix64::seed_from_u64(17);
        let hits = (0..4000).filter(|_| r.ratio(1, 4)).count();
        assert!((800..1200).contains(&hits), "got {hits} / 4000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::seed_from_u64(0);
        let _ = r.range_u64(4, 3);
    }
}
