//! Timing bench: HSDF expansion and maximum-cycle-ratio analysis
//! (\[GG93\] role in the paper, §9) across the gallery and growing random
//! graphs.

use buffy_analysis::{max_cycle_ratio, maximal_throughput, Hsdf, RatioGraph};
use buffy_bench::timing;
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::RepetitionVector;
use std::hint::black_box;

fn main() {
    let mut group = timing::group("mcm");
    for graph in gallery::all() {
        let observed = graph.default_observed_actor();
        group.bench(&format!("{}/maximal-throughput", graph.name()), || {
            maximal_throughput(black_box(&graph), observed).unwrap()
        });
    }
    // Scaling with graph size on random graphs.
    for actors in [8usize, 16, 32] {
        let graph = RandomGraphConfig {
            actors,
            extra_channels: actors / 2,
            max_repetition: 4,
            max_rate_factor: 2,
            max_execution_time: 5,
            seed: 99,
        }
        .generate();
        let q = RepetitionVector::compute(&graph).expect("consistent");
        group.bench(&format!("random-{actors}/expand+howard"), || {
            let h = Hsdf::expand(black_box(&graph), &q);
            max_cycle_ratio(&RatioGraph::from_hsdf(&h)).unwrap()
        });
    }
    group.finish();
}
