//! Timing bench (ablation A): the paper's exhaustive design-space
//! exploration vs the dependency-guided exploration vs the parallel
//! exhaustive variant — same exact Pareto fronts, different costs.

use buffy_bench::timing;
use buffy_core::{explore_dependency_guided, explore_design_space, ExploreOptions};
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::SdfGraph;
use std::hint::black_box;

fn subjects() -> Vec<SdfGraph> {
    vec![
        gallery::example(),
        gallery::bipartite(),
        gallery::modem(),
        RandomGraphConfig {
            actors: 5,
            extra_channels: 1,
            max_repetition: 3,
            max_rate_factor: 2,
            max_execution_time: 3,
            seed: 11,
        }
        .generate(),
    ]
}

fn main() {
    let mut group = timing::group("dse");
    for graph in subjects() {
        let opts = ExploreOptions::default();
        group.bench(&format!("{}/exhaustive", graph.name()), || {
            explore_design_space(black_box(&graph), &opts).unwrap()
        });
        group.bench(&format!("{}/guided", graph.name()), || {
            explore_dependency_guided(black_box(&graph), &opts).unwrap()
        });
        let par = ExploreOptions {
            threads: 4,
            ..ExploreOptions::default()
        };
        group.bench(&format!("{}/exhaustive-4-threads", graph.name()), || {
            explore_design_space(black_box(&graph), &par).unwrap()
        });
    }
    group.finish();
}
