//! Timing bench: single-distribution throughput analysis (the inner loop
//! of the design-space exploration, paper §7) on every gallery graph, at
//! the lower-bound distribution and at a generous distribution.

use buffy_analysis::throughput;
use buffy_bench::timing;
use buffy_core::lower_bound_distribution;
use buffy_gen::gallery;
use buffy_graph::{RepetitionVector, StorageDistribution};
use std::hint::black_box;

fn generous(graph: &buffy_graph::SdfGraph) -> StorageDistribution {
    let q = RepetitionVector::compute(graph).expect("consistent");
    graph
        .channels()
        .map(|(_, c)| {
            c.initial_tokens() + c.production() * q[c.source()] + c.consumption() * q[c.target()]
        })
        .collect()
}

fn main() {
    let mut group = timing::group("throughput");
    for graph in gallery::all() {
        let observed = graph.default_observed_actor();
        let lb = lower_bound_distribution(&graph);
        group.bench(&format!("{}/lower-bound", graph.name()), || {
            throughput(black_box(&graph), black_box(&lb), observed).unwrap()
        });
        let gen = generous(&graph);
        group.bench(&format!("{}/generous", graph.name()), || {
            throughput(black_box(&graph), black_box(&gen), observed).unwrap()
        });
    }
    group.finish();
}
