//! Timing bench (ablation B): full timed state space (paper §6) vs the
//! reduced state space (paper §7) — the reduction is the paper's key
//! implementation idea; this bench quantifies it.

use buffy_analysis::{explore, throughput, ExplorationLimits};
use buffy_bench::timing;
use buffy_core::lower_bound_distribution;
use buffy_gen::gallery;
use std::hint::black_box;

fn main() {
    let mut group = timing::group("state-space");
    for graph in [
        gallery::example(),
        gallery::bipartite(),
        gallery::modem(),
        gallery::cd2dat(),
    ] {
        let observed = graph.default_observed_actor();
        let dist = lower_bound_distribution(&graph);
        group.bench(&format!("{}/full", graph.name()), || {
            explore(
                black_box(&graph),
                black_box(&dist),
                ExplorationLimits::default(),
            )
            .unwrap()
        });
        group.bench(&format!("{}/reduced", graph.name()), || {
            throughput(black_box(&graph), black_box(&dist), observed).unwrap()
        });
    }
    group.finish();
}
