//! Criterion bench (ablation B): full timed state space (paper §6) vs the
//! reduced state space (paper §7) — the reduction is the paper's key
//! implementation idea; this bench quantifies it.

use buffy_analysis::{explore, throughput, ExplorationLimits};
use buffy_core::lower_bound_distribution;
use buffy_gen::gallery;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_state_space(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("state-space");
    for graph in [gallery::example(), gallery::bipartite(), gallery::modem(), gallery::cd2dat()] {
        let observed = graph.default_observed_actor();
        let dist = lower_bound_distribution(&graph);
        group.bench_function(format!("{}/full", graph.name()), |b| {
            b.iter(|| {
                explore(
                    black_box(&graph),
                    black_box(&dist),
                    ExplorationLimits::default(),
                )
                .unwrap()
            })
        });
        group.bench_function(format!("{}/reduced", graph.name()), |b| {
            b.iter(|| throughput(black_box(&graph), black_box(&dist), observed).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_space);
criterion_main!(benches);
