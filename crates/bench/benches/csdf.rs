//! Criterion bench: CSDF analyses — throughput, maximal throughput and
//! exploration on the CSDF gallery, plus the single-phase embedding
//! overhead relative to the plain SDF analysis.

use buffy_analysis::throughput as sdf_throughput;
use buffy_core::lower_bound_distribution;
use buffy_csdf::{
    csdf_explore, csdf_maximal_throughput, csdf_throughput, CsdfExploreOptions, CsdfGraph,
    CsdfLimits,
};
use buffy_gen::gallery as sdf_gallery;
use buffy_graph::StorageDistribution;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_csdf(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("csdf");

    for graph in [buffy_csdf::gallery::updown(), buffy_csdf::gallery::line_scaler()] {
        let obs = graph.default_observed_actor();
        let dist = StorageDistribution::from_capacities(vec![8; graph.num_channels()]);
        group.bench_function(format!("{}/throughput", graph.name()), |b| {
            b.iter(|| csdf_throughput(black_box(&graph), &dist, obs, CsdfLimits::default()).unwrap())
        });
        group.bench_function(format!("{}/maximal-throughput", graph.name()), |b| {
            b.iter(|| csdf_maximal_throughput(black_box(&graph), obs).unwrap())
        });
        group.bench_function(format!("{}/explore", graph.name()), |b| {
            b.iter(|| csdf_explore(black_box(&graph), &CsdfExploreOptions::default()).unwrap())
        });
    }

    // Embedding overhead: the paper's example through the SDF engine vs
    // the phased engine.
    let sdf = sdf_gallery::example();
    let csdf = CsdfGraph::from_sdf(&sdf);
    let dist = lower_bound_distribution(&sdf);
    let obs_sdf = sdf.default_observed_actor();
    let obs_csdf = csdf.default_observed_actor();
    group.bench_function("example/sdf-engine", |b| {
        b.iter(|| sdf_throughput(black_box(&sdf), &dist, obs_sdf).unwrap())
    });
    group.bench_function("example/csdf-engine", |b| {
        b.iter(|| csdf_throughput(black_box(&csdf), &dist, obs_csdf, CsdfLimits::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_csdf);
criterion_main!(benches);
