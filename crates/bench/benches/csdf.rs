//! Timing bench: CSDF analyses — throughput, maximal throughput and
//! exploration on the CSDF gallery, plus the single-phase embedding
//! overhead relative to the plain SDF analysis.

use buffy_analysis::throughput as sdf_throughput;
use buffy_bench::timing;
use buffy_core::lower_bound_distribution;
use buffy_csdf::{
    csdf_explore, csdf_maximal_throughput, csdf_throughput, CsdfExploreOptions, CsdfGraph,
    CsdfLimits,
};
use buffy_gen::gallery as sdf_gallery;
use buffy_graph::StorageDistribution;
use std::hint::black_box;

fn main() {
    let mut group = timing::group("csdf");

    for graph in [
        buffy_csdf::gallery::updown(),
        buffy_csdf::gallery::line_scaler(),
    ] {
        let obs = graph.default_observed_actor();
        let dist = StorageDistribution::from_capacities(vec![8; graph.num_channels()]);
        group.bench(&format!("{}/throughput", graph.name()), || {
            csdf_throughput(black_box(&graph), &dist, obs, CsdfLimits::default()).unwrap()
        });
        group.bench(&format!("{}/maximal-throughput", graph.name()), || {
            csdf_maximal_throughput(black_box(&graph), obs).unwrap()
        });
        group.bench(&format!("{}/explore", graph.name()), || {
            csdf_explore(black_box(&graph), &CsdfExploreOptions::default()).unwrap()
        });
    }

    // Embedding overhead: the paper's example through the SDF engine vs
    // the phased engine.
    let sdf = sdf_gallery::example();
    let csdf = CsdfGraph::from_sdf(&sdf);
    let dist = lower_bound_distribution(&sdf);
    let obs_sdf = sdf.default_observed_actor();
    let obs_csdf = csdf.default_observed_actor();
    group.bench("example/sdf-engine", || {
        sdf_throughput(black_box(&sdf), &dist, obs_sdf).unwrap()
    });
    group.bench("example/csdf-engine", || {
        csdf_throughput(black_box(&csdf), &dist, obs_csdf, CsdfLimits::default()).unwrap()
    });
    group.finish();
}
