//! Timing bench: SDF3-style XML serialization and parsing across graph
//! sizes (the `buffy` tool's input path, paper §10).

use buffy_bench::timing;
use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use std::hint::black_box;

fn main() {
    let mut group = timing::group("xml");
    let mut subjects = vec![gallery::modem(), gallery::satellite()];
    subjects.push(
        RandomGraphConfig {
            actors: 100,
            extra_channels: 50,
            max_repetition: 4,
            max_rate_factor: 2,
            max_execution_time: 9,
            seed: 7,
        }
        .generate(),
    );
    for graph in subjects {
        let text = write_sdf_xml(&graph);
        group.bench(&format!("{}/write", graph.name()), || {
            write_sdf_xml(black_box(&graph))
        });
        group.bench(&format!("{}/read", graph.name()), || {
            read_sdf_xml(black_box(&text)).unwrap()
        });
    }
    group.finish();
}
