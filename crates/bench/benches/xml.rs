//! Criterion bench: SDF3-style XML serialization and parsing across graph
//! sizes (the `buffy` tool's input path, paper §10).

use buffy_gen::{gallery, RandomGraphConfig};
use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_xml(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("xml");
    let mut subjects = vec![gallery::modem(), gallery::satellite()];
    subjects.push(
        RandomGraphConfig {
            actors: 100,
            extra_channels: 50,
            max_repetition: 4,
            max_rate_factor: 2,
            max_execution_time: 9,
            seed: 7,
        }
        .generate(),
    );
    for graph in subjects {
        let text = write_sdf_xml(&graph);
        group.bench_function(format!("{}/write", graph.name()), |b| {
            b.iter(|| write_sdf_xml(black_box(&graph)))
        });
        group.bench_function(format!("{}/read", graph.name()), |b| {
            b.iter(|| read_sdf_xml(black_box(&text)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
