//! A minimal wall-clock timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches use this
//! `std::time::Instant`-based micro-harness instead of an external
//! benchmarking framework: each benchmark warms up, then runs batches of
//! iterations until a minimum measurement time is reached and reports the
//! mean time per iteration. The numbers are indicative wall-clock
//! timings, not statistically rigorous estimates.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of timing measurements, printed as `group/bench  time`.
///
/// ```
/// let mut g = buffy_bench::timing::group("demo");
/// g.bench("sum", || (0..100u64).sum::<u64>());
/// g.finish();
/// ```
pub struct TimingGroup {
    name: String,
    min_time: Duration,
}

/// Starts a timing group with the default 20 ms measurement budget per
/// benchmark.
pub fn group(name: impl Into<String>) -> TimingGroup {
    TimingGroup {
        name: name.into(),
        min_time: Duration::from_millis(20),
    }
}

impl TimingGroup {
    /// Sets the minimum measurement time per benchmark.
    pub fn set_min_time(&mut self, min_time: Duration) -> &mut Self {
        self.min_time = min_time;
        self
    }

    /// Measures `f` and prints the mean time per iteration.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up and batch-size calibration from a single timed call.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch: u64 =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.min_time {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        println!(
            "{:<50} {:>14}  ({iters} iters)",
            format!("{}/{name}", self.name),
            format_seconds(per_iter),
        );
    }

    /// Ends the group (prints a trailing blank line).
    pub fn finish(self) {
        println!();
    }
}

/// Renders a duration in engineer-friendly units.
fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = group("test");
        g.set_min_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench("noop", || calls += 1);
        assert!(calls > 0);
        g.finish();
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(2.5e-3), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }
}
