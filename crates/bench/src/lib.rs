//! # buffy-bench
//!
//! Experiment harness for **buffy-rs**: shared table/plot formatting used
//! by the per-table/per-figure binaries (`src/bin/*.rs`) that regenerate
//! every table and figure of the paper's evaluation (§11), plus wall-clock
//! timing benches (`benches/*.rs`) built on the in-repo [`timing`] harness.
//!
//! | paper artefact | binary |
//! |----------------|--------|
//! | Table 1 (schedule)            | `table1_schedule` |
//! | Fig. 3/4 (state spaces)       | `fig3_state_space` |
//! | Fig. 5 (example Pareto space) | `fig5_pareto` |
//! | Fig. 6 (non-unique minima)    | `fig6_bipartite` |
//! | Fig. 7 (design-space bounds)  | `fig7_bounds` |
//! | Fig. 13 (modem Pareto space)  | `fig13_modem` |
//! | Table 2 (all six graphs)      | `table2_results` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use buffy_core::ParetoSet;

pub mod timing;

/// Formats rows as an aligned text table with a header rule.
///
/// ```
/// let t = buffy_bench::format_table(
///     &["graph", "size"],
///     &[vec!["example".into(), "6".into()]],
/// );
/// assert!(t.contains("example"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    render(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Renders a Pareto front as an ASCII step plot (size on x, throughput on
/// y) in the style of the paper's Figs. 5 and 13: everything on/right of
/// the steps is feasible.
pub fn ascii_front(front: &ParetoSet, width: usize, height: usize) -> String {
    let points = front.points();
    if points.is_empty() {
        return String::from("(empty front)\n");
    }
    let min_size = points.first().expect("non-empty").size;
    let max_size = points.last().expect("non-empty").size.max(min_size + 1);
    let max_thr = points.last().expect("non-empty").throughput.to_f64();
    let mut grid = vec![vec![b' '; width + 1]; height + 1];
    // The x loop fills one cell per column across rows; an iterator
    // rewrite over `grid` would obscure the plot construction.
    #[allow(clippy::needless_range_loop)]
    for x in 0..=width {
        let size = min_size as f64 + (max_size - min_size) as f64 * (x as f64) / (width as f64);
        let mut level = 0.0;
        for p in points {
            if p.size as f64 <= size + 1e-9 {
                level = p.throughput.to_f64();
            }
        }
        let y = ((level / max_thr) * height as f64).round() as usize;
        grid[height - y.min(height)][x] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!("throughput (max {max_thr:.6})\n"));
    for row in grid {
        out.push_str("  |");
        out.push_str(&String::from_utf8_lossy(&row));
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width + 1));
    out.push('\n');
    out.push_str(&format!("   distribution size {min_size} .. {max_size}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_core::ParetoPoint;
    use buffy_graph::{Rational, StorageDistribution};

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn front_plot_renders() {
        let front: ParetoSet = [
            ParetoPoint::new(
                StorageDistribution::from_capacities(vec![4, 2]),
                Rational::new(1, 7),
            ),
            ParetoPoint::new(
                StorageDistribution::from_capacities(vec![7, 3]),
                Rational::new(1, 4),
            ),
        ]
        .into_iter()
        .collect();
        let plot = ascii_front(&front, 30, 8);
        assert!(plot.contains('*'));
        assert!(plot.contains("size 6 .. 10"));
        assert_eq!(ascii_front(&ParetoSet::new(), 10, 5), "(empty front)\n");
    }
}
