//! Companion experiment to the paper's §3 discussion of storage models:
//! channels with *separate* memories (the paper's conservative model, the
//! one the exploration optimizes) versus a single memory *shared* by all
//! channels (Murthy et al. \[MB00\], natural on single processors).
//!
//! For every Pareto point of every gallery graph this binary reports the
//! distribution size (separate model) next to the measured peak number of
//! simultaneously stored tokens (shared model): the shared requirement is
//! never larger, and the gap is the memory a single-processor
//! implementation could save.

use buffy_analysis::{shared_memory_peak, ExplorationLimits};
use buffy_bench::format_table;
use buffy_core::{explore_dependency_guided, ExploreOptions};
use buffy_gen::gallery;

fn main() {
    println!("Storage models: separate memories (sz(γ)) vs shared memory (peak tokens)\n");
    let mut rows = Vec::new();
    for graph in gallery::all() {
        // Cap the H.263 space as in the tests; the comparison only needs
        // a few representative Pareto points.
        let opts = ExploreOptions {
            max_size: (graph.name() == "h263decoder").then_some(1210),
            ..ExploreOptions::default()
        };
        let result = explore_dependency_guided(&graph, &opts).expect("exploration succeeds");
        for p in result.pareto.points() {
            let mem = shared_memory_peak(&graph, &p.distribution, ExplorationLimits::default())
                .expect("analysis succeeds");
            let saving = 100.0 * (1.0 - mem.peak_tokens as f64 / p.size as f64);
            rows.push(vec![
                graph.name().to_string(),
                p.throughput.to_string(),
                p.size.to_string(),
                mem.peak_tokens.to_string(),
                format!("{saving:.0}%"),
            ]);
        }
    }
    print!(
        "{}",
        format_table(
            &[
                "graph",
                "throughput",
                "separate (sz)",
                "shared (peak)",
                "saving"
            ],
            &rows
        )
    );
    println!(
        "\nthe separate-memory model is a sound upper bound for any implementation\n\
         (paper §3); on shared-memory single-processor targets the measured peak\n\
         shows how much of it is actually needed simultaneously."
    );
}
