//! Regenerates the paper's **Fig. 13**: the Pareto space of the modem
//! application, computed with both exploration algorithms (which must
//! agree).

use buffy_bench::{ascii_front, format_table};
use buffy_core::{explore_dependency_guided, explore_design_space, ExploreOptions};
use buffy_gen::gallery;

fn main() {
    let graph = gallery::modem();
    let opts = ExploreOptions::default();

    let guided = explore_dependency_guided(&graph, &opts).expect("exploration succeeds");
    let exhaustive = explore_design_space(&graph, &opts).expect("exploration succeeds");
    assert_eq!(
        guided
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>(),
        exhaustive
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect::<Vec<_>>(),
        "algorithms must chart the same front"
    );

    println!(
        "Fig. 13: Pareto space of the modem ({} actors, {} channels)\n",
        graph.num_actors(),
        graph.num_channels()
    );
    let rows: Vec<Vec<String>> = guided
        .pareto
        .points()
        .iter()
        .map(|p| {
            vec![
                p.size.to_string(),
                p.throughput.to_string(),
                format!("{:.6}", p.throughput.to_f64()),
            ]
        })
        .collect();
    print!(
        "{}",
        format_table(&["size", "throughput", "(decimal)"], &rows)
    );
    println!("\n{}", ascii_front(&guided.pareto, 48, 12));
    println!(
        "exploration cost: guided {} analyses vs exhaustive {} analyses (same front)",
        guided.stats.evaluations, exhaustive.stats.evaluations
    );
}
