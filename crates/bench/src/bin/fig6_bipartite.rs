//! Regenerates the paper's **Fig. 6** discussion: minimal storage
//! distributions are not unique — two different distributions of the same
//! size realize the same throughput for actor d — and either α or β must
//! exceed its lower bound of 1 to avoid deadlock.

use buffy_analysis::throughput;
use buffy_bench::format_table;
use buffy_core::{explore_design_space, ExploreOptions};
use buffy_gen::gallery;
use buffy_graph::StorageDistribution;

fn main() {
    let graph = gallery::bipartite();
    let d = graph.actor_by_name("d").expect("actor d");

    println!("Fig. 6: the bipartite example (4 actors, 4 channels α, β, γ, δ)\n");

    let mut rows = Vec::new();
    for caps in [
        vec![1, 1, 1, 1],
        vec![2, 1, 1, 1],
        vec![1, 2, 1, 1],
        vec![1, 2, 3, 3],
        vec![2, 1, 3, 3],
    ] {
        let dist = StorageDistribution::from_capacities(caps);
        let r = throughput(&graph, &dist, d).expect("analysis succeeds");
        rows.push(vec![
            dist.to_string(),
            dist.size().to_string(),
            if r.deadlocked {
                "deadlock".to_string()
            } else {
                r.throughput.to_string()
            },
        ]);
    }
    print!(
        "{}",
        format_table(
            &["distribution <α,β,γ,δ>", "size", "throughput of d"],
            &rows
        )
    );

    println!(
        "\n⟨1,2,3,3⟩ and ⟨2,1,3,3⟩ realize the same throughput: minimal storage\n\
         distributions are not unique (paper §8). With both ring channels at their\n\
         lower bound of 1 the graph deadlocks: either α or β must exceed it."
    );

    let result =
        explore_design_space(&graph, &ExploreOptions::default()).expect("exploration succeeds");
    println!("\ncomplete Pareto front of the graph:");
    for p in result.pareto.points() {
        println!("  {p}");
    }
}
