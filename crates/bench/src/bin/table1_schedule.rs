//! Regenerates the paper's **Table 1**: the self-timed schedule of the
//! running example under storage distribution ⟨4, 2⟩, shown over 16 time
//! steps with its transient and periodic phases.

use buffy_analysis::{ExplorationLimits, Schedule};
use buffy_gen::gallery;
use buffy_graph::StorageDistribution;

fn main() {
    let graph = gallery::example();
    let dist = StorageDistribution::from_named(&graph, &[("alpha", 4), ("beta", 2)])
        .expect("channels exist");
    let schedule =
        Schedule::extract(&graph, &dist, ExplorationLimits::default()).expect("live graph");

    println!("Table 1: schedule for the motivating example with γ = (α, β) → (4, 2)\n");
    print!("{}", schedule.gantt(&graph, 16));
    println!(
        "\ntransient phase: t < {}; periodic phase: {} time steps repeated indefinitely",
        schedule.period_entry().expect("live"),
        schedule.period().expect("live"),
    );
    let c = graph.actor_by_name("c").expect("actor c");
    println!(
        "throughput of c: {} (the paper: 1/7, one firing each 7 time steps)",
        schedule.throughput_of(c)
    );
    schedule.validate(&graph, &dist).expect("admissible");
    println!("schedule validated against the SDF firing rules: OK");
}
