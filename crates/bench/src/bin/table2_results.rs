//! Regenerates the paper's **Table 2**: the complete design-space
//! exploration of all six benchmark graphs, reporting per graph the
//! number of actors and channels, the minimal distribution size with
//! positive throughput (and that throughput), the maximal throughput and
//! the minimal distribution size realizing it, the number of Pareto
//! points, the maximum number of stored (reduced) states in any single
//! state space, and the wall-clock execution time.
//!
//! By default the dependency-guided exploration is used (it charts the
//! same exact front as the per-size enumeration — cross-validated by the
//! test suite — at a fraction of the cost). Pass `--exhaustive` to run the
//! paper's divide-and-conquer/enumeration algorithm instead; expect
//! minutes for the larger graphs. The H.263 decoder is additionally
//! reported with throughput quantization (quantum 10⁻⁵), the paper's own
//! remedy for its huge number of Pareto points (§11).

use buffy_bench::format_table;
use buffy_core::{
    explore_dependency_guided, explore_design_space, ExplorationResult, ExploreOptions,
};
use buffy_gen::gallery;
use buffy_graph::{Rational, SdfGraph};
use std::time::Instant;

fn row(name: &str, graph: &SdfGraph, result: &ExplorationResult, secs: f64) -> Vec<String> {
    let min = result.pareto.minimal().expect("non-empty front");
    let max = result.pareto.maximal().expect("non-empty front");
    vec![
        name.to_string(),
        graph.num_actors().to_string(),
        graph.num_channels().to_string(),
        min.throughput.to_string(),
        min.size.to_string(),
        max.throughput.to_string(),
        max.size.to_string(),
        result.pareto.len().to_string(),
        result.stats.max_states.to_string(),
        format!("{secs:.2}s"),
    ]
}

fn main() {
    let exhaustive = std::env::args().any(|a| a == "--exhaustive");
    let algorithm = if exhaustive {
        "exhaustive (paper §9)"
    } else {
        "dependency-guided (exact; cross-validated against §9)"
    };
    println!("Table 2: experimental results — algorithm: {algorithm}\n");

    let mut rows = Vec::new();
    for graph in gallery::all() {
        let opts = ExploreOptions::default();
        let t0 = Instant::now();
        let result = if exhaustive {
            explore_design_space(&graph, &opts)
        } else {
            explore_dependency_guided(&graph, &opts)
        }
        .unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        rows.push(row(
            graph.name(),
            &graph,
            &result,
            t0.elapsed().as_secs_f64(),
        ));

        if graph.name() == "h263decoder" {
            // The paper: quantizing the searched throughputs drastically
            // limits the number of Pareto points for the H.263 decoder.
            let opts = ExploreOptions {
                quantum: Some(Rational::new(1, 100_000)),
                ..ExploreOptions::default()
            };
            let t0 = Instant::now();
            let result = if exhaustive {
                explore_design_space(&graph, &opts)
            } else {
                explore_dependency_guided(&graph, &opts)
            }
            .expect("quantized exploration succeeds");
            rows.push(row(
                "h263 (quantized)",
                &graph,
                &result,
                t0.elapsed().as_secs_f64(),
            ));
        }
    }

    print!(
        "{}",
        format_table(
            &[
                "example",
                "actors",
                "channels",
                "min thr>0",
                "size",
                "max thr",
                "size",
                "#Pareto",
                "max #states",
                "time",
            ],
            &rows
        )
    );
    println!(
        "\nnotes: 'size' columns are the minimal distribution sizes realizing the\n\
         adjacent throughput; 'max #states' counts reduced states in the largest\n\
         single state space; times are wall clock on this machine (the paper used\n\
         an 800 MHz Pentium III — absolute times are not comparable, shapes are)."
    );
}
