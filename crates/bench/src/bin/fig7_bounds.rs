//! Regenerates the paper's **Fig. 7**: the bounds that box the design
//! space — per-channel lower bounds for positive throughput (\[ALP97\],
//! \[Mur96\]), their sum `lb`, and the upper bound `ub` given by a
//! distribution realizing the maximal throughput (\[GGD02\] role) — for
//! every gallery graph.

use buffy_analysis::ExplorationLimits;
use buffy_bench::format_table;
use buffy_core::{channel_lower_bound, lower_bound_distribution, upper_bound_distribution};
use buffy_gen::gallery;

fn main() {
    println!("Fig. 7: design-space bounds per graph\n");
    let mut rows = Vec::new();
    for graph in gallery::all() {
        let observed = graph.default_observed_actor();
        let lb = lower_bound_distribution(&graph);
        let (ub, thr_max) =
            upper_bound_distribution(&graph, observed, ExplorationLimits::default())
                .expect("bounds computable");
        rows.push(vec![
            graph.name().to_string(),
            lb.size().to_string(),
            ub.size().to_string(),
            thr_max.to_string(),
        ]);
    }
    print!(
        "{}",
        format_table(
            &[
                "graph",
                "lb (Σ channel bounds)",
                "ub (max-thr dist)",
                "max throughput"
            ],
            &rows
        )
    );

    // Per-channel detail for the example graph (the gray box of Fig. 7).
    let graph = gallery::example();
    println!("\nper-channel lower bounds of the example graph:");
    for (_, ch) in graph.channels() {
        println!(
            "  {}: production {}, consumption {}, initial {} -> lower bound {}",
            ch.name(),
            ch.production(),
            ch.consumption(),
            ch.initial_tokens(),
            channel_lower_bound(ch)
        );
    }
    println!(
        "\nall minimal storage distributions for any positive throughput lie in the box\n\
         [lb_c, ·] per channel with total size between lb and ub (the gray area of Fig. 7)."
    );
}
