//! Exploration-runtime statistics bench: runs the exact design-space
//! exploration over the benchmark graphs at one thread and at the
//! auto-detected thread count (plus the dependency-guided search), and
//! writes the unified [`ExplorationStats`](buffy_core::ExplorationStats)
//! of every run — wall time, analyses, cache hit rate, largest state
//! space — to `BENCH_dse.json` for machine consumption.
//!
//! The statistics of the 1-thread and N-thread runs must be identical
//! (the runtime's chunked evaluation makes them thread-count independent);
//! the bench asserts it, so a regression shows up here as well as in the
//! test suite.
//!
//! Schema v2: each run record additionally carries the evaluation-latency
//! percentiles and the memo cache's per-shard hit rates, captured through
//! a per-run [`buffy_telemetry::Recorder`]. All v1 keys are unchanged.
//!
//! Schema v3: each run record additionally carries the prune-oracle
//! counters (`static_prunes`, `dominance_prunes`) and the gallery gains
//! the cd2dat (fig-7) graph. All v2 keys are unchanged; the CI regression
//! gate reads `evaluations` and `shard_hit_rates` from this file.
//!
//! Schema v4: each run record additionally carries the warm-start
//! counters of the evaluation pipeline — `warm_starts` (cold evaluations
//! whose allocations were pre-sized from a neighbouring distribution's
//! record), `warm_start_hit_rate` (their share of all evaluations) and
//! `warm_start_states` (the summed state counts those hints carried).
//! These are allocation-layer effects only: every other statistic and the
//! fronts are byte-identical with warm starts on or off. All v3 keys are
//! unchanged.
//!
//! Schema v5: each run record additionally carries an `energy` column —
//! the exact rational energy per iteration of the front's fastest point,
//! rendered as a string, or `null` for runs in the default 2D objective
//! space — and the gallery gains guided energy-aware runs over the
//! power-annotated modem and cd2dat variants. All v4 keys are unchanged.
//!
//! Schema v6: each run record additionally carries `evals_per_sec` — the
//! run's evaluation throughput (`evaluations / wall_secs`), the same
//! figure the CLI's `--progress` lines and the `/status` endpoint report
//! live. All v5 keys are unchanged.

use buffy_bench::format_table;
use buffy_core::{
    explore_dependency_guided, explore_design_space, resolve_threads, ExplorationResult,
    ExploreOptions, ObjectiveSpace,
};
use buffy_gen::gallery;
use buffy_graph::SdfGraph;
use buffy_telemetry::{names, HistogramSnapshot, Recorder, Snapshot};
use std::sync::Arc;
use std::time::Instant;

struct Run {
    graph: String,
    algorithm: &'static str,
    threads: usize,
    wall_secs: f64,
    result: ExplorationResult,
    telemetry: Snapshot,
}

fn run(
    graph: &SdfGraph,
    algorithm: &'static str,
    threads: usize,
    f: impl Fn() -> ExplorationResult,
) -> Run {
    // A fresh recorder per run keeps the latency and shard statistics
    // attributable; the global slot is swapped around each measurement.
    let recorder = Arc::new(Recorder::new());
    buffy_telemetry::install(Arc::clone(&recorder));
    let t0 = Instant::now();
    let result = f();
    let wall_secs = t0.elapsed().as_secs_f64();
    buffy_telemetry::uninstall();
    Run {
        graph: graph.name().to_string(),
        algorithm,
        threads,
        wall_secs,
        result,
        telemetry: recorder.snapshot(),
    }
}

fn json_record(r: &Run) -> String {
    let s = &r.result.stats;
    let latency = r
        .telemetry
        .histograms
        .get(names::EVAL_LATENCY_NS)
        .cloned()
        .unwrap_or_else(HistogramSnapshot::empty);
    let hits = Snapshot::family_values(&r.telemetry.counters, names::SHARD_HITS);
    let misses = Snapshot::family_values(&r.telemetry.counters, names::SHARD_MISSES);
    let mut shard_rates: Vec<(u64, f64)> = hits
        .iter()
        .map(|(shard, h)| {
            let m = misses
                .iter()
                .find(|(s, _)| s == shard)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let total = h + m;
            let rate = if total == 0 {
                0.0
            } else {
                *h as f64 / total as f64
            };
            (shard.parse().unwrap_or(0), rate)
        })
        .collect();
    shard_rates.sort_by_key(|(index, _)| *index);
    let shard_rates: Vec<String> = shard_rates
        .into_iter()
        .map(|(_, rate)| format!("{rate:.4}"))
        .collect();
    // Schema v5's energy column: the fastest front point's exact energy
    // per iteration, present exactly when the run declared the axis.
    let energy = r
        .result
        .pareto
        .maximal()
        .and_then(|p| p.energy())
        .map(|e| format!("\"{e}\""))
        .unwrap_or_else(|| "null".to_string());
    // Schema v6's throughput column: evaluations per wall-clock second.
    let evals_per_sec = if r.wall_secs > 0.0 {
        s.evaluations as f64 / r.wall_secs
    } else {
        0.0
    };
    format!(
        "{{\"graph\":\"{}\",\"algorithm\":\"{}\",\"threads\":{},\"wall_secs\":{:.6},\
         \"evaluations\":{},\"cache_hits\":{},\"cache_hit_rate\":{:.4},\
         \"static_prunes\":{},\"dominance_prunes\":{},\"max_states\":{},\
         \"eval_nanos\":{},\"pareto_points\":{},\
         \"eval_latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{}}},\"shard_hit_rates\":[{}],\
         \"warm_starts\":{},\"warm_start_hit_rate\":{:.4},\"warm_start_states\":{},\
         \"energy\":{energy},\"evals_per_sec\":{evals_per_sec:.2}}}",
        r.graph,
        r.algorithm,
        r.threads,
        r.wall_secs,
        s.evaluations,
        s.cache_hits,
        s.cache_hit_rate(),
        s.static_prunes,
        s.dominance_prunes,
        s.max_states,
        s.eval_nanos,
        r.result.pareto.len(),
        latency.p50(),
        latency.p90(),
        latency.p99(),
        shard_rates.join(","),
        s.warm_starts,
        s.warm_start_hit_rate(),
        s.warm_start_states
    )
}

fn main() {
    // The full gallery is exact but slow under the exhaustive search for
    // the biggest graphs; the fig-7-style subjects below chart in seconds.
    let graphs = [
        gallery::example(),
        gallery::bipartite(),
        gallery::modem(),
        gallery::cd2dat(),
    ];
    let auto = resolve_threads(0);

    let mut runs: Vec<Run> = Vec::new();
    for graph in &graphs {
        let seq = ExploreOptions::default();
        let par = ExploreOptions {
            threads: 0,
            ..ExploreOptions::default()
        };
        let one = run(graph, "exhaustive", 1, || {
            explore_design_space(graph, &seq).expect("exploration succeeds")
        });
        let many = run(graph, "exhaustive", auto, || {
            explore_design_space(graph, &par).expect("exploration succeeds")
        });
        assert_eq!(
            one.result.stats,
            many.result.stats,
            "{}: statistics must be identical across thread counts",
            graph.name()
        );
        let guided = run(graph, "guided", 1, || {
            explore_dependency_guided(graph, &seq).expect("exploration succeeds")
        });
        runs.extend([one, many, guided]);
    }

    // Schema v5: guided energy-aware runs over the power-annotated
    // subjects. The 3D space reuses the same evaluations — the energy
    // axis is derived from each recorded throughput — so these runs cost
    // what their 2D counterparts cost.
    for graph in &[gallery::modem_power(), gallery::cd2dat_power()] {
        let opts = ExploreOptions {
            objectives: ObjectiveSpace::with_energy(),
            ..ExploreOptions::default()
        };
        let guided = run(graph, "guided", 1, || {
            explore_dependency_guided(graph, &opts).expect("exploration succeeds")
        });
        assert!(
            guided
                .result
                .pareto
                .points()
                .iter()
                .all(|p| p.energy().is_some()),
            "{}: every front point must carry its exact energy",
            graph.name()
        );
        runs.push(guided);
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let s = &r.result.stats;
            vec![
                r.graph.clone(),
                r.algorithm.to_string(),
                r.threads.to_string(),
                format!("{:.3}s", r.wall_secs),
                s.evaluations.to_string(),
                format!("{:.0}%", s.cache_hit_rate() * 100.0),
                format!("{}+{}", s.static_prunes, s.dominance_prunes),
                s.max_states.to_string(),
                r.result.pareto.len().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        format_table(
            &[
                "graph",
                "algorithm",
                "threads",
                "wall",
                "analyses",
                "cache hit",
                "pruned",
                "max states",
                "#Pareto",
            ],
            &rows
        )
    );

    let records: Vec<String> = runs.iter().map(json_record).collect();
    let json = format!(
        "{{\"bench\":\"dse_stats\",\"schema\":6,\"auto_threads\":{},\"runs\":[\n  {}\n]}}\n",
        auto,
        records.join(",\n  ")
    );
    std::fs::write("BENCH_dse.json", &json).expect("write BENCH_dse.json");
    println!("\nwrote BENCH_dse.json ({} runs)", runs.len());
}
