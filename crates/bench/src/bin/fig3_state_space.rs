//! Regenerates the paper's **Fig. 3** (the full timed state space of the
//! running example under ⟨4, 2⟩) and **Fig. 4** (the reduced state space
//! for observed actor c).

use buffy_analysis::{explore, throughput, ExplorationLimits};
use buffy_gen::gallery;
use buffy_graph::StorageDistribution;

fn main() {
    let graph = gallery::example();
    let dist = StorageDistribution::from_capacities(vec![4, 2]);

    println!("Fig. 3: full timed state space under γ = (4, 2)");
    println!("state = (t_a, t_b, t_c, s_alpha, s_beta)\n");
    let ss = explore(&graph, &dist, ExplorationLimits::default()).expect("live graph");
    for (i, state) in ss.states.iter().enumerate() {
        let marker = match ss.cycle_start {
            Some(k) if i == k => "  <- cycle entry",
            Some(k) if i >= k => "  (on cycle)",
            _ => "  (transient)",
        };
        println!(
            "  t={i:>2}: ({}, {}, {}, {}, {}){}",
            state.act_clk[0],
            state.act_clk[1],
            state.act_clk[2],
            state.tokens[0],
            state.tokens[1],
            marker
        );
    }
    println!(
        "\n{} states stored; one cycle of {} states (Property 1), closing back to t={}",
        ss.states.len(),
        ss.cycle_len(),
        ss.cycle_start.expect("live"),
    );

    println!("\nFig. 4: reduced state space for actor c (dist = time since previous firing)");
    let c = graph.actor_by_name("c").expect("actor c");
    let r = throughput(&graph, &dist, c).expect("live graph");
    println!(
        "  {} reduced states stored; cycle of {} state(s); throughput {} = {} firing(s) / {} time steps",
        r.states_stored, r.cycle_states, r.throughput, r.firings_per_period, r.period
    );
    println!("  (the paper's Fig. 4: first reduced state has dist 9, the recurrent one dist 7)");
    println!(
        "\nreduction factor: {} full states vs {} reduced states",
        ss.states.len(),
        r.states_stored
    );
}
