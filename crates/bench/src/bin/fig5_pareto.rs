//! Regenerates the paper's **Fig. 5**: the Pareto space (distribution size
//! vs throughput) of the running example, computed with the exact
//! exhaustive exploration.

use buffy_bench::{ascii_front, format_table};
use buffy_core::{explore_design_space, ExploreOptions};
use buffy_gen::gallery;

fn main() {
    let graph = gallery::example();
    let result =
        explore_design_space(&graph, &ExploreOptions::default()).expect("exploration succeeds");

    println!("Fig. 5: trade-offs between distribution size and throughput (example graph)\n");
    let rows: Vec<Vec<String>> = result
        .pareto
        .points()
        .iter()
        .map(|p| {
            vec![
                p.size.to_string(),
                p.throughput.to_string(),
                format!("{:.6}", p.throughput.to_f64()),
                p.distribution.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        format_table(&["size", "throughput", "(decimal)", "distribution"], &rows)
    );

    println!("\n{}", ascii_front(&result.pareto, 48, 12));
    println!(
        "paper ground truth: smallest positive-throughput distribution (4,2) at size 6;\n\
         maximal throughput 0.25 first reached at size 10; larger sizes never improve it."
    );
    println!(
        "\nexploration: {} analyses, max {} states per state space, bounds lb={} ub={}",
        result.stats.evaluations,
        result.stats.max_states,
        result.lower_bound_size,
        result.upper_bound_size
    );
}
