//! A uniform read-only view over SDF and CSDF graphs.
//!
//! Rules operate on [`Model`], which normalizes the two graph kinds to a
//! common vocabulary: per-cycle channel rates (for plain SDF a cycle is a
//! single firing), cycle-level repetition vectors, weak connectivity and
//! per-channel capacity lower bounds. This keeps every rule
//! representation-agnostic and means each check is written once.

use buffy_analysis::{throughput_for, Capacities, ExplorationLimits, StaticBounds};
use buffy_csdf::{csdf_channel_lower_bound, csdf_channel_step, csdf_maximal_throughput, CsdfGraph};
use buffy_csdf::{CsdfError, CsdfRepetitionVector};
use buffy_graph::{
    ActorId, ChannelId, GraphError, Rational, RepetitionVector, SdfGraph, StorageDistribution,
};

/// Why a repetition vector could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepetitionIssue {
    /// The balance equations admit only the trivial solution.
    Inconsistent {
        /// The channel whose equation first failed, when known.
        channel: Option<String>,
    },
    /// An entry exceeds `u64`.
    Overflow,
}

/// A channel normalized to per-cycle totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelView {
    /// The channel's id in the underlying graph.
    pub id: ChannelId,
    /// The channel's name.
    pub name: String,
    /// Producing actor.
    pub source: ActorId,
    /// Consuming actor.
    pub target: ActorId,
    /// Tokens produced per full firing cycle of the source.
    pub production: u64,
    /// Tokens consumed per full firing cycle of the target.
    pub consumption: u64,
    /// Tokens present initially.
    pub initial_tokens: u64,
}

impl ChannelView {
    /// Whether the channel connects an actor to itself.
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }
}

/// A borrowed SDF or CSDF graph, presented uniformly to the rules.
#[derive(Debug, Clone, Copy)]
pub enum Model<'a> {
    /// A plain SDF graph.
    Sdf(&'a SdfGraph),
    /// A cyclo-static graph.
    Csdf(&'a CsdfGraph),
}

impl Model<'_> {
    /// The graph's name.
    pub fn name(&self) -> &str {
        match self {
            Model::Sdf(g) => g.name(),
            Model::Csdf(g) => g.name(),
        }
    }

    /// `"sdf"` or `"csdf"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Model::Sdf(_) => "sdf",
            Model::Csdf(_) => "csdf",
        }
    }

    /// Number of actors.
    pub fn num_actors(&self) -> usize {
        match self {
            Model::Sdf(g) => g.num_actors(),
            Model::Csdf(g) => g.num_actors(),
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        match self {
            Model::Sdf(g) => g.num_channels(),
            Model::Csdf(g) => g.num_channels(),
        }
    }

    /// The name of `actor`.
    pub fn actor_name(&self, actor: ActorId) -> &str {
        match self {
            Model::Sdf(g) => g.actor(actor).name(),
            Model::Csdf(g) => g.actor(actor).name(),
        }
    }

    /// Whether every firing (phase) of `actor` takes zero time.
    pub fn zero_execution_time(&self, actor: ActorId) -> bool {
        match self {
            Model::Sdf(g) => g.actor(actor).execution_time() == 0,
            Model::Csdf(g) => g.actor(actor).phase_times().iter().all(|&t| t == 0),
        }
    }

    /// Channels incident to `actor`.
    pub fn degree(&self, actor: ActorId) -> usize {
        match self {
            Model::Sdf(g) => g.output_channels(actor).len() + g.input_channels(actor).len(),
            Model::Csdf(g) => g.output_channels(actor).len() + g.input_channels(actor).len(),
        }
    }

    /// All channels, normalized to per-cycle rate totals.
    pub fn channel_views(&self) -> Vec<ChannelView> {
        match self {
            Model::Sdf(g) => g
                .channels()
                .map(|(id, c)| ChannelView {
                    id,
                    name: c.name().to_string(),
                    source: c.source(),
                    target: c.target(),
                    production: c.production(),
                    consumption: c.consumption(),
                    initial_tokens: c.initial_tokens(),
                })
                .collect(),
            Model::Csdf(g) => g
                .channels()
                .map(|(id, c)| ChannelView {
                    id,
                    name: c.name().to_string(),
                    source: c.source(),
                    target: c.target(),
                    production: c.cycle_production(),
                    consumption: c.cycle_consumption(),
                    initial_tokens: c.initial_tokens(),
                })
                .collect(),
        }
    }

    /// Per-phase production and consumption of one channel (singleton
    /// vectors for plain SDF).
    pub fn phase_rates(&self, id: ChannelId) -> (Vec<u64>, Vec<u64>) {
        match self {
            Model::Sdf(g) => {
                let c = g.channel(id);
                (vec![c.production()], vec![c.consumption()])
            }
            Model::Csdf(g) => {
                let c = g.channel(id);
                (c.production().to_vec(), c.consumption().to_vec())
            }
        }
    }

    /// The default actor whose throughput analyses observe.
    pub fn default_observed_actor(&self) -> ActorId {
        match self {
            Model::Sdf(g) => g.default_observed_actor(),
            Model::Csdf(g) => g.default_observed_actor(),
        }
    }

    /// The cycle-level repetition vector, or why it does not exist.
    pub fn repetition(&self) -> Result<Vec<u64>, RepetitionIssue> {
        match self {
            Model::Sdf(g) => RepetitionVector::compute(g)
                .map(|q| q.as_slice().to_vec())
                .map_err(|e| match e {
                    GraphError::Inconsistent { channel } => RepetitionIssue::Inconsistent {
                        channel: Some(channel),
                    },
                    GraphError::RepetitionOverflow => RepetitionIssue::Overflow,
                    _ => RepetitionIssue::Inconsistent { channel: None },
                }),
            Model::Csdf(g) => CsdfRepetitionVector::compute(g)
                .map(|q| q.as_slice().to_vec())
                .map_err(|e| match e {
                    CsdfError::Inconsistent { channel } => RepetitionIssue::Inconsistent {
                        channel: Some(channel),
                    },
                    CsdfError::RepetitionOverflow => RepetitionIssue::Overflow,
                    _ => RepetitionIssue::Inconsistent { channel: None },
                }),
        }
    }

    /// Whether every actor reaches every other ignoring edge directions.
    pub fn is_connected(&self) -> bool {
        self.unreachable_from_first().is_empty()
    }

    /// Actors not weakly reachable from actor 0 (empty when connected).
    pub fn unreachable_from_first(&self) -> Vec<ActorId> {
        let n = self.num_actors();
        if n == 0 {
            return Vec::new();
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in self.channel_views() {
            adj[c.source.index()].push(c.target.index());
            adj[c.target.index()].push(c.source.index());
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        (0..n).filter(|&i| !seen[i]).map(ActorId::new).collect()
    }

    /// The §7 lower bound on one channel's capacity for positive
    /// throughput.
    pub fn capacity_lower_bound(&self, id: ChannelId) -> u64 {
        match self {
            Model::Sdf(g) => buffy_core::channel_lower_bound(g.channel(id)),
            Model::Csdf(g) => csdf_channel_lower_bound(g.channel(id)),
        }
    }

    /// The capacity quantum of one channel: explored capacities move in
    /// multiples of this step (paper §8).
    pub fn capacity_step(&self, id: ChannelId) -> u64 {
        match self {
            Model::Sdf(g) => buffy_core::channel_step(g.channel(id)),
            Model::Csdf(g) => csdf_channel_step(g.channel(id)),
        }
    }

    /// The maximal achievable throughput of `observed` over all storage
    /// distributions, when the analysis succeeds.
    pub fn maximal_throughput(&self, observed: ActorId) -> Option<Rational> {
        match self {
            Model::Sdf(g) => buffy_analysis::maximal_throughput(g, observed).ok(),
            Model::Csdf(g) => csdf_maximal_throughput(g, observed).ok(),
        }
    }

    /// The static capacity-aware cycle-ratio bounds of the model, when
    /// the static pass can certify it (consistent and connected).
    pub fn static_bounds(&self, observed: ActorId) -> Option<StaticBounds> {
        let bounds = match self {
            Model::Sdf(g) => StaticBounds::new(*g, observed).ok()?,
            Model::Csdf(g) => StaticBounds::new(*g, observed).ok()?,
        };
        bounds.is_usable().then_some(bounds)
    }

    /// The §7 lower-bound distribution: every channel at its capacity
    /// lower bound.
    pub fn lower_bound_distribution(&self) -> StorageDistribution {
        StorageDistribution::from_capacities(
            (0..self.num_channels())
                .map(|i| self.capacity_lower_bound(ChannelId::new(i)))
                .collect(),
        )
    }

    /// The exact throughput of `observed` under `dist` (default
    /// state-space limits), when the analysis succeeds.
    pub fn exact_throughput(
        &self,
        dist: &StorageDistribution,
        observed: ActorId,
    ) -> Option<Rational> {
        let caps = Capacities::from_distribution(dist);
        let limits = ExplorationLimits::default();
        match self {
            Model::Sdf(g) => throughput_for(*g, caps, observed, limits).ok(),
            Model::Csdf(g) => throughput_for(*g, caps, observed, limits).ok(),
        }
        .map(|r| r.throughput)
    }
}

/// Finds a directed cycle in the sub-graph spanned by `edges`, returned
/// as the actor sequence around the cycle (first actor repeated at the
/// end is implied, not included). Deterministic: the lowest-numbered
/// cycle found by DFS in edge order.
pub(crate) fn find_cycle(num_actors: usize, edges: &[(ActorId, ActorId)]) -> Option<Vec<ActorId>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_actors];
    for &(s, t) in edges {
        adj[s.index()].push(t.index());
    }
    // Colors: 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; num_actors];
    let mut parent = vec![usize::MAX; num_actors];
    for start in 0..num_actors {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit (node, next-edge-index) stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            if top.1 < adj[node].len() {
                let succ = adj[node][top.1];
                top.1 += 1;
                match color[succ] {
                    0 => {
                        color[succ] = 1;
                        parent[succ] = node;
                        stack.push((succ, 0));
                    }
                    1 => {
                        // Found a back edge node → succ: unwind the path.
                        let mut cycle = vec![ActorId::new(node)];
                        let mut cur = node;
                        while cur != succ {
                            cur = parent[cur];
                            cycle.push(ActorId::new(cur));
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdf_example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sdf_view_normalizes() {
        let g = sdf_example();
        let m = Model::Sdf(&g);
        assert_eq!(m.name(), "example");
        assert_eq!(m.kind(), "sdf");
        assert_eq!(m.num_actors(), 3);
        assert_eq!(m.num_channels(), 2);
        let views = m.channel_views();
        assert_eq!(views[0].production, 2);
        assert_eq!(views[0].consumption, 3);
        assert!(!views[0].is_self_loop());
        assert_eq!(m.repetition().unwrap(), vec![3, 2, 1]);
        assert!(m.is_connected());
        assert_eq!(m.phase_rates(views[0].id), (vec![2], vec![3]));
        assert_eq!(m.actor_name(views[0].source), "a");
        assert!(!m.zero_execution_time(views[0].source));
        assert_eq!(m.degree(views[0].source), 1);
        assert!(m.maximal_throughput(m.default_observed_actor()).is_some());
        assert_eq!(m.capacity_lower_bound(views[0].id), 4);
    }

    #[test]
    fn csdf_view_uses_cycle_totals() {
        let mut b = CsdfGraph::builder("pc");
        let p = b.actor("p", vec![1, 2]);
        let c = b.actor("c", vec![1]);
        b.channel("d", p, vec![1, 2], c, vec![1], 0).unwrap();
        let g = b.build().unwrap();
        let m = Model::Csdf(&g);
        assert_eq!(m.kind(), "csdf");
        let views = m.channel_views();
        assert_eq!(views[0].production, 3);
        assert_eq!(views[0].consumption, 1);
        assert_eq!(m.phase_rates(views[0].id), (vec![1, 2], vec![1]));
        assert_eq!(m.repetition().unwrap(), vec![1, 3]);
    }

    #[test]
    fn inconsistency_is_reported_with_channel() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 2, y, 1).unwrap();
        b.channel("bwd", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let issue = Model::Sdf(&g).repetition().unwrap_err();
        assert_eq!(
            issue,
            RepetitionIssue::Inconsistent {
                channel: Some("bwd".to_string())
            }
        );
    }

    #[test]
    fn disconnected_actors_listed() {
        let mut b = SdfGraph::builder("islands");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let _ = z;
        let g = b.build().unwrap();
        let m = Model::Sdf(&g);
        assert!(!m.is_connected());
        assert_eq!(m.unreachable_from_first(), vec![ActorId::new(2)]);
    }

    #[test]
    fn cycle_finder() {
        let e = |s: usize, t: usize| (ActorId::new(s), ActorId::new(t));
        assert_eq!(find_cycle(3, &[e(0, 1), e(1, 2)]), None);
        let cycle = find_cycle(3, &[e(0, 1), e(1, 2), e(2, 0)]).unwrap();
        assert_eq!(cycle.len(), 3);
        // Self-loop is a one-node cycle.
        assert_eq!(find_cycle(2, &[e(1, 1)]), Some(vec![ActorId::new(1)]));
        // Diamond without a cycle.
        assert_eq!(find_cycle(4, &[e(0, 1), e(0, 2), e(1, 3), e(2, 3)]), None);
    }
}
