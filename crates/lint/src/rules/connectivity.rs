//! B002: disconnected graph — actors unreachable from the rest of the
//! dataflow usually indicate a modelling mistake, and per-component
//! throughputs are unrelated.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;

/// Flags graphs that are not weakly connected.
pub struct Disconnected;

impl Rule for Disconnected {
    fn code(&self) -> &'static str {
        "B002"
    }

    fn name(&self) -> &'static str {
        "disconnected-graph"
    }

    fn summary(&self) -> &'static str {
        "some actors are not connected to the rest of the dataflow"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        let unreachable = model.unreachable_from_first();
        if unreachable.is_empty() {
            return Vec::new();
        }
        let names: Vec<&str> = unreachable
            .iter()
            .take(5)
            .map(|&a| model.actor_name(a))
            .collect();
        let suffix = if unreachable.len() > names.len() {
            format!(" (and {} more)", unreachable.len() - names.len())
        } else {
            String::new()
        };
        vec![Diagnostic::error(
            self.code(),
            Subject::Graph,
            format!(
                "the graph is not connected: actor(s) {}{} share no channel \
                 with the component of '{}'",
                names
                    .iter()
                    .map(|n| format!("'{n}'"))
                    .collect::<Vec<_>>()
                    .join(", "),
                suffix,
                model.actor_name(buffy_graph::ActorId::new(0)),
            ),
        )
        .with_hint(
            "connect every actor with at least one channel, or analyse the \
             components as separate graphs",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn flags_isolated_actor() {
        let mut b = SdfGraph::builder("islands");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.actor("z", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let d = Disconnected.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B002");
        assert!(d[0].message.contains("'z'"));
    }

    #[test]
    fn passes_connected_graph() {
        let mut b = SdfGraph::builder("ok");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        assert!(Disconnected
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn single_actor_graph_is_connected() {
        let mut b = SdfGraph::builder("one");
        b.actor("only", 1);
        let g = b.build().unwrap();
        assert!(Disconnected
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
