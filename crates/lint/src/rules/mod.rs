//! The rule trait and the registry of default rules.

mod capacity;
mod connectivity;
mod consistency;
mod dead_actor;
mod deadlock;
mod explosion;
mod overflow;
mod smells;
mod static_bounds;
mod throughput;

use crate::diagnostic::{Diagnostic, Report};
use crate::model::Model;
use crate::LintContext;

pub use capacity::CapacityBelowBound;
pub use connectivity::Disconnected;
pub use consistency::Inconsistent;
pub use dead_actor::DeadActor;
pub use deadlock::TokenFreeCycle;
pub use explosion::{SpaceExplosion, DEFAULT_SPACE_THRESHOLD};
pub use overflow::OverflowRisk;
pub use smells::ModellingSmells;
pub use static_bounds::{StaticSaturation, TriviallySatisfiable};
pub use throughput::InfeasibleConstraint;

/// One static check over a model.
///
/// Rules are stateless: `check` inspects the model (and the optional
/// [`LintContext`] inputs) and returns zero or more diagnostics, all
/// carrying the rule's stable [`code`](Rule::code).
pub trait Rule {
    /// The stable diagnostic code (`B001`…) this rule emits.
    fn code(&self) -> &'static str;

    /// A short kebab-case rule name.
    fn name(&self) -> &'static str;

    /// One line describing what the rule finds.
    fn summary(&self) -> &'static str;

    /// Runs the check.
    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic>;
}

/// An ordered collection of rules.
pub struct Registry {
    rules: Vec<Box<dyn Rule>>,
}

impl Registry {
    /// A registry with no rules; populate with [`Registry::push`].
    pub fn empty() -> Registry {
        Registry { rules: Vec::new() }
    }

    /// All built-in rules, in code order.
    pub fn with_default_rules() -> Registry {
        let mut r = Registry::empty();
        r.push(Box::new(Inconsistent));
        r.push(Box::new(Disconnected));
        r.push(Box::new(TokenFreeCycle));
        r.push(Box::new(CapacityBelowBound));
        r.push(Box::new(InfeasibleConstraint));
        r.push(Box::new(OverflowRisk));
        r.push(Box::new(DeadActor));
        r.push(Box::new(ModellingSmells));
        r.push(Box::new(SpaceExplosion));
        r.push(Box::new(StaticSaturation));
        r.push(Box::new(TriviallySatisfiable));
        r
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: Box<dyn Rule>) {
        self.rules.push(rule);
    }

    /// The registered rules, in execution order.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Runs every rule and collects the diagnostics into a [`Report`].
    pub fn run(&self, model: &Model<'_>, ctx: &LintContext) -> Report {
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            let mut found = rule.check(model, ctx);
            debug_assert!(
                found.iter().all(|d| d.code == rule.code()),
                "rule {} emitted a foreign code",
                rule.name()
            );
            diagnostics.append(&mut found);
        }
        Report {
            graph: model.name().to_string(),
            kind: model.kind(),
            diagnostics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn default_registry_covers_all_codes() {
        let r = Registry::with_default_rules();
        let codes: Vec<&str> = r.rules().iter().map(|rule| rule.code()).collect();
        assert_eq!(
            codes,
            vec![
                "B001", "B002", "B003", "B004", "B005", "B006", "B007", "B008", "B009", "B010",
                "B011"
            ]
        );
        // Codes are unique and names are non-empty.
        for rule in r.rules() {
            assert!(!rule.name().is_empty());
            assert!(!rule.summary().is_empty());
        }
    }

    #[test]
    fn clean_graph_yields_clean_report() {
        let mut b = SdfGraph::builder("ok");
        let a = b.actor("a", 1);
        let c = b.actor("c", 2);
        b.channel("ch", a, 2, c, 3).unwrap();
        let g = b.build().unwrap();
        let report = Registry::with_default_rules().run(&Model::Sdf(&g), &LintContext::default());
        assert!(report.is_clean(), "{}", report.render_human());
        assert_eq!(report.graph, "ok");
        assert_eq!(report.kind, "sdf");
    }
}
