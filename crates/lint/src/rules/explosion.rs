//! B009: distribution-space explosion — the exploration grid is so large
//! that an unbounded `explore` run may effectively never finish. The
//! finding recommends the resilience options (`--timeout`, `--max-evals`,
//! `--checkpoint`) so a long run degrades to a sound partial front
//! instead of being killed.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;

/// Distribution spaces larger than this (candidate distributions in the
/// §8 exploration box, conservatively estimated) are flagged unless the
/// context overrides the threshold.
pub const DEFAULT_SPACE_THRESHOLD: u64 = 100_000;

/// Conservative estimate of the number of storage distributions in the
/// exploration box: per channel, capacities range from the §7 lower bound
/// to a cheap upper-bound heuristic — lower bound plus the tokens the
/// producer emits over one full graph iteration (the capacity at which
/// the channel can never be the bottleneck) — in steps of the channel's
/// quantum. Saturates at `u128::MAX`. Inconsistent graphs (no repetition
/// vector) estimate as 1; B001 owns that finding.
pub(crate) fn estimate_space(model: &Model<'_>) -> u128 {
    let Ok(q) = model.repetition() else {
        return 1;
    };
    let mut total: u128 = 1;
    for c in model.channel_views() {
        let per_iteration = c.production.saturating_mul(q[c.source.index()]);
        let step = model.capacity_step(c.id).max(1);
        let choices = u128::from(per_iteration / step) + 1;
        total = total.saturating_mul(choices);
    }
    total
}

/// Flags graphs whose exploration grid exceeds the configured threshold.
pub struct SpaceExplosion;

impl Rule for SpaceExplosion {
    fn code(&self) -> &'static str {
        "B009"
    }

    fn name(&self) -> &'static str {
        "space-explosion"
    }

    fn summary(&self) -> &'static str {
        "the storage distribution space is large enough that unbounded exploration may not finish"
    }

    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic> {
        let threshold = ctx.space_threshold.unwrap_or(DEFAULT_SPACE_THRESHOLD);
        let estimate = estimate_space(model);
        if estimate <= u128::from(threshold) {
            return Vec::new();
        }
        let shown = if estimate == u128::MAX {
            "more than 10^38".to_string()
        } else {
            format!("about {estimate}")
        };
        vec![Diagnostic::warning(
            self.code(),
            Subject::Graph,
            format!(
                "the exploration box holds {shown} candidate storage \
                 distributions (threshold {threshold}); an unbounded \
                 exploration of this graph may effectively never finish",
            ),
        )
        .with_hint(
            "bound the run with `explore --timeout SECS` or `--max-evals N` (the result \
             degrades to a sound partial front) and add `--checkpoint FILE` so progress \
             survives interruption and can be resumed with `--resume FILE`",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn small_graphs_pass_at_the_default_threshold() {
        let g = example();
        assert!(SpaceExplosion
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn a_tight_threshold_flags_the_same_graph() {
        let g = example();
        let ctx = LintContext {
            space_threshold: Some(1),
            ..LintContext::default()
        };
        let d = SpaceExplosion.check(&Model::Sdf(&g), &ctx);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B009");
        assert!(
            d[0].message.contains("candidate storage"),
            "{}",
            d[0].message
        );
        assert!(
            d[0].hint.as_deref().unwrap().contains("--checkpoint"),
            "{:?}",
            d[0].hint
        );
    }

    #[test]
    fn estimate_multiplies_per_channel_choices() {
        // example: q = [3, 2, 1]. alpha carries 2·3 = 6 tokens per
        // iteration at step 1 → 7 choices; beta carries 1·2 = 2 → 3
        // choices. The estimate is their product, far below the default.
        let g = example();
        let e = estimate_space(&Model::Sdf(&g));
        assert!(e >= 2, "{e}");
        assert!(e < 100, "{e}");
    }

    #[test]
    fn wide_rates_push_the_estimate_over_the_default() {
        // A deliberately wide graph: co-prime rates of a few hundred give
        // each channel hundreds of capacity choices.
        let mut b = SdfGraph::builder("wide");
        let mut prev = b.actor("a0", 1);
        for i in 1..4 {
            let next = b.actor(format!("a{i}"), 1);
            b.channel(format!("c{i}"), prev, 211, next, 199).unwrap();
            prev = next;
        }
        let g = b.build().unwrap();
        let d = SpaceExplosion.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1, "estimate: {}", estimate_space(&Model::Sdf(&g)));
    }
}
