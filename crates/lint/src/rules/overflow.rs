//! B006: arithmetic overflow risk — repetition-vector entries or
//! per-iteration token volumes large enough that the `u64`/`i128`
//! arithmetic of the analyses may overflow.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::{Model, RepetitionIssue};
use crate::rules::Rule;
use crate::LintContext;

/// Entries above this make the rational (`i128`) clock arithmetic of the
/// simulation engines risky: products of three such factors overflow.
const HUGE_ENTRY: u64 = 1 << 32;

/// Flags repetition vectors that overflow or come close to overflowing.
pub struct OverflowRisk;

impl Rule for OverflowRisk {
    fn code(&self) -> &'static str {
        "B006"
    }

    fn name(&self) -> &'static str {
        "overflow-risk"
    }

    fn summary(&self) -> &'static str {
        "repetition-vector or token arithmetic may overflow"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        let q = match model.repetition() {
            Ok(q) => q,
            Err(RepetitionIssue::Overflow) => {
                return vec![Diagnostic::error(
                    self.code(),
                    Subject::Graph,
                    "the repetition vector overflows u64; no analysis can \
                     run on this graph",
                )
                .with_hint("reduce the rate ratios — they force astronomically many firings")];
            }
            // Inconsistency is B001's finding.
            Err(RepetitionIssue::Inconsistent { .. }) => return Vec::new(),
        };
        let mut out = Vec::new();
        for (i, &e) in q.iter().enumerate() {
            if e >= HUGE_ENTRY {
                out.push(
                    Diagnostic::warning(
                        self.code(),
                        Subject::Actor(model.actor_name(buffy_graph::ActorId::new(i)).to_string()),
                        format!(
                            "repetition entry {e} is enormous; one graph \
                             iteration needs that many firing cycles and \
                             clock arithmetic may overflow",
                        ),
                    )
                    .with_hint("reduce the rate ratios on the adjacent channels"),
                );
            }
        }
        for c in model.channel_views() {
            let volume = q[c.source.index()] as u128 * c.production as u128;
            if volume > u64::MAX as u128 {
                out.push(
                    Diagnostic::warning(
                        self.code(),
                        Subject::Channel(c.name.clone()),
                        format!(
                            "one iteration moves {volume} tokens through the \
                             channel, which overflows u64 token counting",
                        ),
                    )
                    .with_hint("reduce the production rate or the source's repetition count"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn passes_small_graph() {
        let mut b = SdfGraph::builder("ok");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 2, y, 3).unwrap();
        let g = b.build().unwrap();
        assert!(OverflowRisk
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn flags_huge_repetition_entries() {
        // A chain of extreme rate ratios: q(y) = 2^33 · q(x).
        let mut b = SdfGraph::builder("huge");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 1 << 33, y, 1).unwrap();
        let g = b.build().unwrap();
        let d = OverflowRisk.check(&Model::Sdf(&g), &LintContext::default());
        assert!(!d.is_empty());
        assert!(d
            .iter()
            .any(|d| matches!(&d.subject, Subject::Actor(a) if a == "y")));
        assert!(d.iter().all(|d| d.code == "B006"));
    }

    #[test]
    fn silent_on_inconsistent_graphs() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 2, y, 1).unwrap();
        b.channel("bwd", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        assert!(OverflowRisk
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
