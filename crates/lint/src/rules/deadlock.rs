//! B003: token-free cycle — a directed cycle whose channels all carry
//! zero initial tokens can never fire any of its actors, so the graph is
//! guaranteed to deadlock regardless of the storage distribution.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::{find_cycle, Model};
use crate::rules::Rule;
use crate::LintContext;

/// Flags directed cycles with no initial tokens anywhere on them.
pub struct TokenFreeCycle;

impl Rule for TokenFreeCycle {
    fn code(&self) -> &'static str {
        "B003"
    }

    fn name(&self) -> &'static str {
        "token-free-cycle"
    }

    fn summary(&self) -> &'static str {
        "a cycle without initial tokens deadlocks every execution"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        let edges: Vec<_> = model
            .channel_views()
            .into_iter()
            .filter(|c| c.initial_tokens == 0)
            .map(|c| (c.source, c.target))
            .collect();
        let Some(cycle) = find_cycle(model.num_actors(), &edges) else {
            return Vec::new();
        };
        let mut path: Vec<&str> = cycle.iter().map(|&a| model.actor_name(a)).collect();
        path.push(path[0]);
        vec![Diagnostic::error(
            self.code(),
            Subject::Graph,
            format!(
                "the cycle {} carries no initial tokens; none of its actors \
                 can ever fire — the graph deadlocks for every storage \
                 distribution",
                path.join(" -> "),
            ),
        )
        .with_hint("place at least one initial token on some channel of the cycle")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn flags_token_free_two_cycle() {
        let mut b = SdfGraph::builder("dead");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel("r", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let d = TokenFreeCycle.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B003");
        assert!(d[0].message.contains("x -> y -> x") || d[0].message.contains("y -> x -> y"));
    }

    #[test]
    fn passes_cycle_with_tokens() {
        let mut b = SdfGraph::builder("live");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(TokenFreeCycle
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn flags_token_free_self_loop() {
        let mut b = SdfGraph::builder("sl");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 1, x, 1, 0).unwrap();
        let g = b.build().unwrap();
        let d = TokenFreeCycle.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("x -> x"));
    }

    #[test]
    fn passes_acyclic_graph() {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        assert!(TokenFreeCycle
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
