//! B005: infeasible throughput constraint — the requested throughput
//! exceeds the maximal achievable throughput (the MCM upper bound, paper
//! §9), so no storage distribution can satisfy it.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;

/// Flags throughput constraints above the graph's maximal throughput.
///
/// Only active when the [`LintContext`] carries a constraint; silent when
/// the maximal-throughput analysis itself fails (those causes are flagged
/// by B001/B003).
pub struct InfeasibleConstraint;

impl Rule for InfeasibleConstraint {
    fn code(&self) -> &'static str {
        "B005"
    }

    fn name(&self) -> &'static str {
        "infeasible-throughput-constraint"
    }

    fn summary(&self) -> &'static str {
        "the required throughput exceeds the maximal achievable throughput"
    }

    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic> {
        let Some(required) = ctx.throughput_constraint else {
            return Vec::new();
        };
        let observed = ctx
            .observed
            .unwrap_or_else(|| model.default_observed_actor());
        let Some(bound) = model.maximal_throughput(observed) else {
            return Vec::new();
        };
        if required <= bound {
            return Vec::new();
        }
        vec![Diagnostic::error(
            self.code(),
            Subject::Actor(model.actor_name(observed).to_string()),
            format!(
                "the required throughput {required} exceeds the maximal \
                 achievable throughput {bound}; no storage distribution can \
                 satisfy the constraint",
            ),
        )
        .with_hint(format!(
            "relax the constraint to at most {bound}, or shorten execution \
             times on the critical cycle",
        ))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{Rational, SdfGraph};

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn inactive_without_constraint() {
        let g = example();
        assert!(InfeasibleConstraint
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn flags_constraint_above_maximum() {
        // The example's maximal throughput at actor c is 1/4.
        let g = example();
        let ctx = LintContext {
            throughput_constraint: Some(Rational::new(1, 3)),
            ..LintContext::default()
        };
        let d = InfeasibleConstraint.check(&Model::Sdf(&g), &ctx);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B005");
        assert_eq!(d[0].subject, Subject::Actor("c".into()));
        assert!(d[0].message.contains("1/3"));
        assert!(d[0].message.contains("1/4"));
    }

    #[test]
    fn passes_feasible_constraint() {
        let g = example();
        let ctx = LintContext {
            throughput_constraint: Some(Rational::new(1, 4)),
            ..LintContext::default()
        };
        assert!(InfeasibleConstraint.check(&Model::Sdf(&g), &ctx).is_empty());
    }

    #[test]
    fn silent_when_analysis_fails() {
        // Inconsistent graph: B001 reports it; B005 stays silent.
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 2, y, 1).unwrap();
        b.channel("bwd", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let ctx = LintContext {
            throughput_constraint: Some(Rational::ONE),
            ..LintContext::default()
        };
        assert!(InfeasibleConstraint.check(&Model::Sdf(&g), &ctx).is_empty());
    }
}
