//! B008: modelling smells — constructs that are legal but almost always
//! mistakes: self-loops that starve partway through a phase cycle, and
//! cycles of zero-execution-time actors (which force the engines'
//! zero-time livelock guards to kick in).

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::{find_cycle, Model};
use crate::rules::Rule;
use crate::LintContext;
use buffy_graph::ActorId;

/// Flags starved self-loops and zero-execution-time cycles.
pub struct ModellingSmells;

impl Rule for ModellingSmells {
    fn code(&self) -> &'static str {
        "B008"
    }

    fn name(&self) -> &'static str {
        "modelling-smell"
    }

    fn summary(&self) -> &'static str {
        "legal but suspicious constructs: starved self-loops, zero-time cycles"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // Self-loops that stall partway through a phase cycle: tokens on a
        // self-loop change only through the actor itself, so simulating
        // one phase cycle is exact (capacity aside).
        for c in model.channel_views() {
            if !c.is_self_loop() || c.initial_tokens == 0 {
                // Token-free self-loops are B003's finding.
                continue;
            }
            let (prod, cons) = model.phase_rates(c.id);
            let mut tokens = c.initial_tokens as i128;
            for (k, (&p, &co)) in prod.iter().zip(&cons).enumerate() {
                if tokens < co as i128 {
                    out.push(
                        Diagnostic::warning(
                            self.code(),
                            Subject::Channel(c.name.clone()),
                            format!(
                                "the self-loop starves at firing {} of '{}': \
                                 {} token(s) available but {} needed — the \
                                 actor stalls forever",
                                k + 1,
                                model.actor_name(c.source),
                                tokens,
                                co,
                            ),
                        )
                        .with_hint(format!(
                            "give the self-loop at least {} initial token(s)",
                            c.initial_tokens as i128 + co as i128 - tokens,
                        )),
                    );
                    break;
                }
                tokens = tokens - co as i128 + p as i128;
            }
        }

        // Cycles among actors whose every firing takes zero time: their
        // self-timed execution never advances the clock and trips the
        // engines' livelock caps.
        let zero: Vec<bool> = (0..model.num_actors())
            .map(|i| model.zero_execution_time(ActorId::new(i)))
            .collect();
        let edges: Vec<_> = model
            .channel_views()
            .into_iter()
            .filter(|c| zero[c.source.index()] && zero[c.target.index()])
            .map(|c| (c.source, c.target))
            .collect();
        if let Some(cycle) = find_cycle(model.num_actors(), &edges) {
            let mut path: Vec<&str> = cycle.iter().map(|&a| model.actor_name(a)).collect();
            path.push(path[0]);
            out.push(
                Diagnostic::warning(
                    self.code(),
                    Subject::Graph,
                    format!(
                        "the cycle {} consists of zero-execution-time actors; \
                         its firings never advance the clock and the \
                         simulation may hit the zero-time livelock guard",
                        path.join(" -> "),
                    ),
                )
                .with_hint("give at least one actor on the cycle a positive execution time"),
            );
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn flags_starved_self_loop() {
        let mut b = SdfGraph::builder("sl");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 2, x, 2, 1).unwrap();
        let g = b.build().unwrap();
        let d = ModellingSmells.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B008");
        assert!(d[0].message.contains("starves"));
        assert!(d[0].hint.as_deref().unwrap().contains("2 initial token(s)"));
    }

    #[test]
    fn passes_well_fed_self_loop() {
        let mut b = SdfGraph::builder("sl");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 2, x, 2, 2).unwrap();
        let g = b.build().unwrap();
        assert!(ModellingSmells
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn flags_zero_time_cycle() {
        let mut b = SdfGraph::builder("zt");
        let x = b.actor("x", 0);
        let y = b.actor("y", 0);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        let d = ModellingSmells.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("zero-execution-time"));
    }

    #[test]
    fn mixed_cycle_passes() {
        // One actor on the cycle has positive time: no smell.
        let mut b = SdfGraph::builder("mixed");
        let x = b.actor("x", 0);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(ModellingSmells
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn zero_time_chain_without_cycle_passes() {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 0);
        let y = b.actor("y", 0);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        assert!(ModellingSmells
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
