//! B001: inconsistent graph — the balance equations admit only the
//! trivial solution, so the graph cannot execute indefinitely in bounded
//! memory (paper §3).

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::{Model, RepetitionIssue};
use crate::rules::Rule;
use crate::LintContext;

/// Flags graphs whose repetition vector does not exist.
pub struct Inconsistent;

impl Rule for Inconsistent {
    fn code(&self) -> &'static str {
        "B001"
    }

    fn name(&self) -> &'static str {
        "inconsistent-graph"
    }

    fn summary(&self) -> &'static str {
        "the balance equations admit only the trivial solution"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        match model.repetition() {
            Ok(_) | Err(RepetitionIssue::Overflow) => Vec::new(),
            Err(RepetitionIssue::Inconsistent { channel }) => {
                let subject = match &channel {
                    Some(name) => Subject::Channel(name.clone()),
                    None => Subject::Graph,
                };
                vec![Diagnostic::error(
                    self.code(),
                    subject,
                    "the balance equations admit only the trivial solution; \
                     the graph cannot run indefinitely in bounded memory",
                )
                .with_hint(
                    "adjust the port rates so that q(src)·production = \
                     q(dst)·consumption holds on every channel",
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn flags_inconsistent_cycle() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 2, y, 1).unwrap();
        b.channel("bwd", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let d = Inconsistent.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B001");
        assert_eq!(d[0].subject, Subject::Channel("bwd".into()));
        assert!(d[0].hint.is_some());
    }

    #[test]
    fn passes_consistent_graph() {
        let mut b = SdfGraph::builder("ok");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 2, y, 3).unwrap();
        let g = b.build().unwrap();
        assert!(Inconsistent
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
