//! B004: channel capacity below the §7 lower bound — under the supplied
//! storage distribution the channel can never sustain repeated firings,
//! so the execution is guaranteed to deadlock.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;

/// Flags channels whose supplied capacity is below their lower bound.
///
/// Only active when the [`LintContext`] carries a distribution.
pub struct CapacityBelowBound;

impl Rule for CapacityBelowBound {
    fn code(&self) -> &'static str {
        "B004"
    }

    fn name(&self) -> &'static str {
        "capacity-below-bound"
    }

    fn summary(&self) -> &'static str {
        "a supplied channel capacity is below the deadlock-free lower bound"
    }

    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic> {
        let Some(dist) = &ctx.distribution else {
            return Vec::new();
        };
        if dist.len() != model.num_channels() {
            return vec![Diagnostic::error(
                self.code(),
                Subject::Graph,
                format!(
                    "the distribution covers {} channel(s) but the graph has {}",
                    dist.len(),
                    model.num_channels(),
                ),
            )
            .with_hint("supply one capacity per channel, in channel order")];
        }
        let mut out = Vec::new();
        for c in model.channel_views() {
            let bound = model.capacity_lower_bound(c.id);
            let cap = dist.get(c.id);
            if cap < bound {
                out.push(
                    Diagnostic::error(
                        self.code(),
                        Subject::Channel(c.name.clone()),
                        format!(
                            "capacity {cap} is below the lower bound {bound}; \
                             the channel can never sustain repeated firings",
                        ),
                    )
                    .with_hint(format!("raise the capacity to at least {bound}")),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{SdfGraph, StorageDistribution};

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn inactive_without_distribution() {
        let g = example();
        assert!(CapacityBelowBound
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn flags_capacities_below_bmlb() {
        // BMLB of alpha (2:3) is 4; of beta (1:2) is 2.
        let g = example();
        let ctx = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![3, 2])),
            ..LintContext::default()
        };
        let d = CapacityBelowBound.check(&Model::Sdf(&g), &ctx);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, Subject::Channel("alpha".into()));
        assert!(d[0]
            .message
            .contains("capacity 3 is below the lower bound 4"));
    }

    #[test]
    fn passes_at_the_bound() {
        let g = example();
        let ctx = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![4, 2])),
            ..LintContext::default()
        };
        assert!(CapacityBelowBound.check(&Model::Sdf(&g), &ctx).is_empty());
    }

    #[test]
    fn flags_arity_mismatch() {
        let g = example();
        let ctx = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![4])),
            ..LintContext::default()
        };
        let d = CapacityBelowBound.check(&Model::Sdf(&g), &ctx);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("covers 1 channel(s) but the graph has 2"));
    }
}
