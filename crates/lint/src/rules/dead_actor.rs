//! B007: dead actor — an actor detached from the dataflow fires freely,
//! contributes nothing to any channel and distorts throughput readings
//! when observed.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;
use buffy_graph::ActorId;

/// Flags actors with no channels at all (in graphs with more than one
/// actor) and — defensively — zero repetition entries.
pub struct DeadActor;

impl Rule for DeadActor {
    fn code(&self) -> &'static str {
        "B007"
    }

    fn name(&self) -> &'static str {
        "dead-actor"
    }

    fn summary(&self) -> &'static str {
        "an actor takes no part in the dataflow"
    }

    fn check(&self, model: &Model<'_>, _ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if model.num_actors() > 1 {
            for i in 0..model.num_actors() {
                let a = ActorId::new(i);
                if model.degree(a) == 0 {
                    out.push(
                        Diagnostic::warning(
                            self.code(),
                            Subject::Actor(model.actor_name(a).to_string()),
                            "the actor has no channels; it fires unboundedly \
                             often and takes no part in the dataflow",
                        )
                        .with_hint("remove the actor or connect it with a channel"),
                    );
                }
            }
        }
        if let Ok(q) = model.repetition() {
            for (i, &e) in q.iter().enumerate() {
                if e == 0 {
                    out.push(
                        Diagnostic::warning(
                            self.code(),
                            Subject::Actor(model.actor_name(ActorId::new(i)).to_string()),
                            "the actor's repetition entry is zero; it never \
                             fires in a periodic execution",
                        )
                        .with_hint("check the rates of its channels"),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    #[test]
    fn flags_channel_less_actor() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.actor("idle", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let d = DeadActor.check(&Model::Sdf(&g), &LintContext::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B007");
        assert_eq!(d[0].subject, Subject::Actor("idle".into()));
    }

    #[test]
    fn single_actor_graph_is_fine() {
        let mut b = SdfGraph::builder("one");
        b.actor("only", 1);
        let g = b.build().unwrap();
        assert!(DeadActor
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }

    #[test]
    fn connected_actors_pass() {
        let mut b = SdfGraph::builder("ok");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 2, y, 3).unwrap();
        let g = b.build().unwrap();
        assert!(DeadActor
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
