//! B010/B011: static-certificate checks against a throughput constraint.
//!
//! Both rules reuse the capacity-aware cycle-ratio certificate
//! ([`buffy_analysis::StaticBounds`]): a sound per-distribution upper
//! bound on the exact throughput, computed without any state-space
//! simulation. B010 proves a supplied distribution infeasible (and names
//! the channel culprits); B011 detects the opposite degenerate case — the
//! constraint already holds at the §7 lower-bound distribution, so a
//! constrained exploration is trivially solvable.

use crate::diagnostic::{Diagnostic, Subject};
use crate::model::Model;
use crate::rules::Rule;
use crate::LintContext;

/// Flags distributions whose static throughput certificate falls below
/// the requested constraint — infeasibility proven without simulation.
///
/// Only active when the [`LintContext`] carries both a distribution and a
/// throughput constraint. Per-channel culprits use the relaxed
/// certificate that keeps only that channel's capacity (every other
/// channel unbounded): a relaxation is still a sound upper bound, so a
/// channel whose relaxed bound already misses the constraint saturates
/// the throughput on its own, whatever the other capacities are. When no
/// single channel is a culprit but the combined certificate still misses
/// the constraint, one graph-level diagnostic reports the distribution
/// as a whole.
pub struct StaticSaturation;

impl Rule for StaticSaturation {
    fn code(&self) -> &'static str {
        "B010"
    }

    fn name(&self) -> &'static str {
        "statically-saturated-capacity"
    }

    fn summary(&self) -> &'static str {
        "a channel capacity statically caps the throughput below the requested constraint"
    }

    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic> {
        let (Some(dist), Some(required)) = (&ctx.distribution, ctx.throughput_constraint) else {
            return Vec::new();
        };
        if dist.len() != model.num_channels() {
            return Vec::new(); // arity mismatch is B004's finding
        }
        let observed = ctx
            .observed
            .unwrap_or_else(|| model.default_observed_actor());
        let Some(bounds) = model.static_bounds(observed) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for c in model.channel_views() {
            let cap = dist.get(c.id);
            let Some(cert) = bounds.channel_bound(c.id, cap) else {
                continue;
            };
            if cert.bound >= required {
                continue;
            }
            let step = model.capacity_step(c.id);
            out.push(
                Diagnostic::error(
                    self.code(),
                    Subject::Channel(c.name.clone()),
                    format!(
                        "capacity {cap} statically caps the throughput of \
                         '{}' at {}, below the required {required} — \
                         infeasible whatever the other capacities are",
                        model.actor_name(observed),
                        cert.bound,
                    ),
                )
                .with_hint(format!(
                    "raise the capacity of '{}' (in steps of {step}) or \
                     relax the constraint to at most {}",
                    c.name, cert.bound,
                )),
            );
        }
        if out.is_empty() {
            if let Some(cert) = bounds.certificate(dist) {
                if cert.bound < required {
                    out.push(
                        Diagnostic::error(
                            self.code(),
                            Subject::Graph,
                            format!(
                                "the distribution's static certificate caps the \
                                 throughput of '{}' at {}, below the required \
                                 {required}",
                                model.actor_name(observed),
                                cert.bound,
                            ),
                        )
                        .with_hint(
                            "no single channel is the culprit; grow the \
                             capacities jointly (`buffy bounds` shows the \
                             per-channel certificates)",
                        ),
                    );
                }
            }
        }
        out
    }
}

/// Warns when the throughput constraint already holds at the §7
/// lower-bound distribution — the constrained exploration is trivially
/// solvable and every admissible distribution satisfies the constraint.
///
/// Only active when the [`LintContext`] carries a throughput constraint.
/// The static certificate screens first (when even the sound upper bound
/// at the lower-bound distribution misses the constraint, real search is
/// needed and the rule stays silent without simulating); one exact
/// analysis then confirms the constraint is genuinely met, so the
/// warning is never a false positive.
pub struct TriviallySatisfiable;

impl Rule for TriviallySatisfiable {
    fn code(&self) -> &'static str {
        "B011"
    }

    fn name(&self) -> &'static str {
        "trivially-satisfiable-constraint"
    }

    fn summary(&self) -> &'static str {
        "the throughput constraint already holds at the lower-bound distribution"
    }

    fn check(&self, model: &Model<'_>, ctx: &LintContext) -> Vec<Diagnostic> {
        let Some(required) = ctx.throughput_constraint else {
            return Vec::new();
        };
        if required.is_zero() {
            return Vec::new();
        }
        let observed = ctx
            .observed
            .unwrap_or_else(|| model.default_observed_actor());
        let Some(bounds) = model.static_bounds(observed) else {
            return Vec::new();
        };
        let lb = model.lower_bound_distribution();
        // Static screen: a certificate below the constraint proves the
        // minimal distribution infeasible, so the search is not trivial.
        match bounds.certificate(&lb) {
            Some(cert) if cert.bound >= required => {}
            _ => return Vec::new(),
        }
        // Exact confirmation (one analysis; the screen above keeps this
        // off the common path where real exploration is needed).
        let Some(exact) = model.exact_throughput(&lb, observed) else {
            return Vec::new();
        };
        if exact < required {
            return Vec::new();
        }
        vec![Diagnostic::warning(
            self.code(),
            Subject::Actor(model.actor_name(observed).to_string()),
            format!(
                "the required throughput {required} already holds at the \
                 lower-bound distribution {lb} (exact throughput {exact})",
            ),
        )
        .with_hint(
            "the constrained exploration is trivially solvable: by \
             monotonicity every admissible distribution satisfies the \
             constraint",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{Rational, SdfGraph, StorageDistribution};

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn b010_inactive_without_inputs() {
        let g = example();
        let m = Model::Sdf(&g);
        assert!(StaticSaturation
            .check(&m, &LintContext::default())
            .is_empty());
        // Distribution alone, constraint alone: still inactive.
        let only_dist = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![4, 2])),
            ..LintContext::default()
        };
        assert!(StaticSaturation.check(&m, &only_dist).is_empty());
        let only_constraint = LintContext {
            throughput_constraint: Some(Rational::new(1, 4)),
            ..LintContext::default()
        };
        assert!(StaticSaturation.check(&m, &only_constraint).is_empty());
    }

    #[test]
    fn b010_names_the_culprit_channel() {
        // ⟨4, 2⟩ runs at exactly 1/7; requiring 1/4 is statically
        // impossible, and the relaxed per-channel bounds (alpha alone at
        // capacity 4 caps it at 1/7, beta alone at 2 caps it at 1/6)
        // pin both channels as culprits.
        let g = example();
        let ctx = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![4, 2])),
            throughput_constraint: Some(Rational::new(1, 4)),
            ..LintContext::default()
        };
        let d = StaticSaturation.check(&Model::Sdf(&g), &ctx);
        assert!(!d.is_empty());
        assert!(d.iter().all(|x| x.code == "B010"));
        assert!(d.iter().any(|x| matches!(&x.subject, Subject::Channel(_))));
    }

    #[test]
    fn b010_passes_a_feasible_distribution() {
        // ⟨7, 3⟩ achieves the maximal throughput 1/4.
        let g = example();
        let ctx = LintContext {
            distribution: Some(StorageDistribution::from_capacities(vec![7, 3])),
            throughput_constraint: Some(Rational::new(1, 4)),
            ..LintContext::default()
        };
        assert!(StaticSaturation.check(&Model::Sdf(&g), &ctx).is_empty());
    }

    #[test]
    fn b011_fires_when_the_lower_bound_meets_the_constraint() {
        // The lower-bound distribution ⟨4, 2⟩ runs at exactly 1/7.
        let g = example();
        let ctx = LintContext {
            throughput_constraint: Some(Rational::new(1, 7)),
            ..LintContext::default()
        };
        let d = TriviallySatisfiable.check(&Model::Sdf(&g), &ctx);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "B011");
        assert!(d[0].message.contains("1/7"));
    }

    #[test]
    fn b011_silent_when_search_is_needed() {
        let g = example();
        let ctx = LintContext {
            throughput_constraint: Some(Rational::new(1, 6)),
            ..LintContext::default()
        };
        assert!(TriviallySatisfiable.check(&Model::Sdf(&g), &ctx).is_empty());
        // And without a constraint at all.
        assert!(TriviallySatisfiable
            .check(&Model::Sdf(&g), &LintContext::default())
            .is_empty());
    }
}
