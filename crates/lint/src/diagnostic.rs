//! Structured diagnostics: stable codes, severities, subjects, renderers.

use core::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never blocks anything.
    Info,
    /// Likely a modelling mistake; blocks only under `--deny-warnings`.
    Warning,
    /// The model cannot work as written; analyses refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    /// The graph as a whole.
    Graph,
    /// A named actor.
    Actor(String),
    /// A named channel.
    Channel(String),
}

impl Subject {
    /// The JSON `subject_kind` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Subject::Graph => "graph",
            Subject::Actor(_) => "actor",
            Subject::Channel(_) => "channel",
        }
    }

    /// The subject's name, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Subject::Graph => None,
            Subject::Actor(n) | Subject::Channel(n) => Some(n),
        }
    }
}

/// One finding: a stable code, a severity, the offending element, a
/// human-readable message and an optional fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`B001`…); never renumbered.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// The offending element.
    pub subject: Subject,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// An `Error` diagnostic.
    pub fn error(code: &'static str, subject: Subject, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            subject,
            message: message.into(),
            hint: None,
        }
    }

    /// A `Warning` diagnostic.
    pub fn warning(code: &'static str, subject: Subject, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            subject,
            message: message.into(),
            hint: None,
        }
    }

    /// An `Info` diagnostic.
    pub fn info(code: &'static str, subject: Subject, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Info,
            subject,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match &self.subject {
            Subject::Graph => write!(f, ":")?,
            Subject::Actor(n) => write!(f, " actor '{n}':")?,
            Subject::Channel(n) => write!(f, " channel '{n}':")?,
        }
        write!(f, " {}", self.message)
    }
}

/// The outcome of linting one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The linted graph's name.
    pub graph: String,
    /// `"sdf"` or `"csdf"`.
    pub kind: &'static str,
    /// All findings, in rule (code) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding is `Error`-level.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether any finding is `Warning`-level.
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warning) > 0
    }

    /// Whether there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders the report for terminals, one diagnostic per block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "{} ({}): no issues found\n",
                self.graph, self.kind
            ));
            return out;
        }
        out.push_str(&format!(
            "{} ({}): {} error(s), {} warning(s)\n",
            self.graph,
            self.kind,
            self.count(Severity::Error),
            self.count(Severity::Warning),
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
            if let Some(hint) = &d.hint {
                out.push_str(&format!("  hint: {hint}\n"));
            }
        }
        out
    }

    /// Renders the report as a single JSON object (stable schema:
    /// `graph`, `kind`, `errors`, `warnings`, `diagnostics[]` with
    /// `code`, `severity`, `subject_kind`, `subject`, `message`, `hint`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"graph\":\"{}\",\"kind\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            json_escape(&self.graph),
            self.kind,
            self.count(Severity::Error),
            self.count(Severity::Warning),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject_kind\":\"{}\",\"subject\":{},\"message\":\"{}\",\"hint\":{}}}",
                d.code,
                d.severity,
                d.subject.kind(),
                match d.subject.name() {
                    Some(n) => format!("\"{}\"", json_escape(n)),
                    None => "null".to_string(),
                },
                json_escape(&d.message),
                match &d.hint {
                    Some(h) => format!("\"{}\"", json_escape(h)),
                    None => "null".to_string(),
                },
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            graph: "g".into(),
            kind: "sdf",
            diagnostics: vec![
                Diagnostic::error("B001", Subject::Channel("bwd".into()), "inconsistent")
                    .with_hint("fix the rates"),
                Diagnostic::warning("B007", Subject::Actor("z".into()), "dead actor"),
            ],
        }
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Info.to_string(), "info");
    }

    #[test]
    fn counting() {
        let r = sample();
        assert!(r.has_errors());
        assert!(r.has_warnings());
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 0);
    }

    #[test]
    fn human_rendering() {
        let r = sample();
        let h = r.render_human();
        assert!(h.contains("g (sdf): 1 error(s), 1 warning(s)"));
        assert!(h.contains("error[B001] channel 'bwd': inconsistent"));
        assert!(h.contains("  hint: fix the rates"));
        assert!(h.contains("warning[B007] actor 'z': dead actor"));

        let clean = Report {
            graph: "ok".into(),
            kind: "csdf",
            diagnostics: vec![],
        };
        assert_eq!(clean.render_human(), "ok (csdf): no issues found\n");
    }

    #[test]
    fn json_rendering() {
        let r = sample();
        let j = r.render_json();
        assert!(j.starts_with("{\"graph\":\"g\",\"kind\":\"sdf\",\"errors\":1,\"warnings\":1,"));
        assert!(j.contains(
            "{\"code\":\"B001\",\"severity\":\"error\",\"subject_kind\":\"channel\",\
             \"subject\":\"bwd\",\"message\":\"inconsistent\",\"hint\":\"fix the rates\"}"
        ));
        assert!(j.contains("\"hint\":null"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn graph_subject_has_null_name() {
        let d = Diagnostic::info("B008", Subject::Graph, "note");
        assert_eq!(d.subject.kind(), "graph");
        assert_eq!(d.subject.name(), None);
        assert_eq!(d.to_string(), "info[B008]: note");
    }
}
