//! # buffy-lint
//!
//! Static model verification for **buffy-rs**: a set of checks that run
//! over an [`SdfGraph`] or [`CsdfGraph`] *before* any state-space
//! exploration and report structured diagnostics — a stable code
//! (`B001`…), a severity, the offending actor or channel, and a fix
//! hint. The `buffy check` CLI subcommand renders the resulting
//! [`Report`] in human-readable or JSON form, and the analysis commands
//! use it as a preflight that refuses models with `Error`-level findings.
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | B001 | error    | inconsistent graph (balance equations unsolvable) |
//! | B002 | error    | disconnected graph |
//! | B003 | error    | token-free cycle — guaranteed deadlock |
//! | B004 | error    | channel capacity below the §7 lower bound |
//! | B005 | error    | throughput constraint above the maximal throughput |
//! | B006 | warning  | arithmetic overflow risk in the analyses |
//! | B007 | warning  | dead actor (detached from the dataflow) |
//! | B008 | warning  | modelling smell (starved self-loop, zero-time cycle) |
//! | B009 | warning  | distribution-space explosion — bound the exploration (`--timeout`, `--checkpoint`) |
//! | B010 | error    | channel capacity statically saturates the throughput below the requested constraint |
//! | B011 | warning  | constraint already met at the §7 lower-bound distribution — exploration trivially solvable |
//!
//! Each check is a separate [`Rule`] object; [`Registry::with_default_rules`]
//! collects them all and [`lint_sdf`] / [`lint_csdf`] run the registry.
//!
//! ```
//! use buffy_graph::SdfGraph;
//! use buffy_lint::{lint_sdf, LintContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SdfGraph::builder("bad");
//! let x = b.actor("x", 1);
//! let y = b.actor("y", 1);
//! b.channel("fwd", x, 2, y, 1)?;
//! b.channel("bwd", y, 1, x, 1)?;
//! let g = b.build()?;
//!
//! let report = lint_sdf(&g, &LintContext::default());
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, "B001");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod diagnostic;
mod model;
mod rules;

pub use diagnostic::{Diagnostic, Report, Severity, Subject};
pub use model::{ChannelView, Model, RepetitionIssue};
pub use rules::{Registry, Rule, DEFAULT_SPACE_THRESHOLD};

use buffy_csdf::CsdfGraph;
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};

/// Optional inputs that sharpen the checks: a storage distribution makes
/// the capacity checks (B004) possible, a throughput constraint enables
/// the feasibility check (B005).
#[derive(Debug, Clone, Default)]
pub struct LintContext {
    /// The storage distribution the model is meant to run under.
    pub distribution: Option<StorageDistribution>,
    /// A required throughput for the observed actor.
    pub throughput_constraint: Option<Rational>,
    /// The actor whose throughput is constrained; defaults to the graph's
    /// default observed actor.
    pub observed: Option<ActorId>,
    /// Distribution-space size above which B009 warns (default:
    /// [`DEFAULT_SPACE_THRESHOLD`]).
    pub space_threshold: Option<u64>,
}

/// Runs every default rule over an SDF graph.
pub fn lint_sdf(graph: &SdfGraph, ctx: &LintContext) -> Report {
    Registry::with_default_rules().run(&Model::Sdf(graph), ctx)
}

/// Runs every default rule over a CSDF graph.
pub fn lint_csdf(graph: &CsdfGraph, ctx: &LintContext) -> Report {
    Registry::with_default_rules().run(&Model::Csdf(graph), ctx)
}
