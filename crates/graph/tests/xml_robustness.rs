//! Robustness sweep: malformed SDF3 documents must yield a clean `Err`,
//! never a panic. Each case runs under `catch_unwind` so a panicking
//! parser fails the test with the offending document named, instead of
//! aborting the whole harness.

use buffy_graph::xml::read_sdf_xml;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A minimal well-formed document the corpus mutates from.
const WELL_FORMED: &str = r#"<sdf3><applicationGraph name="g"><sdf name="g">
  <actor name="x"/><actor name="y"/>
  <channel name="c" srcActor="x" srcRate="2" dstActor="y" dstRate="3" initialTokens="1"/>
</sdf></applicationGraph></sdf3>"#;

/// Malformed documents, each labelled with what is wrong with it.
fn corpus() -> Vec<(&'static str, String)> {
    let mut cases: Vec<(&'static str, String)> = vec![
        ("empty input", String::new()),
        ("whitespace only", "   \n\t  ".to_string()),
        ("plain text, no markup", "not xml at all".to_string()),
        ("lone open angle", "<".to_string()),
        ("truncated open tag", "<sdf3><applicationGraph".to_string()),
        ("tag never closed", "<sdf3><applicationGraph name=\"g\">".to_string()),
        ("mismatched close tag", "<sdf3><sdf></sdf3></sdf>".to_string()),
        ("attribute without value", "<sdf3 version></sdf3>".to_string()),
        (
            "attribute quote never closed",
            "<sdf3><applicationGraph name=\"g></sdf3>".to_string(),
        ),
        ("stray close tag", "</sdf3>".to_string()),
        ("negative rate", WELL_FORMED.replace("srcRate=\"2\"", "srcRate=\"-2\"")),
        (
            "overflowing rate",
            WELL_FORMED.replace("srcRate=\"2\"", "srcRate=\"99999999999999999999999\""),
        ),
        ("non-numeric rate", WELL_FORMED.replace("dstRate=\"3\"", "dstRate=\"three\"")),
        ("empty rate", WELL_FORMED.replace("dstRate=\"3\"", "dstRate=\"\"")),
        ("zero rate", WELL_FORMED.replace("srcRate=\"2\"", "srcRate=\"0\"")),
        (
            "negative initial tokens",
            WELL_FORMED.replace("initialTokens=\"1\"", "initialTokens=\"-1\""),
        ),
        (
            "duplicate actor names",
            WELL_FORMED.replace("<actor name=\"y\"/>", "<actor name=\"y\"/><actor name=\"x\"/>"),
        ),
        (
            "duplicate channel names",
            WELL_FORMED.replace(
                "</sdf>",
                "<channel name=\"c\" srcActor=\"y\" srcRate=\"1\" dstActor=\"x\" dstRate=\"1\"/></sdf>",
            ),
        ),
        (
            "channel references unknown actor",
            WELL_FORMED.replace("dstActor=\"y\"", "dstActor=\"ghost\""),
        ),
        ("no application graph", "<sdf3/>".to_string()),
        ("no sdf body", "<sdf3><applicationGraph name=\"g\"/></sdf3>".to_string()),
        (
            "actor without a name",
            WELL_FORMED.replace("<actor name=\"x\"/>", "<actor/>"),
        ),
        (
            "channel missing both rate and port",
            WELL_FORMED.replace(" srcRate=\"2\"", ""),
        ),
        (
            "overflowing execution time",
            format!(
                "{}<!---->",
                WELL_FORMED.replace(
                    "</applicationGraph>",
                    "<sdfProperties><actorProperties actor=\"x\">\
                     <processor default=\"true\"><executionTime time=\"18446744073709551616\"/></processor>\
                     </actorProperties></sdfProperties></applicationGraph>"
                )
            ),
        ),
    ];
    // Truncations at every byte boundary of the well-formed document that
    // fall inside markup are either a parse error or (when the cut lands
    // after a complete, self-contained prefix) a missing-element error.
    for cut in 1..WELL_FORMED.len() {
        if !WELL_FORMED.is_char_boundary(cut) || cut == WELL_FORMED.len() {
            continue;
        }
        if cut % 7 == 0 {
            cases.push(("byte-boundary truncation", WELL_FORMED[..cut].to_string()));
        }
    }
    cases
}

#[test]
fn malformed_documents_error_cleanly() {
    for (label, doc) in corpus() {
        let outcome = catch_unwind(AssertUnwindSafe(|| read_sdf_xml(&doc)));
        match outcome {
            Ok(Ok(_)) => panic!("{label}: malformed document parsed successfully:\n{doc}"),
            Ok(Err(_)) => {}
            Err(_) => panic!("{label}: parser panicked on:\n{doc}"),
        }
    }
}

#[test]
fn deeply_nested_markup_does_not_exhaust_the_stack() {
    // A recursive-descent parser can blow the stack on pathological
    // nesting; a few thousand levels must come back as a clean result.
    let depth = 5_000;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<a>");
    }
    for _ in 0..depth {
        doc.push_str("</a>");
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| read_sdf_xml(&doc)));
    assert!(
        matches!(outcome, Ok(Err(_))),
        "deep nesting should be a clean error, not a crash"
    );
}

#[test]
fn error_messages_name_the_problem() {
    let negative = WELL_FORMED.replace("srcRate=\"2\"", "srcRate=\"-2\"");
    let msg = read_sdf_xml(&negative).unwrap_err().to_string();
    assert!(
        msg.contains("srcRate"),
        "message should name the attribute: {msg}"
    );

    let duplicate = WELL_FORMED.replace(
        "<actor name=\"y\"/>",
        "<actor name=\"y\"/><actor name=\"x\"/>",
    );
    let msg = read_sdf_xml(&duplicate).unwrap_err().to_string();
    assert!(
        msg.contains('x'),
        "message should name the duplicate: {msg}"
    );
}

#[test]
fn hostile_bytes_do_not_crash() {
    // Control characters and NULs inside attribute values are tolerated
    // by the lossy decoder; the only requirement here is no panic.
    for doc in [
        WELL_FORMED.replace("name=\"g\"", "name=\"g\u{0}\""),
        WELL_FORMED.replace("name=\"c\"", "name=\"\u{1b}[31m\""),
    ] {
        let outcome = catch_unwind(AssertUnwindSafe(|| read_sdf_xml(&doc)));
        assert!(outcome.is_ok(), "parser panicked on hostile bytes:\n{doc}");
    }
}
