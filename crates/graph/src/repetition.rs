//! Repetition vectors and consistency checking.
//!
//! The *repetition vector* `q` of an SDF graph assigns to every actor the
//! (smallest, strictly positive) number of firings per graph iteration such
//! that every channel's token balance is restored: for a channel `a → b`
//! with production rate `p` and consumption rate `c`, `q(a)·p = q(b)·c`.
//! Graphs for which a non-trivial solution exists are *consistent*; only
//! consistent graphs can execute indefinitely in bounded memory (paper §3,
//! [Lee91]). Throughputs of any two actors are related by `q` (paper §5).

use crate::error::GraphError;
use crate::graph::SdfGraph;
use crate::ids::ActorId;
use crate::rational::{gcd_u128, Rational};

/// The repetition vector of a consistent SDF graph.
///
/// Entries are normalized to the smallest positive integers, per weakly
/// connected component.
///
/// # Examples
///
/// ```
/// use buffy_graph::{SdfGraph, RepetitionVector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let q = RepetitionVector::compute(&g)?;
/// assert_eq!(q[a], 3);
/// assert_eq!(q[bb], 2);
/// assert_eq!(q[c], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionVector {
    entries: Vec<u64>,
}

impl RepetitionVector {
    /// Computes the repetition vector by solving the balance equations.
    ///
    /// # Errors
    ///
    /// - [`GraphError::Inconsistent`] if the balance equations admit only
    ///   the trivial solution;
    /// - [`GraphError::RepetitionOverflow`] if an entry exceeds `u64`.
    pub fn compute(graph: &SdfGraph) -> Result<RepetitionVector, GraphError> {
        let n = graph.num_actors();
        let mut rates: Vec<Option<Rational>> = vec![None; n];
        let mut component_of: Vec<usize> = vec![usize::MAX; n];
        let mut num_components = 0usize;

        // Propagate symbolic firing rates through each weakly connected
        // component with a DFS; detect contradictions against already
        // assigned rates.
        for start in 0..n {
            if rates[start].is_some() {
                continue;
            }
            let comp = num_components;
            num_components += 1;
            rates[start] = Some(Rational::ONE);
            component_of[start] = comp;
            let mut stack = vec![ActorId::new(start)];
            while let Some(actor) = stack.pop() {
                let r_actor = rates[actor.index()].expect("visited actor has a rate");
                let out = graph.output_channels(actor).iter().map(|&c| (c, true));
                let inp = graph.input_channels(actor).iter().map(|&c| (c, false));
                for (cid, outgoing) in out.chain(inp) {
                    let ch = graph.channel(cid);
                    // For channel src --p:c--> dst: q(dst) = q(src) * p / c.
                    let (other, expected) = if outgoing {
                        (
                            ch.target(),
                            r_actor
                                * Rational::new(ch.production() as i128, ch.consumption() as i128),
                        )
                    } else {
                        (
                            ch.source(),
                            r_actor
                                * Rational::new(ch.consumption() as i128, ch.production() as i128),
                        )
                    };
                    match rates[other.index()] {
                        None => {
                            rates[other.index()] = Some(expected);
                            component_of[other.index()] = comp;
                            stack.push(other);
                        }
                        Some(existing) => {
                            if existing != expected {
                                return Err(GraphError::Inconsistent {
                                    channel: ch.name().to_string(),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Scale each component to the smallest positive integer vector.
        let mut entries = vec![0u64; n];
        for comp in 0..num_components {
            let members: Vec<usize> = (0..n).filter(|&i| component_of[i] == comp).collect();
            // lcm of denominators.
            let mut lcm: u128 = 1;
            for &i in &members {
                let d = rates[i].expect("assigned").denom().unsigned_abs();
                let g = gcd_u128(lcm, d);
                lcm = lcm
                    .checked_mul(d / g)
                    .ok_or(GraphError::RepetitionOverflow)?;
            }
            // Multiply through, then divide by gcd of numerators.
            let mut scaled: Vec<u128> = Vec::with_capacity(members.len());
            for &i in &members {
                let r = rates[i].expect("assigned");
                let v = r.numer().unsigned_abs() * (lcm / r.denom().unsigned_abs());
                scaled.push(v);
            }
            let mut g: u128 = 0;
            for &v in &scaled {
                g = gcd_u128(g, v);
            }
            debug_assert!(g > 0, "component has at least one member with rate 1");
            for (&i, &v) in members.iter().zip(&scaled) {
                let e = v / g;
                entries[i] = u64::try_from(e).map_err(|_| GraphError::RepetitionOverflow)?;
            }
        }

        Ok(RepetitionVector { entries })
    }

    /// Number of firings of `actor` per graph iteration.
    pub fn get(&self, actor: ActorId) -> u64 {
        self.entries[actor.index()]
    }

    /// The entries as a slice, indexed by actor index.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Total number of actor firings in one graph iteration (the number of
    /// actors of the equivalent HSDF graph).
    pub fn total_firings(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Number of actors covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty (never true for a valid graph).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl core::ops::Index<ActorId> for RepetitionVector {
    type Output = u64;
    fn index(&self, actor: ActorId) -> &u64 {
        &self.entries[actor.index()]
    }
}

/// Convenience: checks whether a graph is consistent (paper §3).
///
/// ```
/// use buffy_graph::{SdfGraph, is_consistent};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("bad");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel("fwd", x, 2, y, 1)?;
/// b.channel("bwd", y, 1, x, 1)?;
/// assert!(!is_consistent(&b.build()?));
/// # Ok(())
/// # }
/// ```
pub fn is_consistent(graph: &SdfGraph) -> bool {
    RepetitionVector::compute(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn paper_example_vector() {
        let g = example();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[3, 2, 1]);
        assert_eq!(q.total_firings(), 6);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(is_consistent(&g));
    }

    #[test]
    fn cd2dat_vector() {
        // Classic CD (44.1 kHz) → DAT (48 kHz) sample-rate converter chain.
        let mut b = SdfGraph::builder("cd2dat");
        let cd = b.actor("cd", 1);
        let a = b.actor("fir1", 1);
        let bb = b.actor("fir2", 1);
        let c = b.actor("fir3", 1);
        let d = b.actor("fir4", 1);
        let dat = b.actor("dat", 1);
        b.channel("c1", cd, 1, a, 1).unwrap();
        b.channel("c2", a, 2, bb, 3).unwrap();
        b.channel("c3", bb, 2, c, 7).unwrap();
        b.channel("c4", c, 8, d, 7).unwrap();
        b.channel("c5", d, 5, dat, 1).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[147, 147, 98, 28, 32, 160]);
    }

    #[test]
    fn inconsistent_cycle_detected() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 2, y, 1).unwrap();
        b.channel("bwd", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let err = RepetitionVector::compute(&g).unwrap_err();
        assert!(matches!(err, GraphError::Inconsistent { .. }));
        assert!(!is_consistent(&g));
    }

    #[test]
    fn consistent_cycle() {
        // x fires twice per y firing; back edge must carry 2:1 rates.
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("fwd", x, 1, y, 2).unwrap();
        b.channel_with_tokens("bwd", y, 2, x, 1, 2).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[2, 1]);
    }

    #[test]
    fn multiple_components_normalized_independently() {
        let mut b = SdfGraph::builder("islands");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1); // isolated actor
        b.channel("c", x, 4, y, 6).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q[x], 3);
        assert_eq!(q[y], 2);
        assert_eq!(q[z], 1);
    }

    #[test]
    fn self_loop_is_consistent_iff_rates_match() {
        let mut b = SdfGraph::builder("sl");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 2, x, 2, 2).unwrap();
        let g = b.build().unwrap();
        assert!(is_consistent(&g));

        let mut b = SdfGraph::builder("sl-bad");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 2, x, 3, 6).unwrap();
        let g = b.build().unwrap();
        assert!(!is_consistent(&g));
    }

    #[test]
    fn single_actor_graph() {
        let mut b = SdfGraph::builder("one");
        b.actor("only", 5);
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1]);
    }

    #[test]
    fn index_operator() {
        let g = example();
        let q = RepetitionVector::compute(&g).unwrap();
        assert_eq!(q[g.actor_by_name("a").unwrap()], 3);
    }
}
