//! # buffy-graph
//!
//! Synchronous Dataflow (SDF) graph modelling substrate for **buffy-rs**, a
//! reproduction of Stuijk, Geilen & Basten, *"Exploring Trade-Offs in Buffer
//! Requirements and Throughput Constraints for Synchronous Dataflow
//! Graphs"* (DAC 2006).
//!
//! This crate provides:
//!
//! - the immutable [`SdfGraph`] model (actors, channels, rates, initial
//!   tokens, execution times) with a validating [builder](SdfGraphBuilder);
//! - exact [`Rational`] arithmetic used for throughput values;
//! - [`RepetitionVector`] computation and [consistency](is_consistent)
//!   checking (paper §3, §5);
//! - [`StorageDistribution`], the per-channel buffer capacity assignment the
//!   paper's exploration optimizes (paper Defs. 1–2);
//! - SDF3-compatible [XML input/output](xml) and [DOT export](dot).
//!
//! # Example: the paper's running example (Fig. 1)
//!
//! ```
//! use buffy_graph::{SdfGraph, RepetitionVector, StorageDistribution};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SdfGraph::builder("example");
//! let a = b.actor("a", 1);
//! let bb = b.actor("b", 2);
//! let c = b.actor("c", 2);
//! b.channel("alpha", a, 2, bb, 3)?;
//! b.channel("beta", bb, 1, c, 2)?;
//! let graph = b.build()?;
//!
//! let q = RepetitionVector::compute(&graph)?;
//! assert_eq!(q.as_slice(), &[3, 2, 1]);
//!
//! let gamma = StorageDistribution::from_capacities(vec![4, 2]);
//! assert_eq!(gamma.size(), 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod builder;
mod distribution;
pub mod dot;
mod error;
mod graph;
mod ids;
mod rational;
mod repetition;
pub mod xml;

pub use builder::SdfGraphBuilder;
pub use distribution::StorageDistribution;
pub use error::GraphError;
pub use graph::{Actor, Channel, SdfGraph};
pub use ids::{ActorId, ChannelId};
pub use rational::{checked_lcm_u64, gcd_u128, gcd_u64, ParseRationalError, Rational};
pub use repetition::{is_consistent, RepetitionVector};
