//! Error types for graph construction and validation.

use core::fmt;

/// Errors raised while building or validating an SDF graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Two actors were given the same name.
    DuplicateActorName {
        /// The clashing name.
        name: String,
    },
    /// Two channels were given the same name.
    DuplicateChannelName {
        /// The clashing name.
        name: String,
    },
    /// A port rate was zero; SDF rates must be strictly positive.
    ZeroRate {
        /// Name of the offending channel.
        channel: String,
    },
    /// The graph has no actors.
    EmptyGraph,
    /// The balance equations have no non-trivial solution: the graph is
    /// inconsistent and cannot execute within bounded memory (paper §3).
    Inconsistent {
        /// Name of a channel whose balance equation is violated.
        channel: String,
    },
    /// A repetition-vector entry overflowed the `u64` range.
    RepetitionOverflow,
    /// An arithmetic helper overflowed the `u64` range.
    ArithmeticOverflow {
        /// The operation that overflowed, e.g. `lcm(a, b)`.
        operation: String,
    },
    /// An actor name was not found during lookup.
    UnknownActor {
        /// The name that failed to resolve.
        name: String,
    },
    /// A channel name was not found during lookup.
    UnknownChannel {
        /// The name that failed to resolve.
        name: String,
    },
    /// An actor's idle power exceeds its active power, which would make the
    /// energy-per-iteration objective negative for fast schedules.
    IdlePowerExceedsActive {
        /// Name of the offending actor.
        actor: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateActorName { name } => {
                write!(f, "duplicate actor name {name:?}")
            }
            GraphError::DuplicateChannelName { name } => {
                write!(f, "duplicate channel name {name:?}")
            }
            GraphError::ZeroRate { channel } => {
                write!(f, "channel {channel:?} has a zero port rate")
            }
            GraphError::EmptyGraph => write!(f, "graph has no actors"),
            GraphError::Inconsistent { channel } => {
                write!(f, "graph is inconsistent: balance equation of channel {channel:?} has no non-trivial solution")
            }
            GraphError::RepetitionOverflow => {
                write!(f, "repetition vector entry overflows u64")
            }
            GraphError::ArithmeticOverflow { operation } => {
                write!(f, "arithmetic overflow in {operation}")
            }
            GraphError::UnknownActor { name } => write!(f, "unknown actor {name:?}"),
            GraphError::UnknownChannel { name } => write!(f, "unknown channel {name:?}"),
            GraphError::IdlePowerExceedsActive { actor } => {
                write!(
                    f,
                    "actor {actor:?} has idle power exceeding its active power"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::Inconsistent {
            channel: "alpha".into(),
        };
        let s = e.to_string();
        assert!(s.contains("inconsistent"));
        assert!(s.contains("alpha"));
        assert!(GraphError::EmptyGraph.to_string().contains("no actors"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(GraphError::EmptyGraph);
    }
}
