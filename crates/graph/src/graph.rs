//! The Synchronous Dataflow graph model.
//!
//! An SDF graph is a pair `(A, C)` of actors and channels (paper §2). Every
//! firing of an actor consumes a fixed number of tokens (the *consumption
//! rate*) from each input channel and produces a fixed number (the
//! *production rate*) on each output channel. Channels may carry initial
//! tokens. Each actor has an execution time in discrete time steps.
//!
//! Graphs are immutable once built; construct them with
//! [`SdfGraph::builder`].

use crate::builder::SdfGraphBuilder;
use crate::ids::{ActorId, ChannelId};

/// An actor: a node of the graph, firing with a fixed execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actor {
    pub(crate) name: String,
    pub(crate) execution_time: u64,
    pub(crate) active_power: u64,
    pub(crate) idle_power: u64,
}

impl Actor {
    /// The actor's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time needed for one firing, in discrete time steps (paper §2).
    ///
    /// Zero is allowed; zero-time firings complete within the time step in
    /// which they start.
    pub fn execution_time(&self) -> u64 {
        self.execution_time
    }

    /// Power drawn per time step while the actor is firing.
    ///
    /// Dimensionless energy-per-time-step units; zero (the default) means
    /// the actor carries no power annotation and contributes nothing to
    /// the energy objective.
    pub fn active_power(&self) -> u64 {
        self.active_power
    }

    /// Power drawn per time step while the actor sits idle between firings.
    ///
    /// Must not exceed [`active_power`](Self::active_power) for the energy
    /// model to be physically meaningful; the builder enforces this.
    pub fn idle_power(&self) -> u64 {
        self.idle_power
    }
}

/// A channel: a directed edge carrying tokens from one actor to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    pub(crate) name: String,
    pub(crate) source: ActorId,
    pub(crate) target: ActorId,
    pub(crate) production: u64,
    pub(crate) consumption: u64,
    pub(crate) initial_tokens: u64,
}

impl Channel {
    /// The channel's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The producing actor.
    pub fn source(&self) -> ActorId {
        self.source
    }

    /// The consuming actor.
    pub fn target(&self) -> ActorId {
        self.target
    }

    /// Tokens produced per firing of the source actor (port rate).
    pub fn production(&self) -> u64 {
        self.production
    }

    /// Tokens consumed per firing of the target actor (port rate).
    pub fn consumption(&self) -> u64 {
        self.consumption
    }

    /// Tokens present on the channel at start time.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Whether this channel connects an actor to itself.
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }
}

/// An immutable Synchronous Dataflow graph.
///
/// # Examples
///
/// The running example of the paper (Fig. 1): three actors `a`, `b`, `c`
/// with execution times 1, 2, 2 and channels `α: a→b` (rates 2:3) and
/// `β: b→c` (rates 1:2).
///
/// ```
/// use buffy_graph::SdfGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.num_actors(), 3);
/// assert_eq!(g.num_channels(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfGraph {
    pub(crate) name: String,
    pub(crate) actors: Vec<Actor>,
    pub(crate) channels: Vec<Channel>,
    /// Outgoing channels per actor, in insertion order.
    pub(crate) outputs: Vec<Vec<ChannelId>>,
    /// Incoming channels per actor, in insertion order.
    pub(crate) inputs: Vec<Vec<ChannelId>>,
}

impl SdfGraph {
    /// Starts building a graph with the given name.
    pub fn builder(name: impl Into<String>) -> SdfGraphBuilder {
        SdfGraphBuilder::new(name)
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors `|A|`.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels `|C|`.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The actor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from a different graph).
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.index()]
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from a different graph).
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (ActorId::new(i), a))
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId::new(i), c))
    }

    /// Iterates over all actor ids.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.actors.len()).map(ActorId::new)
    }

    /// Iterates over all channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len()).map(ChannelId::new)
    }

    /// Channels produced into by `actor`.
    pub fn output_channels(&self, actor: ActorId) -> &[ChannelId] {
        &self.outputs[actor.index()]
    }

    /// Channels consumed from by `actor`.
    pub fn input_channels(&self, actor: ActorId) -> &[ChannelId] {
        &self.inputs[actor.index()]
    }

    /// Looks up an actor by name.
    ///
    /// ```
    /// # use buffy_graph::SdfGraph;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = SdfGraph::builder("g");
    /// let a = b.actor("src", 1);
    /// let g = b.build()?;
    /// assert_eq!(g.actor_by_name("src"), Some(a));
    /// assert_eq!(g.actor_by_name("nope"), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors
            .iter()
            .position(|a| a.name == name)
            .map(ActorId::new)
    }

    /// Looks up a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId::new)
    }

    /// Actors with no input channels (pure producers).
    pub fn sources(&self) -> Vec<ActorId> {
        self.actor_ids()
            .filter(|&a| self.inputs[a.index()].is_empty())
            .collect()
    }

    /// Actors with no output channels (pure consumers).
    ///
    /// The last sink (or the last actor, if there is none) is the default
    /// observed actor for throughput analyses.
    pub fn sinks(&self) -> Vec<ActorId> {
        self.actor_ids()
            .filter(|&a| self.outputs[a.index()].is_empty())
            .collect()
    }

    /// The default actor whose throughput is observed: the first sink, or
    /// the last actor when the graph has no sink (e.g. fully cyclic graphs).
    pub fn default_observed_actor(&self) -> ActorId {
        self.sinks()
            .first()
            .copied()
            .unwrap_or_else(|| ActorId::new(self.actors.len() - 1))
    }

    /// Whether every actor can reach every other actor ignoring edge
    /// directions (weak connectivity).
    pub fn is_connected(&self) -> bool {
        if self.actors.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.actors.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            let a = ActorId::new(i);
            for &c in self.outputs[a.index()]
                .iter()
                .chain(&self.inputs[a.index()])
            {
                let ch = &self.channels[c.index()];
                for n in [ch.source.index(), ch.target.index()] {
                    if !seen[n] {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    /// Sum of initial tokens over all channels.
    pub fn total_initial_tokens(&self) -> u64 {
        self.channels.iter().map(|c| c.initial_tokens).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let g = example();
        assert_eq!(g.name(), "example");
        assert_eq!(g.num_actors(), 3);
        assert_eq!(g.num_channels(), 2);
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(g.actor(a).name(), "a");
        assert_eq!(g.actor(a).execution_time(), 1);
        let alpha = g.channel_by_name("alpha").unwrap();
        let ch = g.channel(alpha);
        assert_eq!(ch.name(), "alpha");
        assert_eq!(ch.production(), 2);
        assert_eq!(ch.consumption(), 3);
        assert_eq!(ch.initial_tokens(), 0);
        assert_eq!(ch.source(), a);
        assert!(!ch.is_self_loop());
    }

    #[test]
    fn adjacency() {
        let g = example();
        let a = g.actor_by_name("a").unwrap();
        let b = g.actor_by_name("b").unwrap();
        let c = g.actor_by_name("c").unwrap();
        assert_eq!(g.output_channels(a).len(), 1);
        assert_eq!(g.input_channels(a).len(), 0);
        assert_eq!(g.output_channels(b).len(), 1);
        assert_eq!(g.input_channels(b).len(), 1);
        assert_eq!(g.input_channels(c).len(), 1);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
        assert_eq!(g.default_observed_actor(), c);
    }

    #[test]
    fn iterators_cover_everything() {
        let g = example();
        assert_eq!(g.actors().count(), 3);
        assert_eq!(g.channels().count(), 2);
        assert_eq!(g.actor_ids().count(), 3);
        assert_eq!(g.channel_ids().count(), 2);
    }

    #[test]
    fn connectivity() {
        let g = example();
        assert!(g.is_connected());

        let mut b = SdfGraph::builder("two-islands");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let _ = z;
        let g = b.build().unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn cyclic_graph_observed_actor_falls_back_to_last() {
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("f", x, 1, y, 1, 0).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(g.sinks().is_empty());
        assert_eq!(g.default_observed_actor(), y);
        assert_eq!(g.total_initial_tokens(), 1);
    }

    #[test]
    fn self_loop_detected() {
        let mut b = SdfGraph::builder("loop");
        let x = b.actor("x", 1);
        b.channel_with_tokens("s", x, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(g.channel(ChannelId::new(0)).is_self_loop());
        assert!(g.is_connected());
    }
}
