//! Exact rational arithmetic.
//!
//! Throughput values in SDF analysis are exact rationals such as 1/7 or
//! 147/2036. Floating point cannot represent these exactly, and the
//! design-space exploration relies on exact comparisons of throughputs
//! (e.g. to decide that distribution sizes 3 and 6 realize the *same*
//! maximal throughput). [`Rational`] is a small, always-normalized
//! numerator/denominator pair backed by `i128`.
//!
//! # Examples
//!
//! ```
//! use buffy_graph::Rational;
//!
//! let a = Rational::new(1, 7);
//! let b = Rational::new(2, 14);
//! assert_eq!(a, b);
//! assert!(a < Rational::new(1, 6));
//! assert_eq!((a + b).to_string(), "2/7");
//! ```

use crate::error::GraphError;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

/// Greatest common divisor of two unsigned 128-bit integers.
///
/// `gcd_u128(0, 0)` is defined as 0.
///
/// ```
/// assert_eq!(buffy_graph::gcd_u128(12, 18), 6);
/// assert_eq!(buffy_graph::gcd_u128(0, 5), 5);
/// ```
pub const fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of two `u64` values (0 when both are 0).
///
/// ```
/// assert_eq!(buffy_graph::gcd_u64(147, 160), 1);
/// assert_eq!(buffy_graph::gcd_u64(8, 12), 4);
/// ```
pub const fn gcd_u64(a: u64, b: u64) -> u64 {
    gcd_u128(a as u128, b as u128) as u64
}

/// Least common multiple of two `u64` values; `checked_lcm_u64(0, x)` is 0.
///
/// # Errors
///
/// Returns [`GraphError::ArithmeticOverflow`] when the result does not fit
/// in `u64` — the unchecked `(a / g) * b` would silently wrap in release
/// builds.
///
/// ```
/// assert_eq!(buffy_graph::checked_lcm_u64(4, 6), Ok(12));
/// assert_eq!(buffy_graph::checked_lcm_u64(0, 6), Ok(0));
/// assert!(buffy_graph::checked_lcm_u64(u64::MAX, u64::MAX - 1).is_err());
/// ```
pub fn checked_lcm_u64(a: u64, b: u64) -> Result<u64, GraphError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd_u64(a, b);
    (a / g)
        .checked_mul(b)
        .ok_or(GraphError::ArithmeticOverflow {
            operation: format!("lcm({a}, {b})"),
        })
}

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|numerator|, denominator) == 1` (0 is stored as `0/1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number 0.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number 1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational `num/den`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// assert_eq!(Rational::new(-4, -6), Rational::new(2, 3));
    /// ```
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational denominator must be non-zero");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let n = num.unsigned_abs();
        let d = den.unsigned_abs();
        let g = gcd_u128(n, d);
        if g == 0 {
            return Rational::ZERO;
        }
        Rational {
            num: sign * (n / g) as i128,
            den: (d / g) as i128,
        }
    }

    /// Creates a rational from an integer.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// assert_eq!(Rational::from_integer(5), Rational::new(5, 1));
    /// ```
    pub const fn from_integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The normalized numerator (carries the sign).
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The normalized denominator (always positive).
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this rational is exactly zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this rational is an integer.
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
    /// ```
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer not greater than the value.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// assert_eq!(Rational::new(7, 2).floor(), 3);
    /// assert_eq!(Rational::new(-7, 2).floor(), -4);
    /// ```
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer not less than the value.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// assert_eq!(Rational::new(7, 2).ceil(), 4);
    /// assert_eq!(Rational::new(-7, 2).ceil(), -3);
    /// ```
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Lossy conversion to `f64` (for display / plotting only — never used
    /// in decisions inside the library).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Midpoint of two rationals, `(a + b) / 2`.
    ///
    /// Used by the binary search in the throughput dimension of the
    /// design-space exploration.
    pub fn midpoint(a: Rational, b: Rational) -> Rational {
        (a + b) / Rational::from_integer(2)
    }

    /// Rounds this value down to the nearest multiple of `quantum`.
    ///
    /// Used by the throughput-quantization option of the exploration
    /// (paper §11, the H.263 case).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not strictly positive.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// let q = Rational::new(1, 100);
    /// assert_eq!(Rational::new(1, 7).quantize_down(q), Rational::new(14, 100));
    /// ```
    pub fn quantize_down(&self, quantum: Rational) -> Rational {
        assert!(
            quantum > Rational::ZERO,
            "quantization step must be positive"
        );
        let k = (*self / quantum).floor();
        quantum * Rational::from_integer(k)
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        let g = gcd_u128(self.den.unsigned_abs(), other.den.unsigned_abs()) as i128;
        let lhs = self.num.checked_mul(other.den / g)?;
        let rhs = other.num.checked_mul(self.den / g)?;
        let num = lhs.checked_add(rhs)?;
        let den = (self.den / g).checked_mul(other.den)?;
        Some(Rational::new(num, den))
    }

    /// Checked multiplication, `None` on overflow.
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_u128(self.num.unsigned_abs(), other.den.unsigned_abs()) as i128;
        let g2 = gcd_u128(other.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        let g1 = g1.max(1);
        let g2 = g2.max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Rational::new(num, den))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, other: Rational) -> Rational {
        self.checked_add(&other)
            .expect("rational addition overflowed i128")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, other: Rational) -> Rational {
        self + (-other)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, other: Rational) -> Rational {
        self.checked_mul(&other)
            .expect("rational multiplication overflowed i128")
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division by a rational IS multiplication by its reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, other: Rational) -> Rational {
        self * other.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, other: Rational) {
        *self = *self + other;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, other: Rational) {
        *self = *self - other;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, other: Rational) {
        *self = *self * other;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, other: Rational) {
        *self = *self / other;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0).
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Overflow fallback: compare via f64 first, exact continued
            // fraction if too close. In practice SDF throughputs stay far
            // below this regime; keep a conservative, still-correct path.
            _ => cmp_by_parts(self, other),
        }
    }
}

/// Exact comparison via Euclidean decomposition, used only when the direct
/// cross-multiplication would overflow `i128`.
fn cmp_by_parts(a: &Rational, b: &Rational) -> Ordering {
    // Compare integer parts, then recurse on the fractional remainders with
    // swapped roles (standard continued-fraction comparison).
    let (mut an, mut ad) = (a.num, a.den);
    let (mut bn, mut bd) = (b.num, b.den);
    // Normalize signs: denominators are positive by invariant.
    loop {
        let qa = an.div_euclid(ad);
        let qb = bn.div_euclid(bd);
        match qa.cmp(&qb) {
            Ordering::Equal => {}
            o => return o,
        }
        let ra = an.rem_euclid(ad);
        let rb = bn.rem_euclid(bd);
        match (ra == 0, rb == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                // a' = ra/ad, b' = rb/bd, both in (0,1):
                // ra/ad ? rb/bd <=> bd/rb ? ad/ra (reversed)
                let (nan, nad) = (bd, rb);
                let (nbn, nbd) = (ad, ra);
                an = nan;
                ad = nad;
                bn = nbn;
                bd = nbd;
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({}/{})", self.num, self.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational number syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a/b"` or `"a"`.
    ///
    /// ```
    /// use buffy_graph::Rational;
    /// let r: Rational = "3/9".parse().unwrap();
    /// assert_eq!(r, Rational::new(1, 3));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRationalError {
            input: s.to_string(),
        };
        let s = s.trim();
        match s.split_once('/') {
            Some((n, d)) => {
                let n: i128 = n.trim().parse().map_err(|_| err())?;
                let d: i128 = d.trim().parse().map_err(|_| err())?;
                if d == 0 {
                    return Err(err());
                }
                Ok(Rational::new(n, d))
            }
            None => {
                let n: i128 = s.parse().map_err(|_| err())?;
                Ok(Rational::from_integer(n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_u128(0, 0), 0);
        assert_eq!(gcd_u128(0, 7), 7);
        assert_eq!(gcd_u128(7, 0), 7);
        assert_eq!(gcd_u128(12, 18), 6);
        assert_eq!(gcd_u64(147, 160), 1);
        assert_eq!(checked_lcm_u64(4, 6), Ok(12));
        assert_eq!(checked_lcm_u64(0, 6), Ok(0));
        assert_eq!(checked_lcm_u64(6, 0), Ok(0));
        assert!(matches!(
            checked_lcm_u64(u64::MAX, u64::MAX - 1),
            Err(GraphError::ArithmeticOverflow { .. })
        ));
        // Co-prime factors just below the limit still work.
        assert_eq!(checked_lcm_u64(1 << 32, 1 << 31), Ok(1 << 32));
    }

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, 4), Rational::new(1, -2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(0, 5).denom(), 1);
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 6);
        let b = Rational::new(1, 7);
        assert_eq!(a + b, Rational::new(13, 42));
        assert_eq!(a - b, Rational::new(1, 42));
        assert_eq!(a * b, Rational::new(1, 42));
        assert_eq!(a / b, Rational::new(7, 6));
        assert_eq!(-a, Rational::new(-1, 6));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
        c *= b;
        c /= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 7) < Rational::new(1, 6));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(3, 2) > Rational::ONE);
        assert_eq!(
            Rational::new(4, 8).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn ordering_huge_values_no_overflow() {
        let big = i128::MAX / 2;
        let a = Rational::new(big, big - 1);
        let b = Rational::new(big - 1, big - 2);
        // a = big/(big-1) ≈ 1+1/(big-1); b ≈ 1+1/(big-2) so a < b.
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 3).floor(), 2);
        assert_eq!(Rational::new(7, 3).ceil(), 3);
        assert_eq!(Rational::new(-7, 3).floor(), -3);
        assert_eq!(Rational::new(-7, 3).ceil(), -2);
        assert_eq!(Rational::from_integer(4).floor(), 4);
        assert_eq!(Rational::from_integer(4).ceil(), 4);
    }

    #[test]
    fn midpoint_and_quantize() {
        let m = Rational::midpoint(Rational::ZERO, Rational::new(1, 4));
        assert_eq!(m, Rational::new(1, 8));
        let q = Rational::new(1, 100);
        assert_eq!(Rational::new(1, 7).quantize_down(q), Rational::new(7, 50));
        assert_eq!(Rational::new(1, 4).quantize_down(q), Rational::new(1, 4));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("1/7".parse::<Rational>().unwrap(), Rational::new(1, 7));
        assert_eq!(
            " -3 / 9 ".parse::<Rational>().unwrap(),
            Rational::new(-1, 3)
        );
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from_integer(5));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
        assert_eq!(Rational::new(3, 9).to_string(), "1/3");
        assert_eq!(Rational::from_integer(-2).to_string(), "-2");
        assert!(!format!("{:?}", Rational::ZERO).is_empty());
    }

    #[test]
    fn recip_and_predicates() {
        assert_eq!(Rational::new(2, 5).recip(), Rational::new(5, 2));
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::from_integer(9).is_integer());
        assert!(!Rational::new(1, 2).is_integer());
        assert_eq!(Rational::new(-1, 2).abs(), Rational::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Rational::new(1, 7).to_f64() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let huge = Rational::from_integer(i128::MAX);
        assert!(huge.checked_add(&huge).is_none());
        assert!(huge.checked_mul(&huge).is_none());
        // Different denominators force a cross-multiplication that
        // overflows even though each operand is representable.
        let a = Rational::new(i128::MAX - 1, 3);
        let b = Rational::new(1, i128::MAX - 2);
        assert!(a.checked_add(&b).is_none());
        // Cross-reduction lets this one succeed despite big operands.
        let a = Rational::new(i128::MAX / 2, 7);
        let b = Rational::new(7, i128::MAX / 2);
        assert_eq!(a.checked_mul(&b), Some(Rational::ONE));
        // Normal values round-trip through the checked paths.
        let x = Rational::new(3, 4);
        let y = Rational::new(5, 6);
        assert_eq!(x.checked_add(&y), Some(x + y));
        assert_eq!(x.checked_mul(&y), Some(x * y));
    }

    #[test]
    fn conversions_from_integers() {
        assert_eq!(Rational::from(3i64), Rational::from_integer(3));
        assert_eq!(Rational::from(3u64), Rational::from_integer(3));
        assert_eq!(Rational::from(3u32), Rational::from_integer(3));
        assert_eq!(Rational::default(), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn quantize_zero_quantum_panics() {
        let _ = Rational::ONE.quantize_down(Rational::ZERO);
    }
}
