//! Graphviz DOT export.

use crate::graph::SdfGraph;
use core::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// Actors become nodes labelled `name (execution time)`; channels become
/// edges labelled with their rates and initial-token count.
///
/// ```
/// # use buffy_graph::{SdfGraph, dot::to_dot};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 2);
/// b.channel_with_tokens("c", x, 2, y, 3, 1)?;
/// let dot = to_dot(&b.build()?);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"x\" -> \"y\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (_, actor) in graph.actors() {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n({})\"];",
            actor.name(),
            actor.name(),
            actor.execution_time()
        );
    }
    for (_, ch) in graph.channels() {
        let tokens = if ch.initial_tokens() > 0 {
            format!(" [{}]", ch.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}: {}:{}{}\", taillabel=\"{}\", headlabel=\"{}\"];",
            graph.actor(ch.source()).name(),
            graph.actor(ch.target()).name(),
            ch.name(),
            ch.production(),
            ch.consumption(),
            tokens,
            ch.production(),
            ch.consumption()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraph;

    #[test]
    fn dot_structure() {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        b.channel_with_tokens("alpha", a, 2, bb, 3, 4).unwrap();
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"example\""));
        assert!(dot.contains("\"a\" [label=\"a\\n(1)\"]"));
        assert!(dot.contains("alpha: 2:3 [4]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn no_initial_tokens_no_bracket() {
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 1);
        b.channel("c", a, 1, bb, 1).unwrap();
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("c: 1:1\""));
        assert!(!dot.contains("1:1 ["));
    }
}
