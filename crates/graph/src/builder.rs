//! Incremental construction of [`SdfGraph`]s.

use crate::error::GraphError;
use crate::graph::{Actor, Channel, SdfGraph};
use crate::ids::{ActorId, ChannelId};
use std::collections::HashSet;

/// Builder for [`SdfGraph`] ([C-BUILDER]).
///
/// Channel rates must be strictly positive; violations are reported when the
/// channel is added, duplicate names when [`build`](Self::build) runs.
///
/// # Examples
///
/// ```
/// use buffy_graph::SdfGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("pipeline");
/// let src = b.actor("src", 1);
/// let dst = b.actor("dst", 3);
/// b.channel_with_tokens("data", src, 4, dst, 2, 2)?;
/// let graph = b.build()?;
/// assert_eq!(graph.channel_by_name("data").map(|c| graph.channel(c).initial_tokens()), Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SdfGraphBuilder {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
}

impl SdfGraphBuilder {
    /// Creates an empty builder for a graph with the given name.
    pub fn new(name: impl Into<String>) -> SdfGraphBuilder {
        SdfGraphBuilder {
            name: name.into(),
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Adds an actor with the given name and execution time and returns its
    /// id.
    ///
    /// The actor carries no power annotation (both powers zero); use
    /// [`actor_with_power`](Self::actor_with_power) to attach one.
    pub fn actor(&mut self, name: impl Into<String>, execution_time: u64) -> ActorId {
        let id = ActorId::new(self.actors.len());
        self.actors.push(Actor {
            name: name.into(),
            execution_time,
            active_power: 0,
            idle_power: 0,
        });
        id
    }

    /// Adds an actor annotated with a power model: `active_power` is drawn
    /// per time step while firing, `idle_power` per time step in between.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IdlePowerExceedsActive`] if `idle_power >
    /// active_power` — the energy objective assumes firing never saves
    /// power relative to idling.
    pub fn actor_with_power(
        &mut self,
        name: impl Into<String>,
        execution_time: u64,
        active_power: u64,
        idle_power: u64,
    ) -> Result<ActorId, GraphError> {
        let name = name.into();
        if idle_power > active_power {
            return Err(GraphError::IdlePowerExceedsActive { actor: name });
        }
        let id = ActorId::new(self.actors.len());
        self.actors.push(Actor {
            name,
            execution_time,
            active_power,
            idle_power,
        });
        Ok(id)
    }

    /// Adds a channel with no initial tokens.
    ///
    /// `production` tokens are produced per firing of `source`;
    /// `consumption` tokens are consumed per firing of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroRate`] if either rate is zero and
    /// [`GraphError::UnknownActor`] if an id is out of range.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        source: ActorId,
        production: u64,
        target: ActorId,
        consumption: u64,
    ) -> Result<ChannelId, GraphError> {
        self.channel_with_tokens(name, source, production, target, consumption, 0)
    }

    /// Adds a channel carrying `initial_tokens` tokens at start time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ZeroRate`] if either rate is zero and
    /// [`GraphError::UnknownActor`] if an id is out of range.
    pub fn channel_with_tokens(
        &mut self,
        name: impl Into<String>,
        source: ActorId,
        production: u64,
        target: ActorId,
        consumption: u64,
        initial_tokens: u64,
    ) -> Result<ChannelId, GraphError> {
        let name = name.into();
        if production == 0 || consumption == 0 {
            return Err(GraphError::ZeroRate { channel: name });
        }
        for id in [source, target] {
            if id.index() >= self.actors.len() {
                return Err(GraphError::UnknownActor {
                    name: format!("{id}"),
                });
            }
        }
        let cid = ChannelId::new(self.channels.len());
        self.channels.push(Channel {
            name,
            source,
            target,
            production,
            consumption,
            initial_tokens,
        });
        Ok(cid)
    }

    /// Number of actors added so far.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels added so far.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// - [`GraphError::EmptyGraph`] if no actor was added;
    /// - [`GraphError::DuplicateActorName`] / [`GraphError::DuplicateChannelName`]
    ///   on name clashes.
    pub fn build(self) -> Result<SdfGraph, GraphError> {
        if self.actors.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let mut actor_names = HashSet::new();
        for a in &self.actors {
            if !actor_names.insert(a.name.clone()) {
                return Err(GraphError::DuplicateActorName {
                    name: a.name.clone(),
                });
            }
        }
        let mut channel_names = HashSet::new();
        for c in &self.channels {
            if !channel_names.insert(c.name.clone()) {
                return Err(GraphError::DuplicateChannelName {
                    name: c.name.clone(),
                });
            }
        }
        let mut outputs = vec![Vec::new(); self.actors.len()];
        let mut inputs = vec![Vec::new(); self.actors.len()];
        for (i, c) in self.channels.iter().enumerate() {
            outputs[c.source.index()].push(ChannelId::new(i));
            inputs[c.target.index()].push(ChannelId::new(i));
        }
        Ok(SdfGraph {
            name: self.name,
            actors: self.actors,
            channels: self.channels,
            outputs,
            inputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        assert!(matches!(
            b.channel("c", x, 0, y, 1),
            Err(GraphError::ZeroRate { .. })
        ));
        assert!(matches!(
            b.channel("c", x, 1, y, 0),
            Err(GraphError::ZeroRate { .. })
        ));
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let bogus = ActorId::new(42);
        assert!(matches!(
            b.channel("c", x, 1, bogus, 1),
            Err(GraphError::UnknownActor { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        b.actor("x", 1);
        b.actor("x", 2);
        assert!(matches!(
            b.build(),
            Err(GraphError::DuplicateActorName { .. })
        ));

        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        b.channel("c", y, 1, x, 1).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::DuplicateChannelName { .. })
        ));
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            SdfGraphBuilder::new("g").build(),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn power_annotation_is_carried_and_validated() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor_with_power("x", 2, 7, 3).unwrap();
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.actor(x).active_power(), 7);
        assert_eq!(g.actor(x).idle_power(), 3);
        assert_eq!(g.actor(y).active_power(), 0);
        assert_eq!(g.actor(y).idle_power(), 0);

        let mut b = SdfGraphBuilder::new("g");
        assert!(matches!(
            b.actor_with_power("x", 1, 2, 3),
            Err(GraphError::IdlePowerExceedsActive { .. })
        ));
    }

    #[test]
    fn counters_track_additions() {
        let mut b = SdfGraphBuilder::new("g");
        assert_eq!(b.num_actors(), 0);
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        assert_eq!(b.num_actors(), 2);
        b.channel("c", x, 1, y, 1).unwrap();
        assert_eq!(b.num_channels(), 1);
    }

    #[test]
    fn adjacency_in_insertion_order() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let c0 = b.channel("c0", x, 1, y, 1).unwrap();
        let c1 = b.channel("c1", x, 2, y, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.output_channels(x), &[c0, c1]);
        assert_eq!(g.input_channels(y), &[c0, c1]);
    }
}
