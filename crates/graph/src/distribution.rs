//! Storage distributions: per-channel buffer capacities.
//!
//! A *storage distribution* `γ : C → ℕ` assigns every channel the maximum
//! number of tokens it may hold (paper Def. 1). Its *distribution size*
//! `sz(γ)` is the sum of the capacities (Def. 2); in the paper's storage
//! model channels cannot share memory, so the size is the total memory the
//! implementation needs.

use crate::graph::SdfGraph;
use crate::ids::ChannelId;
use core::fmt;

/// A storage distribution: one capacity per channel (paper Def. 1).
///
/// # Examples
///
/// ```
/// use buffy_graph::StorageDistribution;
///
/// let d = StorageDistribution::from_capacities(vec![4, 2]);
/// assert_eq!(d.size(), 6);
/// assert_eq!(d.to_string(), "<4, 2>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageDistribution {
    capacities: Vec<u64>,
}

impl StorageDistribution {
    /// A distribution giving every one of `num_channels` channels the same
    /// capacity.
    pub fn uniform(num_channels: usize, capacity: u64) -> StorageDistribution {
        StorageDistribution {
            capacities: vec![capacity; num_channels],
        }
    }

    /// Wraps an explicit capacity vector (indexed by channel index).
    pub fn from_capacities(capacities: Vec<u64>) -> StorageDistribution {
        StorageDistribution { capacities }
    }

    /// Builds a distribution for `graph` by naming channels.
    ///
    /// # Errors
    ///
    /// Returns the offending name if a channel does not exist.
    pub fn from_named(
        graph: &SdfGraph,
        entries: &[(&str, u64)],
    ) -> Result<StorageDistribution, crate::GraphError> {
        let mut caps = vec![0u64; graph.num_channels()];
        for &(name, cap) in entries {
            let id = graph
                .channel_by_name(name)
                .ok_or_else(|| crate::GraphError::UnknownChannel { name: name.into() })?;
            caps[id.index()] = cap;
        }
        Ok(StorageDistribution { capacities: caps })
    }

    /// The capacity of `channel`.
    pub fn get(&self, channel: ChannelId) -> u64 {
        self.capacities[channel.index()]
    }

    /// Sets the capacity of `channel`.
    pub fn set(&mut self, channel: ChannelId, capacity: u64) {
        self.capacities[channel.index()] = capacity;
    }

    /// Returns a copy with `channel` grown by `step` tokens.
    pub fn grown(&self, channel: ChannelId, step: u64) -> StorageDistribution {
        let mut d = self.clone();
        d.capacities[channel.index()] += step;
        d
    }

    /// The distribution size `sz(γ) = Σ_c γ(c)` (paper Def. 2).
    pub fn size(&self) -> u64 {
        self.capacities.iter().sum()
    }

    /// Number of channels covered.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the distribution covers no channels.
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// The capacities as a slice, indexed by channel index.
    pub fn as_slice(&self) -> &[u64] {
        &self.capacities
    }

    /// Whether every capacity of `self` is ≥ the corresponding capacity of
    /// `other` (pointwise dominance). Throughput is monotone under this
    /// order (paper §9).
    ///
    /// # Panics
    ///
    /// Panics if the distributions cover different channel counts.
    pub fn dominates(&self, other: &StorageDistribution) -> bool {
        assert_eq!(
            self.capacities.len(),
            other.capacities.len(),
            "distributions must cover the same channels"
        );
        self.capacities
            .iter()
            .zip(&other.capacities)
            .all(|(a, b)| a >= b)
    }

    /// Pointwise maximum of two distributions.
    ///
    /// # Panics
    ///
    /// Panics if the distributions cover different channel counts.
    pub fn join(&self, other: &StorageDistribution) -> StorageDistribution {
        assert_eq!(self.capacities.len(), other.capacities.len());
        StorageDistribution {
            capacities: self
                .capacities
                .iter()
                .zip(&other.capacities)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }
}

impl core::ops::Index<ChannelId> for StorageDistribution {
    type Output = u64;
    fn index(&self, channel: ChannelId) -> &u64 {
        &self.capacities[channel.index()]
    }
}

impl FromIterator<u64> for StorageDistribution {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        StorageDistribution {
            capacities: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for StorageDistribution {
    /// Formats as the paper's `⟨…⟩` notation (ASCII variant `<4, 2>`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.capacities.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_access() {
        let mut d = StorageDistribution::from_capacities(vec![4, 2]);
        assert_eq!(d.size(), 6);
        assert_eq!(d.get(ChannelId::new(0)), 4);
        assert_eq!(d[ChannelId::new(1)], 2);
        d.set(ChannelId::new(1), 3);
        assert_eq!(d.size(), 7);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn uniform_and_collect() {
        let d = StorageDistribution::uniform(3, 5);
        assert_eq!(d.as_slice(), &[5, 5, 5]);
        let d: StorageDistribution = [1u64, 2, 3].into_iter().collect();
        assert_eq!(d.size(), 6);
    }

    #[test]
    fn dominance() {
        let a = StorageDistribution::from_capacities(vec![4, 2]);
        let b = StorageDistribution::from_capacities(vec![4, 1]);
        let c = StorageDistribution::from_capacities(vec![3, 3]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert_eq!(a.join(&c).as_slice(), &[4, 3]);
    }

    #[test]
    #[should_panic(expected = "same channels")]
    fn dominance_length_mismatch_panics() {
        let a = StorageDistribution::from_capacities(vec![4, 2]);
        let b = StorageDistribution::from_capacities(vec![4]);
        let _ = a.dominates(&b);
    }

    #[test]
    fn grown_is_pure() {
        let a = StorageDistribution::from_capacities(vec![4, 2]);
        let b = a.grown(ChannelId::new(0), 2);
        assert_eq!(a.as_slice(), &[4, 2]);
        assert_eq!(b.as_slice(), &[6, 2]);
    }

    #[test]
    fn named_construction() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("alpha", x, 2, y, 3).unwrap();
        b.channel("beta", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let d = StorageDistribution::from_named(&g, &[("alpha", 4), ("beta", 2)]).unwrap();
        assert_eq!(d.as_slice(), &[4, 2]);
        assert!(StorageDistribution::from_named(&g, &[("nope", 1)]).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        let d = StorageDistribution::from_capacities(vec![1, 2, 3, 3]);
        assert_eq!(d.to_string(), "<1, 2, 3, 3>");
        assert_eq!(
            StorageDistribution::from_capacities(vec![]).to_string(),
            "<>"
        );
    }
}
