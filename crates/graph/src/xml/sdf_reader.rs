//! Reading SDF graphs from SDF3-style XML.

use super::parse::{parse, XmlError};
use super::tree::XmlElement;
use crate::builder::SdfGraphBuilder;
use crate::error::GraphError;
use crate::graph::SdfGraph;
use core::fmt;
use std::collections::HashMap;

/// Error raised while reading an SDF graph from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfXmlError {
    /// The text is not well-formed XML.
    Parse(XmlError),
    /// A required element or attribute is missing.
    Missing {
        /// Human-readable description of the missing item.
        what: String,
    },
    /// An attribute value could not be interpreted.
    Invalid {
        /// Human-readable description of the bad value.
        what: String,
    },
    /// The graph content itself is invalid (duplicate names, zero rates…).
    Graph(GraphError),
}

impl fmt::Display for SdfXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfXmlError::Parse(e) => write!(f, "{e}"),
            SdfXmlError::Missing { what } => write!(f, "missing {what}"),
            SdfXmlError::Invalid { what } => write!(f, "invalid {what}"),
            SdfXmlError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SdfXmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdfXmlError::Parse(e) => Some(e),
            SdfXmlError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for SdfXmlError {
    fn from(e: XmlError) -> Self {
        SdfXmlError::Parse(e)
    }
}

impl From<GraphError> for SdfXmlError {
    fn from(e: GraphError) -> Self {
        SdfXmlError::Graph(e)
    }
}

fn missing(what: impl Into<String>) -> SdfXmlError {
    SdfXmlError::Missing { what: what.into() }
}

fn invalid(what: impl Into<String>) -> SdfXmlError {
    SdfXmlError::Invalid { what: what.into() }
}

fn req_attr<'a>(el: &'a XmlElement, key: &str) -> Result<&'a str, SdfXmlError> {
    el.attribute(key)
        .ok_or_else(|| missing(format!("attribute {key:?} on <{}>", el.name)))
}

fn parse_u64(el: &XmlElement, key: &str, value: &str) -> Result<u64, SdfXmlError> {
    value
        .trim()
        .parse()
        .map_err(|_| invalid(format!("attribute {key}={value:?} on <{}>", el.name)))
}

/// Reads an SDF graph from SDF3-style XML text.
///
/// Two channel encodings are accepted:
///
/// - SDF3 style: actors declare `<port name=… type="in"|"out" rate=…/>` and
///   channels reference `srcActor`/`srcPort`/`dstActor`/`dstPort`;
/// - compact style: channels carry `srcRate`/`dstRate` attributes directly.
///
/// Execution times come from
/// `<sdfProperties><actorProperties actor=…><processor…><executionTime time=…/>`
/// and default to 1 when absent. An optional `<power active=… idle=…/>`
/// element under the same `<actorProperties>` attaches a power model to
/// the actor (both attributes default to 0 when omitted).
///
/// # Errors
///
/// Returns [`SdfXmlError`] on malformed XML, missing elements/attributes,
/// unparsable numbers, or invalid graph content.
pub fn read_sdf_xml(text: &str) -> Result<SdfGraph, SdfXmlError> {
    let root = parse(text)?;
    let app = root
        .find_descendant("applicationGraph")
        .ok_or_else(|| missing("<applicationGraph> element"))?;
    let sdf = app
        .find_descendant("sdf")
        .ok_or_else(|| missing("<sdf> element"))?;
    let name = app
        .attribute("name")
        .or_else(|| sdf.attribute("name"))
        .unwrap_or("sdf-graph");

    // Execution times and power annotations from <sdfProperties>.
    let mut exec_times: HashMap<String, u64> = HashMap::new();
    let mut powers: HashMap<String, (u64, u64)> = HashMap::new();
    if let Some(props) = app.find_descendant("sdfProperties") {
        for ap in props.find_all("actorProperties") {
            let actor = req_attr(ap, "actor")?;
            if let Some(et) = ap.find_descendant("executionTime") {
                let t = req_attr(et, "time")?;
                exec_times.insert(actor.to_string(), parse_u64(et, "time", t)?);
            }
            if let Some(pw) = ap.find_descendant("power") {
                let active = match pw.attribute("active") {
                    Some(v) => parse_u64(pw, "active", v)?,
                    None => 0,
                };
                let idle = match pw.attribute("idle") {
                    Some(v) => parse_u64(pw, "idle", v)?,
                    None => 0,
                };
                powers.insert(actor.to_string(), (active, idle));
            }
        }
    }

    let mut builder = SdfGraphBuilder::new(name);
    // (actor name, port name) -> rate
    let mut port_rates: HashMap<(String, String), u64> = HashMap::new();
    let mut actor_ids = HashMap::new();

    for actor_el in sdf.find_all("actor") {
        let actor_name = req_attr(actor_el, "name")?;
        let time = exec_times.get(actor_name).copied().unwrap_or(1);
        let id = match powers.get(actor_name).copied() {
            Some((active, idle)) => builder.actor_with_power(actor_name, time, active, idle)?,
            None => builder.actor(actor_name, time),
        };
        actor_ids.insert(actor_name.to_string(), id);
        for port in actor_el.find_all("port") {
            let pname = req_attr(port, "name")?;
            let rate = req_attr(port, "rate")?;
            let rate = parse_u64(port, "rate", rate)?;
            port_rates.insert((actor_name.to_string(), pname.to_string()), rate);
        }
    }

    for ch in sdf.find_all("channel") {
        let cname = req_attr(ch, "name")?;
        let src = req_attr(ch, "srcActor")?;
        let dst = req_attr(ch, "dstActor")?;
        let src_id = *actor_ids
            .get(src)
            .ok_or_else(|| missing(format!("actor {src:?} referenced by channel {cname:?}")))?;
        let dst_id = *actor_ids
            .get(dst)
            .ok_or_else(|| missing(format!("actor {dst:?} referenced by channel {cname:?}")))?;

        let prod = match (ch.attribute("srcRate"), ch.attribute("srcPort")) {
            (Some(r), _) => parse_u64(ch, "srcRate", r)?,
            (None, Some(p)) => *port_rates
                .get(&(src.to_string(), p.to_string()))
                .ok_or_else(|| missing(format!("port {p:?} on actor {src:?}")))?,
            (None, None) => {
                return Err(missing(format!("srcRate or srcPort on channel {cname:?}")))
            }
        };
        let cons = match (ch.attribute("dstRate"), ch.attribute("dstPort")) {
            (Some(r), _) => parse_u64(ch, "dstRate", r)?,
            (None, Some(p)) => *port_rates
                .get(&(dst.to_string(), p.to_string()))
                .ok_or_else(|| missing(format!("port {p:?} on actor {dst:?}")))?,
            (None, None) => {
                return Err(missing(format!("dstRate or dstPort on channel {cname:?}")))
            }
        };
        let tokens = match ch.attribute("initialTokens") {
            Some(t) => parse_u64(ch, "initialTokens", t)?,
            None => 0,
        };
        builder.channel_with_tokens(cname, src_id, prod, dst_id, cons, tokens)?;
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SDF3_STYLE: &str = r#"<?xml version="1.0"?>
<sdf3 type="sdf" version="1.0">
  <applicationGraph name="example">
    <sdf name="example" type="Example">
      <actor name="a" type="A">
        <port name="out0" type="out" rate="2"/>
      </actor>
      <actor name="b" type="B">
        <port name="in0" type="in" rate="3"/>
        <port name="out0" type="out" rate="1"/>
      </actor>
      <actor name="c" type="C">
        <port name="in0" type="in" rate="2"/>
      </actor>
      <channel name="alpha" srcActor="a" srcPort="out0" dstActor="b" dstPort="in0"/>
      <channel name="beta" srcActor="b" srcPort="out0" dstActor="c" dstPort="in0" initialTokens="0"/>
    </sdf>
    <sdfProperties>
      <actorProperties actor="a">
        <processor type="arm" default="true"><executionTime time="1"/></processor>
      </actorProperties>
      <actorProperties actor="b">
        <processor type="arm" default="true"><executionTime time="2"/></processor>
      </actorProperties>
      <actorProperties actor="c">
        <processor type="arm" default="true"><executionTime time="2"/></processor>
      </actorProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#;

    #[test]
    fn reads_sdf3_style() {
        let g = read_sdf_xml(SDF3_STYLE).unwrap();
        assert_eq!(g.name(), "example");
        assert_eq!(g.num_actors(), 3);
        assert_eq!(g.num_channels(), 2);
        let alpha = g.channel_by_name("alpha").unwrap();
        assert_eq!(g.channel(alpha).production(), 2);
        assert_eq!(g.channel(alpha).consumption(), 3);
        let b = g.actor_by_name("b").unwrap();
        assert_eq!(g.actor(b).execution_time(), 2);
    }

    #[test]
    fn reads_compact_style() {
        let g = read_sdf_xml(
            r#"<sdf3><applicationGraph name="tiny"><sdf name="tiny">
                 <actor name="x"/><actor name="y"/>
                 <channel name="c" srcActor="x" srcRate="4" dstActor="y" dstRate="2" initialTokens="1"/>
               </sdf></applicationGraph></sdf3>"#,
        )
        .unwrap();
        assert_eq!(g.num_actors(), 2);
        let c = g.channel_by_name("c").unwrap();
        assert_eq!(g.channel(c).production(), 4);
        assert_eq!(g.channel(c).consumption(), 2);
        assert_eq!(g.channel(c).initial_tokens(), 1);
        // Execution time defaults to 1.
        assert_eq!(g.actor(g.actor_by_name("x").unwrap()).execution_time(), 1);
    }

    #[test]
    fn reads_power_annotations() {
        let g = read_sdf_xml(
            r#"<sdf3><applicationGraph name="g"><sdf name="g">
                 <actor name="x"/><actor name="y"/>
                 <channel name="c" srcActor="x" srcRate="1" dstActor="y" dstRate="1"/>
               </sdf>
               <sdfProperties>
                 <actorProperties actor="x">
                   <processor type="default" default="true"><executionTime time="2"/></processor>
                   <power active="9" idle="4"/>
                 </actorProperties>
               </sdfProperties>
               </applicationGraph></sdf3>"#,
        )
        .unwrap();
        let x = g.actor_by_name("x").unwrap();
        assert_eq!(g.actor(x).execution_time(), 2);
        assert_eq!(g.actor(x).active_power(), 9);
        assert_eq!(g.actor(x).idle_power(), 4);
        // Unannotated actors default to zero power.
        let y = g.actor_by_name("y").unwrap();
        assert_eq!(g.actor(y).active_power(), 0);
        assert_eq!(g.actor(y).idle_power(), 0);
    }

    #[test]
    fn inverted_power_annotation_propagates_graph_error() {
        let bad = r#"<sdf3><applicationGraph name="g"><sdf name="g">
               <actor name="x"/>
             </sdf>
             <sdfProperties>
               <actorProperties actor="x"><power active="1" idle="2"/></actorProperties>
             </sdfProperties>
             </applicationGraph></sdf3>"#;
        assert!(matches!(read_sdf_xml(bad), Err(SdfXmlError::Graph(_))));
    }

    #[test]
    fn missing_pieces_reported() {
        assert!(matches!(
            read_sdf_xml("<sdf3/>"),
            Err(SdfXmlError::Missing { .. })
        ));
        let no_rate = r#"<sdf3><applicationGraph name="g"><sdf name="g">
              <actor name="x"/><actor name="y"/>
              <channel name="c" srcActor="x" dstActor="y" dstRate="1"/>
            </sdf></applicationGraph></sdf3>"#;
        assert!(matches!(
            read_sdf_xml(no_rate),
            Err(SdfXmlError::Missing { .. })
        ));
        let bad_actor = r#"<sdf3><applicationGraph name="g"><sdf name="g">
              <actor name="x"/>
              <channel name="c" srcActor="x" srcRate="1" dstActor="ghost" dstRate="1"/>
            </sdf></applicationGraph></sdf3>"#;
        assert!(matches!(
            read_sdf_xml(bad_actor),
            Err(SdfXmlError::Missing { .. })
        ));
    }

    #[test]
    fn bad_numbers_reported() {
        let bad = r#"<sdf3><applicationGraph name="g"><sdf name="g">
              <actor name="x"/><actor name="y"/>
              <channel name="c" srcActor="x" srcRate="lots" dstActor="y" dstRate="1"/>
            </sdf></applicationGraph></sdf3>"#;
        assert!(matches!(
            read_sdf_xml(bad),
            Err(SdfXmlError::Invalid { .. })
        ));
    }

    #[test]
    fn zero_rate_propagates_graph_error() {
        let bad = r#"<sdf3><applicationGraph name="g"><sdf name="g">
              <actor name="x"/><actor name="y"/>
              <channel name="c" srcActor="x" srcRate="0" dstActor="y" dstRate="1"/>
            </sdf></applicationGraph></sdf3>"#;
        assert!(matches!(read_sdf_xml(bad), Err(SdfXmlError::Graph(_))));
    }

    #[test]
    fn parse_error_carries_location() {
        match read_sdf_xml("<sdf3><oops</sdf3>") {
            Err(SdfXmlError::Parse(e)) => assert!(e.line() >= 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
