//! A small, dependency-free XML subset parser.

use super::tree::XmlElement;
use core::fmt;

/// Error raised while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    message: String,
    line: usize,
    column: usize,
}

impl XmlError {
    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Cursor<'a> {
        Cursor {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            message: message.into(),
            line,
            column: col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, s: &str) -> Result<(), XmlError> {
        while !self.starts_with(s) {
            if self.bump().is_none() {
                return Err(self.error(format!("unexpected end of input, expected {s:?}")));
            }
        }
        self.pos += s.len();
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected a quoted attribute value")),
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return decode_entities(&raw).map_err(|m| self.error(m));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }
}

fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        match &rest[..=end] {
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&amp;" => out.push('&'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => {
                if let Some(num) = other.strip_prefix("&#x").and_then(|t| t.strip_suffix(';')) {
                    let cp = u32::from_str_radix(num, 16)
                        .map_err(|_| format!("bad character reference {other:?}"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point {other:?}"))?,
                    );
                } else if let Some(num) = other.strip_prefix("&#").and_then(|t| t.strip_suffix(';'))
                {
                    let cp: u32 = num
                        .parse()
                        .map_err(|_| format!("bad character reference {other:?}"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point {other:?}"))?,
                    );
                } else {
                    return Err(format!("unknown entity {other:?}"));
                }
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parses an XML document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] (with line/column) on malformed input: mismatched
/// tags, unterminated strings/comments, missing root, trailing content.
///
/// # Examples
///
/// ```
/// let root = buffy_graph::xml::parse(r#"<?xml version="1.0"?>
///   <sdf3 type="sdf"><applicationGraph name="g"/></sdf3>"#).unwrap();
/// assert_eq!(root.name, "sdf3");
/// assert_eq!(root.find("applicationGraph").unwrap().attribute("name"), Some("g"));
/// ```
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut c = Cursor::new(input);
    skip_misc(&mut c)?;
    if c.peek() != Some(b'<') {
        return Err(c.error("expected root element"));
    }
    let root = parse_element(&mut c, 0)?;
    skip_misc(&mut c)?;
    if c.peek().is_some() {
        return Err(c.error("unexpected content after root element"));
    }
    Ok(root)
}

/// Skips whitespace, comments and the XML declaration.
fn skip_misc(c: &mut Cursor<'_>) -> Result<(), XmlError> {
    loop {
        c.skip_whitespace();
        if c.eat("<?") {
            c.skip_until("?>")?;
        } else if c.eat("<!--") {
            c.skip_until("-->")?;
        } else if c.starts_with("<!DOCTYPE") {
            c.skip_until(">")?;
        } else {
            return Ok(());
        }
    }
}

/// Maximum element nesting depth. The parser is recursive, so adversarial
/// nesting must become a clean error well before the call stack runs out;
/// real SDF3 documents are a handful of levels deep.
const MAX_DEPTH: usize = 256;

fn parse_element(c: &mut Cursor<'_>, depth: usize) -> Result<XmlElement, XmlError> {
    if depth >= MAX_DEPTH {
        return Err(c.error(format!("element nesting exceeds {MAX_DEPTH} levels")));
    }
    if !c.eat("<") {
        return Err(c.error("expected '<'"));
    }
    let name = c.read_name()?;
    let mut el = XmlElement::new(name.clone());
    loop {
        c.skip_whitespace();
        match c.peek() {
            Some(b'/') => {
                c.bump();
                if !c.eat(">") {
                    return Err(c.error("expected '>' after '/'"));
                }
                return Ok(el);
            }
            Some(b'>') => {
                c.bump();
                break;
            }
            Some(_) => {
                let key = c.read_name()?;
                c.skip_whitespace();
                if !c.eat("=") {
                    return Err(c.error(format!("expected '=' after attribute {key:?}")));
                }
                c.skip_whitespace();
                let value = c.read_quoted()?;
                el.attributes.push((key, value));
            }
            None => return Err(c.error("unexpected end of input in start tag")),
        }
    }
    // Content until the matching close tag.
    loop {
        let text_start = c.pos;
        while !matches!(c.peek(), Some(b'<') | None) {
            c.pos += 1;
        }
        if c.pos > text_start {
            let raw = String::from_utf8_lossy(&c.input[text_start..c.pos]).into_owned();
            // Whitespace-only runs between elements are ignorable
            // formatting, not content.
            if !raw.trim().is_empty() {
                el.text
                    .push_str(&decode_entities(&raw).map_err(|m| c.error(m))?);
            }
        }
        if c.peek().is_none() {
            return Err(c.error(format!("unterminated element <{name}>")));
        }
        if c.eat("<!--") {
            c.skip_until("-->")?;
        } else if c.eat("<![CDATA[") {
            let start = c.pos;
            c.skip_until("]]>")?;
            el.text
                .push_str(&String::from_utf8_lossy(&c.input[start..c.pos - 3]));
        } else if c.starts_with("</") {
            c.pos += 2;
            let close = c.read_name()?;
            if close != name {
                return Err(c.error(format!(
                    "mismatched close tag </{close}>, expected </{name}>"
                )));
            }
            c.skip_whitespace();
            if !c.eat(">") {
                return Err(c.error("expected '>' in close tag"));
            }
            return Ok(el);
        } else {
            el.children.push(parse_element(c, depth + 1)?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let root = parse(
            r#"<?xml version="1.0" encoding="UTF-8"?>
            <!-- a comment -->
            <a x="1" y='two'>
              <b/>
              <c k="&lt;&amp;&gt;">text &amp; more</c>
            </a>"#,
        )
        .unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.attribute("x"), Some("1"));
        assert_eq!(root.attribute("y"), Some("two"));
        assert_eq!(root.children.len(), 2);
        let c = root.find("c").unwrap();
        assert_eq!(c.attribute("k"), Some("<&>"));
        assert_eq!(c.text.trim(), "text & more");
    }

    #[test]
    fn numeric_entities() {
        let root = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(root.text, "AB");
    }

    #[test]
    fn cdata() {
        let root = parse("<a><![CDATA[1 < 2 & 3]]></a>").unwrap();
        assert_eq!(root.text, "1 < 2 & 3");
    }

    #[test]
    fn comments_inside_elements() {
        let root = parse("<a><!-- hi --><b/></a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn errors_report_position() {
        let err = parse("<a>\n  <b></c></a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("mismatched"));
        assert!(err.column() > 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("hello").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a x=\"&unknown;\"/>").is_err());
        assert!(parse("<a x=\"unterminated/>").is_err());
    }

    #[test]
    fn nesting_deeper_than_the_cap_is_rejected() {
        let mut doc = String::new();
        for _ in 0..MAX_DEPTH + 1 {
            doc.push_str("<a>");
        }
        for _ in 0..MAX_DEPTH + 1 {
            doc.push_str("</a>");
        }
        let err = parse(&doc).unwrap_err();
        assert!(err.to_string().contains("nesting"));
        // One level under the cap still parses.
        let mut ok = String::new();
        for _ in 0..MAX_DEPTH - 1 {
            ok.push_str("<a>");
        }
        for _ in 0..MAX_DEPTH - 1 {
            ok.push_str("</a>");
        }
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn doctype_skipped() {
        let root = parse("<!DOCTYPE sdf3><a/>").unwrap();
        assert_eq!(root.name, "a");
    }

    #[test]
    fn roundtrip_through_serializer() {
        let text = r#"<sdf3 version="1.0"><g name="x"><n a="1"/><n a="2"/></g></sdf3>"#;
        let root = parse(text).unwrap();
        let again = parse(&root.to_xml_string()).unwrap();
        assert_eq!(root, again);
    }
}
