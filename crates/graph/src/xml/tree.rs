//! XML document tree.

use core::fmt;

/// An XML element: name, attributes, child elements and accumulated text.
///
/// Attribute order is preserved. Text content from all text nodes directly
/// below the element is concatenated into [`text`](Self::text).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated text content (entity-decoded, whitespace preserved).
    pub text: String,
}

impl XmlElement {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            ..XmlElement::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl fmt::Display) -> XmlElement {
        self.attributes.push((key.into(), value.to_string()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlElement) -> XmlElement {
        self.children.push(child);
        self
    }

    /// The value of attribute `key`, if present.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first child element with tag `name`.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with tag `name`, in document order.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Depth-first search for the first descendant (including self) with
    /// tag `name`.
    pub fn find_descendant(&self, name: &str) -> Option<&XmlElement> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find_descendant(name))
    }

    /// Serializes the element (and subtree) as indented XML.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_text(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.trim().is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        let trimmed = self.text.trim();
        if !trimmed.is_empty() {
            out.push_str(&escape_text(trimmed));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_indented(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escapes the five predefined XML entities in `s`.
///
/// ```
/// assert_eq!(buffy_graph::xml::escape_text("a<b&c"), "a&lt;b&amp;c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let doc = XmlElement::new("root")
            .attr("version", "1.0")
            .child(XmlElement::new("a").attr("x", 1))
            .child(XmlElement::new("b"))
            .child(XmlElement::new("a").attr("x", 2));
        assert_eq!(doc.attribute("version"), Some("1.0"));
        assert_eq!(doc.attribute("missing"), None);
        assert_eq!(doc.find("a").unwrap().attribute("x"), Some("1"));
        assert_eq!(doc.find_all("a").count(), 2);
        assert!(doc.find("zzz").is_none());
        assert_eq!(doc.find_descendant("b").unwrap().name, "b");
        assert!(doc.find_descendant("zzz").is_none());
    }

    #[test]
    fn serialization_escapes_and_indents() {
        let doc = XmlElement::new("r").child(XmlElement::new("c").attr("v", "a<b\"c"));
        let s = doc.to_xml_string();
        assert!(s.contains("&lt;"));
        assert!(s.contains("&quot;"));
        assert!(s.contains("  <c"));
    }

    #[test]
    fn text_content_serialized() {
        let mut e = XmlElement::new("t");
        e.text = "hello & goodbye".into();
        let s = e.to_xml_string();
        assert!(s.contains("hello &amp; goodbye"));
        assert!(s.starts_with("<t>"));
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(XmlElement::new("e").to_xml_string(), "<e/>\n");
    }
}
