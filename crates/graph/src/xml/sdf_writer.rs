//! Writing SDF graphs as SDF3-style XML.

use super::tree::XmlElement;
use crate::graph::SdfGraph;

/// Serializes an SDF graph as SDF3-style XML text.
///
/// The output declares one `in`/`out` port pair per channel (named after
/// the channel) and records execution times under `<sdfProperties>`; it
/// round-trips through [`read_sdf_xml`](super::read_sdf_xml).
pub fn write_sdf_xml(graph: &SdfGraph) -> String {
    let mut sdf = XmlElement::new("sdf")
        .attr("name", graph.name())
        .attr("type", graph.name());

    for (aid, actor) in graph.actors() {
        let mut el = XmlElement::new("actor")
            .attr("name", actor.name())
            .attr("type", actor.name());
        for &cid in graph.output_channels(aid) {
            let ch = graph.channel(cid);
            el = el.child(
                XmlElement::new("port")
                    .attr("name", format!("out_{}", ch.name()))
                    .attr("type", "out")
                    .attr("rate", ch.production()),
            );
        }
        for &cid in graph.input_channels(aid) {
            let ch = graph.channel(cid);
            el = el.child(
                XmlElement::new("port")
                    .attr("name", format!("in_{}", ch.name()))
                    .attr("type", "in")
                    .attr("rate", ch.consumption()),
            );
        }
        sdf = sdf.child(el);
    }

    for (_, ch) in graph.channels() {
        let mut el = XmlElement::new("channel")
            .attr("name", ch.name())
            .attr("srcActor", graph.actor(ch.source()).name())
            .attr("srcPort", format!("out_{}", ch.name()))
            .attr("dstActor", graph.actor(ch.target()).name())
            .attr("dstPort", format!("in_{}", ch.name()));
        if ch.initial_tokens() > 0 {
            el = el.attr("initialTokens", ch.initial_tokens());
        }
        sdf = sdf.child(el);
    }

    let mut props = XmlElement::new("sdfProperties");
    for (_, actor) in graph.actors() {
        let mut ap = XmlElement::new("actorProperties")
            .attr("actor", actor.name())
            .child(
                XmlElement::new("processor")
                    .attr("type", "default")
                    .attr("default", "true")
                    .child(XmlElement::new("executionTime").attr("time", actor.execution_time())),
            );
        // Only annotated actors get a <power> element, keeping the output
        // byte-identical for graphs without a power model.
        if actor.active_power() > 0 || actor.idle_power() > 0 {
            ap = ap.child(
                XmlElement::new("power")
                    .attr("active", actor.active_power())
                    .attr("idle", actor.idle_power()),
            );
        }
        props = props.child(ap);
    }

    let root = XmlElement::new("sdf3")
        .attr("type", "sdf")
        .attr("version", "1.0")
        .child(
            XmlElement::new("applicationGraph")
                .attr("name", graph.name())
                .child(sdf)
                .child(props),
        );

    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&root.to_xml_string());
    out
}

#[cfg(test)]
mod tests {
    use super::super::read_sdf_xml;
    use super::*;
    use crate::graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel_with_tokens("beta", bb, 1, c, 2, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = example();
        let text = write_sdf_xml(&g);
        let back = read_sdf_xml(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn output_contains_expected_structure() {
        let text = write_sdf_xml(&example());
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("<applicationGraph name=\"example\">"));
        assert!(text.contains("srcActor=\"a\""));
        assert!(text.contains("initialTokens=\"1\""));
        assert!(text.contains("executionTime"));
    }

    #[test]
    fn roundtrip_preserves_power_annotations() {
        let mut b = SdfGraph::builder("powered");
        let x = b.actor_with_power("x", 1, 12, 5).unwrap();
        let y = b.actor("y", 2);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let text = write_sdf_xml(&g);
        assert!(text.contains("<power active=\"12\" idle=\"5\"/>"));
        // Unannotated actors stay free of <power> elements.
        assert_eq!(text.matches("<power ").count(), 1);
        let back = read_sdf_xml(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_self_loop_and_multichannel() {
        let mut b = SdfGraph::builder("loopy");
        let x = b.actor("x", 3);
        let y = b.actor("y", 0);
        b.channel_with_tokens("self", x, 1, x, 1, 1).unwrap();
        b.channel("c1", x, 2, y, 5).unwrap();
        b.channel("c2", x, 7, y, 1).unwrap();
        let g = b.build().unwrap();
        let back = read_sdf_xml(&write_sdf_xml(&g)).unwrap();
        assert_eq!(g, back);
    }
}
