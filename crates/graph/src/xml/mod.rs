//! SDF3-compatible XML input/output.
//!
//! The paper's `buffy` tool "takes an XML description of an SDF graph as
//! input" (§10). This module provides a dependency-free XML subset parser
//! ([`parse`]), a document tree ([`XmlElement`]), and readers/writers for
//! the SDF3 application-graph dialect ([`read_sdf_xml`], [`write_sdf_xml`]).
//!
//! The parser supports what SDF3 graph files use: declarations, comments,
//! nested elements, attributes with single or double quotes, text content
//! and the five predefined entities. It does not support DTDs, processing
//! instructions beyond the XML declaration, or namespaces.
//!
//! # Examples
//!
//! ```
//! use buffy_graph::xml::{read_sdf_xml, write_sdf_xml};
//! use buffy_graph::SdfGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SdfGraph::builder("tiny");
//! let x = b.actor("x", 1);
//! let y = b.actor("y", 2);
//! b.channel_with_tokens("c", x, 2, y, 1, 1)?;
//! let g = b.build()?;
//!
//! let text = write_sdf_xml(&g);
//! let back = read_sdf_xml(&text)?;
//! assert_eq!(g, back);
//! # Ok(())
//! # }
//! ```

mod parse;
mod sdf_reader;
mod sdf_writer;
mod tree;

pub use parse::{parse, XmlError};
pub use sdf_reader::{read_sdf_xml, SdfXmlError};
pub use sdf_writer::write_sdf_xml;
pub use tree::{escape_text, XmlElement};
