//! Typed indices for actors and channels.
//!
//! Actors and channels are stored in dense vectors inside an
//! [`SdfGraph`](crate::SdfGraph); these newtypes keep the two index spaces
//! apart at compile time ([C-NEWTYPE]).

use core::fmt;

/// Index of an actor within an [`SdfGraph`](crate::SdfGraph).
///
/// ```
/// use buffy_graph::ActorId;
/// let a = ActorId::new(3);
/// assert_eq!(a.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Creates an actor id from a raw index.
    pub const fn new(index: usize) -> ActorId {
        ActorId(index as u32)
    }

    /// The raw index of this actor.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ActorId({})", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Index of a channel within an [`SdfGraph`](crate::SdfGraph).
///
/// ```
/// use buffy_graph::ChannelId;
/// let c = ChannelId::new(0);
/// assert_eq!(c.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel id from a raw index.
    pub const fn new(index: usize) -> ChannelId {
        ChannelId(index as u32)
    }

    /// The raw index of this channel.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChannelId({})", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        for i in [0usize, 1, 17, 1000] {
            assert_eq!(ActorId::new(i).index(), i);
            assert_eq!(ChannelId::new(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ActorId::new(1) < ActorId::new(2));
        assert!(ChannelId::new(0) < ChannelId::new(5));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(ActorId::new(4).to_string(), "a4");
        assert_eq!(ChannelId::new(7).to_string(), "c7");
        assert_eq!(format!("{:?}", ActorId::new(4)), "ActorId(4)");
        assert_eq!(format!("{:?}", ChannelId::new(7)), "ChannelId(7)");
    }
}
