//! Golden-file tests: the exporters' output is locked byte-for-byte so
//! format drift is a deliberate, reviewed change.

use buffy_telemetry::{
    labeled, names, render_chrome_trace, render_prometheus, Recorder, TraceEvent, TracePhase,
};

#[test]
fn prometheus_rendering_matches_golden() {
    let r = Recorder::new();
    r.counter(
        "buffy_evals_short_circuited_total",
        "Per-size sweeps cut short by the monotonicity ceiling.",
    )
    .add(4);
    r.counter(
        &labeled(names::SHARD_HITS, "shard", 0),
        "Memo-cache hits per shard.",
    )
    .add(7);
    r.counter(
        &labeled(names::SHARD_HITS, "shard", 1),
        "Memo-cache hits per shard.",
    )
    .add(2);
    r.gauge(
        names::INTERNER_OCCUPANCY_MAX,
        "Largest interner occupancy seen.",
    )
    .record_max(1000);
    let h = r.histogram(names::EVAL_LATENCY_NS, "Evaluation latency in nanoseconds.");
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(1024);
    let rendered = render_prometheus(&r.snapshot());
    assert_eq!(rendered, include_str!("golden/prometheus.txt"));
}

#[test]
fn chrome_trace_rendering_matches_golden() {
    // Events are constructed directly (not via a live recorder) so the
    // timestamps and thread ids are fixed.
    let events = vec![
        TraceEvent {
            name: "phase:bounds".into(),
            ph: TracePhase::Complete,
            ts_us: 0,
            dur_us: 1500,
            tid: 1,
        },
        TraceEvent {
            name: "eval \"⟨4, 2⟩\"".into(),
            ph: TracePhase::Complete,
            ts_us: 1500,
            dur_us: 42,
            tid: 2,
        },
        TraceEvent {
            name: "pareto".into(),
            ph: TracePhase::Instant,
            ts_us: 1542,
            dur_us: 0,
            tid: 2,
        },
    ];
    let rendered = render_chrome_trace(&events);
    assert_eq!(rendered, include_str!("golden/chrome_trace.json"));
    // The golden document carries the track-naming metadata: one
    // process_name plus one thread_name per distinct tid (1 and 2).
    assert_eq!(rendered.matches("\"ph\":\"M\"").count(), 3);
}
