//! The metric registry and trace buffer.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::names;
use crate::trace::{current_tid, TraceEvent, TracePhase};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cap on buffered trace events: a runaway run degrades to a truncated
/// trace (with the drop count surfaced as a counter) rather than
/// unbounded memory growth.
const MAX_TRACE_EVENTS: usize = 1 << 18;

/// A metric registry plus trace-event buffer.
///
/// Metric handles are get-or-registered by name — registration takes a
/// short `Mutex`, but instrumented code does it once per run and then
/// records through the returned `Arc`s lock-free. Names may carry one
/// Prometheus-style label, e.g. `buffy_memo_shard_hits_total{shard="3"}`
/// (see [`labeled`](crate::labeled)); the exporters group such names
/// into one metric family.
///
/// `BTreeMap` registries make every export deterministic in *structure*
/// (ordering, set of names); the recorded values are as non-deterministic
/// as the wall clock they measure.
#[derive(Debug)]
pub struct Recorder {
    start: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Help text per metric *family* (name up to any `{`).
    help: Mutex<BTreeMap<String, String>>,
    trace: Mutex<Vec<TraceEvent>>,
    trace_dropped: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder; its creation instant is the zero point
    /// of every trace timestamp.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            help: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(Vec::new()),
            trace_dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the recorder was created.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn register_help(&self, name: &str, help: &str) {
        let family = name.split('{').next().unwrap_or(name);
        let mut map = self.help.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(family.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Returns the counter registered under `name`, creating it if
    /// needed. Fetch once per run; record through the handle.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register_help(name, help);
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register_help(name, help);
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the histogram registered under `name`, creating it if
    /// needed.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register_help(name, help);
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    fn push_trace(&self, event: TraceEvent) {
        let mut buf = self.trace.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= MAX_TRACE_EVENTS {
            drop(buf);
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.push(event);
    }

    /// Records a completed span at an explicit start timestamp
    /// (microseconds since recorder creation).
    pub fn trace_complete_at(&self, name: &str, ts_us: u64, dur_us: u64) {
        self.push_trace(TraceEvent {
            name: name.to_string(),
            ph: TracePhase::Complete,
            ts_us,
            dur_us,
            tid: current_tid(),
        });
    }

    /// Records an instant event at an explicit timestamp.
    pub fn trace_instant_at(&self, name: &str, ts_us: u64) {
        self.push_trace(TraceEvent {
            name: name.to_string(),
            ph: TracePhase::Instant,
            ts_us,
            dur_us: 0,
            tid: current_tid(),
        });
    }

    /// Records an instant event timestamped "now".
    pub fn trace_instant(&self, name: &str) {
        self.trace_instant_at(name, self.elapsed_us());
    }

    /// A copy of the buffered trace events, in recording order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of trace events discarded after the buffer cap.
    pub fn dropped_trace_events(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every registered metric. Taken after the
    /// instrumented run finishes it is exact; taken concurrently it is
    /// approximately consistent (each value individually atomic).
    pub fn snapshot(&self) -> Snapshot {
        let counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let mut help: BTreeMap<String, String> =
            self.help.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut snapshot = Snapshot {
            counters,
            gauges,
            histograms,
            help: BTreeMap::new(),
        };
        // Surface trace truncation as a metric so caps are never silent.
        let dropped = self.dropped_trace_events();
        if dropped > 0 {
            help.entry(names::TRACE_DROPPED.to_string())
                .or_insert_with(|| {
                    "Trace events discarded after the in-memory buffer cap.".to_string()
                });
            snapshot
                .counters
                .insert(names::TRACE_DROPPED.to_string(), dropped);
        }
        snapshot.help = help;
        snapshot
    }

    /// Snapshot-and-render in one step: the current metric values in
    /// Prometheus text exposition format.
    ///
    /// This is the live-scrape entry point: a `/metrics` handler on
    /// another thread calls it per request while the instrumented run is
    /// still writing. Each scrape pays one fresh [`Recorder::snapshot`] —
    /// the writers only ever contend on the short registry mutexes, never
    /// on the render.
    pub fn prometheus(&self) -> String {
        crate::render_prometheus(&self.snapshot())
    }
}

/// An immutable copy of a [`Recorder`]'s metrics, keyed by full metric
/// name (including any `{label="value"}` suffix).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Help text per metric family.
    pub help: BTreeMap<String, String>,
}

impl Snapshot {
    /// Collects the values of a labelled metric family from `map` as
    /// `(label-value, value)` pairs, in name order. E.g.
    /// `family_values(&s.counters, SHARD_HITS)` yields one entry per
    /// shard.
    pub fn family_values<'a, V: Clone>(
        map: &'a BTreeMap<String, V>,
        family: &str,
    ) -> Vec<(&'a str, V)> {
        let prefix = format!("{family}{{");
        map.iter()
            .filter_map(|(name, v)| {
                let rest = name.strip_prefix(&prefix)?;
                let inner = rest.strip_suffix('}')?;
                // One label: key="value".
                let value = inner.split('=').nth(1)?.trim_matches('"');
                Some((value, v.clone()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeled;

    #[test]
    fn get_or_register_returns_the_same_handle() {
        let r = Recorder::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counters["x_total"], 3);
        assert_eq!(r.snapshot().help["x_total"], "x");
    }

    #[test]
    fn family_values_extracts_labels_in_order() {
        let r = Recorder::new();
        for shard in [2u64, 0, 11] {
            r.counter(&labeled(names::SHARD_HITS, "shard", shard), "hits")
                .add(shard + 1);
        }
        let s = r.snapshot();
        let values = Snapshot::family_values(&s.counters, names::SHARD_HITS);
        // BTreeMap order is lexicographic on the full name.
        assert_eq!(values, vec![("0", 1), ("11", 12), ("2", 3)]);
    }

    #[test]
    fn trace_buffer_caps_and_counts_drops() {
        let r = Recorder::new();
        r.trace_instant_at("i", 1);
        assert_eq!(r.trace_events().len(), 1);
        assert_eq!(r.dropped_trace_events(), 0);
        assert!(!r.snapshot().counters.contains_key(names::TRACE_DROPPED));
    }

    #[test]
    fn help_is_per_family_not_per_label() {
        let r = Recorder::new();
        r.counter(&labeled("f_total", "shard", 0), "family help");
        r.counter(&labeled("f_total", "shard", 1), "other");
        let s = r.snapshot();
        assert_eq!(s.help["f_total"], "family help");
    }
}
