//! Lock-free metric primitives: counters, gauges and log2 histograms.
//!
//! Every primitive is a set of `AtomicU64`s updated with `Relaxed`
//! ordering — recording never blocks and never fences. Snapshots are
//! taken field by field and are therefore only approximately consistent
//! while writers are active; buffy snapshots after the instrumented run
//! finishes, where they are exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1..=64) holds values in `[2^(k-1), 2^k)` — bucket 64's upper edge is
/// `u64::MAX` inclusive.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written-value (or running-maximum) instrument.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (running maximum).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2 bucket index of a value; see [`BUCKETS`] for the layout.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `k` (the value reported for the bucket
/// by percentile estimation and as the Prometheus `le` boundary).
pub(crate) fn bucket_upper_edge(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

/// A fixed-bucket log2 histogram: 65 buckets covering the full `u64`
/// range, plus a running count and sum. Recording is one `leading_zeros`
/// and three relaxed `fetch_add`s — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` at once — the fold-in path for
    /// per-thread or per-run scratch tallies.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see [`BUCKETS`] for the layout.
    pub counts: [u64; BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) as the inclusive
    /// upper edge of the bucket containing the target rank — a
    /// conservative (never under-reporting) estimate. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return bucket_upper_edge(k);
            }
        }
        u64::MAX
    }

    /// Median estimate (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the observed values (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Index of the highest non-empty bucket, if any observation exists.
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .filter(|_| self.count > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }

    #[test]
    fn zero_and_max_are_representable() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[64], 1);
        assert_eq!(s.count, 2);
        // The sum wraps (documented); 0 + MAX fits exactly.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // Values 1..=100 span buckets 1..=7; the median rank (50) lands
        // in bucket 6 ([32,64)), whose upper edge is 63.
        assert_eq!(s.p50(), 63);
        assert_eq!(s.p99(), 127);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 127);
        assert_eq!(s.mean(), 50);
        assert_eq!(s.max_bucket(), Some(7));
    }

    #[test]
    fn record_n_folds_scratch_counts() {
        let h = Histogram::new();
        h.record_n(8, 5);
        h.record_n(8, 0); // no-op
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 40);
        assert_eq!(s.counts[4], 5);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max_bucket(), None);
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }
}
