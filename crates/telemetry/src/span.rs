//! RAII timing spans.

use crate::metrics::Histogram;
use crate::recorder::Recorder;
use crate::{labeled, names};
use std::sync::Arc;
use std::time::Instant;

/// An RAII timing guard: created at the start of a region, it records a
/// Chrome-trace `Complete` event and (for phase spans) one sample in the
/// per-phase duration histogram when dropped.
///
/// All timing state lives on the guard itself — the owning thread's
/// stack — so an open span costs nothing shareable; only the final
/// aggregation on drop touches the recorder.
#[derive(Debug)]
pub struct Span {
    recorder: Arc<Recorder>,
    name: String,
    histogram: Option<Arc<Histogram>>,
    start: Instant,
    start_us: u64,
}

impl Recorder {
    /// Opens a plain trace span named `name`.
    pub fn span(self: &Arc<Self>, name: impl Into<String>) -> Span {
        Span {
            recorder: Arc::clone(self),
            name: name.into(),
            histogram: None,
            start: Instant::now(),
            start_us: self.elapsed_us(),
        }
    }

    /// Opens a search-phase span: the trace event is named
    /// `phase:<phase>` and the duration also lands in the
    /// [`PHASE_NS`](names::PHASE_NS) histogram labelled with the phase.
    pub fn phase_span(self: &Arc<Self>, phase: &str) -> Span {
        let histogram = self.histogram(
            &labeled(names::PHASE_NS, "phase", phase),
            "Wall time spent in each search phase, in nanoseconds.",
        );
        Span {
            recorder: Arc::clone(self),
            name: format!("phase:{phase}"),
            histogram: Some(histogram),
            start: Instant::now(),
            start_us: self.elapsed_us(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.recorder
            .trace_complete_at(&self.name, self.start_us, elapsed.as_micros() as u64);
        if let Some(h) = &self.histogram {
            h.record(elapsed.as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePhase;

    #[test]
    fn span_records_trace_and_phase_histogram() {
        let r = Arc::new(Recorder::new());
        {
            let _s = r.phase_span("bounds");
        }
        {
            let _s = r.span("eval");
        }
        let events = r.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "phase:bounds");
        assert_eq!(events[0].ph, TracePhase::Complete);
        assert_eq!(events[1].name, "eval");
        let s = r.snapshot();
        let key = labeled(names::PHASE_NS, "phase", "bounds");
        assert_eq!(s.histograms[&key].count, 1);
    }
}
