//! Prometheus text-exposition exporter.
//!
//! Renders a [`Snapshot`] in the [text exposition format] suitable for
//! the node-exporter textfile collector: `# HELP` / `# TYPE` headers per
//! metric family, labelled samples, and cumulative `_bucket`/`_sum`/
//! `_count` series for histograms with power-of-two `le` boundaries.
//!
//! [text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{bucket_upper_edge, HistogramSnapshot};
use crate::recorder::Snapshot;
use std::fmt::Write as _;

/// Splits a full metric name into `(family, Some(labels))` where
/// `labels` is the `key="value"` part without braces.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// Appends `# HELP` / `# TYPE` headers once per family.
fn header(out: &mut String, last_family: &mut String, family: &str, kind: &str, snap: &Snapshot) {
    if family == last_family {
        return;
    }
    last_family.clear();
    last_family.push_str(family);
    if let Some(help) = snap.help.get(family) {
        let _ = writeln!(out, "# HELP {family} {help}");
    }
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// Formats a sample name with `extra` merged into any existing label set.
fn with_label(family: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut inner = String::new();
    if let Some(l) = labels {
        inner.push_str(l);
    }
    if let Some(e) = extra {
        if !inner.is_empty() {
            inner.push(',');
        }
        inner.push_str(e);
    }
    if inner.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{inner}}}")
    }
}

fn render_histogram(out: &mut String, family: &str, labels: Option<&str>, h: &HistogramSnapshot) {
    // Cumulative buckets up to the highest non-empty one; buckets above
    // it add no information (the +Inf bucket closes the series).
    let top = h.max_bucket().unwrap_or(0);
    let mut cumulative = 0u64;
    for k in 0..=top {
        cumulative += h.counts[k];
        let le = bucket_upper_edge(k);
        let name = with_label(family, "_bucket", labels, Some(&format!("le=\"{le}\"")));
        let _ = writeln!(out, "{name} {cumulative}");
    }
    let name = with_label(family, "_bucket", labels, Some("le=\"+Inf\""));
    let _ = writeln!(out, "{name} {}", h.count);
    let _ = writeln!(
        out,
        "{} {}",
        with_label(family, "_sum", labels, None),
        h.sum
    );
    let _ = writeln!(
        out,
        "{} {}",
        with_label(family, "_count", labels, None),
        h.count
    );
}

/// Renders `snapshot` as a Prometheus textfile. Deterministic in
/// structure: families and labelled samples appear in lexicographic
/// name order.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, value) in &snapshot.counters {
        let (family, labels) = split_name(name);
        header(&mut out, &mut last_family, family, "counter", snapshot);
        let _ = writeln!(out, "{} {value}", with_label(family, "", labels, None));
    }
    for (name, value) in &snapshot.gauges {
        let (family, labels) = split_name(name);
        header(&mut out, &mut last_family, family, "gauge", snapshot);
        let _ = writeln!(out, "{} {value}", with_label(family, "", labels, None));
    }
    for (name, h) in &snapshot.histograms {
        let (family, labels) = split_name(name);
        header(&mut out, &mut last_family, family, "histogram", snapshot);
        render_histogram(&mut out, family, labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::{labeled, names};

    #[test]
    fn families_get_one_header_and_labels_merge() {
        let r = Recorder::new();
        r.counter(&labeled(names::SHARD_HITS, "shard", 0), "Hits per shard.")
            .add(3);
        r.counter(&labeled(names::SHARD_HITS, "shard", 1), "Hits per shard.")
            .add(5);
        let text = render_prometheus(&r.snapshot());
        assert_eq!(
            text.matches("# TYPE buffy_memo_shard_hits_total counter")
                .count(),
            1
        );
        assert!(text.contains("buffy_memo_shard_hits_total{shard=\"0\"} 3\n"));
        assert!(text.contains("buffy_memo_shard_hits_total{shard=\"1\"} 5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let r = Recorder::new();
        let h = r.histogram("lat_ns", "Latency.");
        h.record(0);
        h.record(1);
        h.record(3);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 4\n"));
        assert!(text.contains("lat_ns_count 3\n"));
    }

    #[test]
    fn labelled_histogram_merges_le_into_labels() {
        let r = Recorder::new();
        r.histogram(&labeled(names::PHASE_NS, "phase", "bounds"), "Phase time.")
            .record(2);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("buffy_phase_ns_bucket{phase=\"bounds\",le=\"3\"} 1\n"));
        assert!(text.contains("buffy_phase_ns_sum{phase=\"bounds\"} 2\n"));
        assert!(text.contains("buffy_phase_ns_count{phase=\"bounds\"} 1\n"));
    }
}
