//! # buffy-telemetry
//!
//! A zero-overhead metrics and profiling subsystem for buffy-rs.
//!
//! The exploration and analysis crates are instrumented with counters,
//! gauges, log2 histograms and timing spans. All of it is *observation
//! only*: recording never takes a lock on a hot path (every primitive is
//! a bare [`AtomicU64`](std::sync::atomic::AtomicU64) updated with
//! `Relaxed` ordering), and none of it runs at all unless a [`Recorder`]
//! has been [`install`]ed — the disabled-path cost is a single relaxed
//! atomic load and a branch per *run* (instrumented code fetches its
//! metric handles once up front, not per event).
//!
//! # Architecture
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: lock-free primitives. The
//!   histogram has 65 fixed log2 buckets — bucket 0 holds the value 0,
//!   bucket *k* (1..=64) holds values in `[2^(k-1), 2^k)` — so recording
//!   is one `leading_zeros` and three relaxed `fetch_add`s.
//! - [`Recorder`]: a registry mapping metric names to shared handles
//!   (get-or-register, `BTreeMap` for deterministic export order) plus a
//!   buffer of [`TraceEvent`]s. Registration takes a `Mutex`, but
//!   instrumented code registers once per run and then records through
//!   the returned `Arc` handles without any lock.
//! - [`Span`]: an RAII timing guard. Timing state lives on the guard
//!   itself (the owning thread's stack — thread-local scratch), and only
//!   the final aggregation into the per-phase histogram and the trace
//!   buffer touches shared state, once per span.
//! - Exporters: [`render_prometheus`] (text exposition format, suitable
//!   for the node-exporter textfile collector) and
//!   [`render_chrome_trace`] (trace-event JSON loadable in
//!   `chrome://tracing` or Perfetto).
//!
//! # Global recorder
//!
//! The recorder is process-global and swappable: [`install`] makes one
//! current, [`uninstall`] removes it, [`active`] returns the current one
//! (or `None`, cheaply, when telemetry is off). Benchmarks install a
//! fresh recorder per measured run for isolation; library code must call
//! [`active`] at the start of a unit of work and hold the `Arc` for its
//! duration, so a concurrent swap never splits one run across recorders.
//!
//! Metric *values* are non-deterministic (wall-clock durations, thread
//! interleavings), but a recorder never influences the instrumented
//! computation: exploration fronts and statistics are byte-identical
//! with or without one installed, at every thread count.
//!
//! # Example
//!
//! ```
//! use buffy_telemetry::{active, install, uninstall, Recorder};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! install(recorder.clone());
//! if let Some(r) = active() {
//!     // Real code fetches the handle once and keeps it for the run.
//!     let evals = r.counter("demo_evaluations_total", "Demo evaluations.");
//!     evals.inc();
//! }
//! let text = buffy_telemetry::render_prometheus(&recorder.snapshot());
//! assert!(text.contains("demo_evaluations_total 1"));
//! uninstall();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod chrome;
mod metrics;
mod prometheus;
mod recorder;
mod span;
mod trace;

pub use chrome::render_chrome_trace;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use prometheus::render_prometheus;
pub use recorder::{Recorder, Snapshot};
pub use span::Span;
pub use trace::{TraceEvent, TracePhase};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Fast "is telemetry on at all?" flag; checked before touching the lock.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The currently installed recorder. Swappable (unlike a `OnceLock`) so
/// benchmarks and tests can use a fresh recorder per run.
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the process-global recorder, replacing any
/// previous one. Instrumented code that calls [`active`] from now on
/// records into it.
pub fn install(recorder: Arc<Recorder>) {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(recorder);
    INSTALLED.store(true, Ordering::Release);
}

/// Removes the process-global recorder; subsequent [`active`] calls
/// return `None` at the cost of one relaxed load and a branch.
pub fn uninstall() {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    INSTALLED.store(false, Ordering::Release);
    *slot = None;
}

/// Returns the installed recorder, or `None` when telemetry is off.
///
/// The disabled path is a single relaxed atomic load and a branch — this
/// is the whole "zero overhead by default" mechanism. Call it once per
/// unit of work (an exploration, an analysis) and keep the returned
/// `Arc` plus any metric handles for the duration; do not call it per
/// event.
#[inline]
pub fn active() -> Option<Arc<Recorder>> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    RECORDER.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Metric names shared between the instrumented crates and the CLI's
/// reporting layer, so producers and consumers cannot drift apart.
pub mod names {
    /// Histogram of evaluation wall latency in nanoseconds (one sample
    /// per memoised throughput evaluation).
    pub const EVAL_LATENCY_NS: &str = "buffy_eval_latency_ns";
    /// Histogram of states stored per throughput analysis.
    pub const ANALYSIS_STATES: &str = "buffy_analysis_states";
    /// Histogram of per-analysis wall time (cycle detection) in
    /// nanoseconds.
    pub const ANALYSIS_WALL_NS: &str = "buffy_analysis_wall_ns";
    /// Histogram of state-interner probe lengths (1 = direct hit).
    pub const INTERNER_PROBE_LEN: &str = "buffy_interner_probe_len";
    /// Gauge: largest interner occupancy (entries) seen in any analysis.
    pub const INTERNER_OCCUPANCY_MAX: &str = "buffy_interner_occupancy_max";
    /// Counter family: memo-cache hits per shard (label `shard`).
    pub const SHARD_HITS: &str = "buffy_memo_shard_hits_total";
    /// Counter family: memo-cache misses per shard (label `shard`).
    pub const SHARD_MISSES: &str = "buffy_memo_shard_misses_total";
    /// Gauge family: memo-cache entries per shard (label `shard`).
    pub const SHARD_ENTRIES: &str = "buffy_memo_shard_entries";
    /// Histogram family: per-phase wall time in nanoseconds (label
    /// `phase`), fed by [`Span`](crate::Span)s.
    pub const PHASE_NS: &str = "buffy_phase_ns";
    /// Counter family: distribution sizes settled by bounds reasoning
    /// without any evaluation (label `phase`).
    pub const SIZES_PRUNED: &str = "buffy_sizes_pruned_total";
    /// Counter: per-size sweeps cut short because the monotonicity
    /// ceiling was already reached.
    pub const EVALS_SHORT_CIRCUITED: &str = "buffy_evals_short_circuited_total";
    /// Counter family: guided-search children skipped by the size upper
    /// bound or per-channel caps (label `reason`).
    pub const GUIDED_SKIPPED: &str = "buffy_guided_children_skipped_total";
    /// Counter: candidate distributions skipped because a static
    /// cycle-ratio certificate decided them without simulation.
    pub const STATIC_PRUNES: &str = "buffy_static_prunes_total";
    /// Counter: candidate distributions skipped because a previously
    /// evaluated pointwise-comparable distribution decided them.
    pub const DOMINANCE_PRUNES: &str = "buffy_dominance_prunes_total";
    /// Counter: evaluations whose analysis arena was seeded from a
    /// neighbouring distribution's eval record (capacity warm start).
    pub const WARM_STARTS: &str = "buffy_warm_start_seeded_total";
    /// Counter: reduced-state capacity reused through neighbour warm
    /// starts (sum of the seeding records' state counts).
    pub const WARM_START_STATES: &str = "buffy_warm_start_states_total";
    /// Counter: Pareto candidate points whose energy objective was
    /// computed from the actor power model.
    pub const ENERGY_POINTS: &str = "buffy_energy_points_total";
    /// Counter: trace events dropped after the in-memory buffer cap.
    pub const TRACE_DROPPED: &str = "buffy_trace_events_dropped_total";
    /// Counter: checkpoint saves that failed after exhausting the retry
    /// budget (the run continues uncheckpointed).
    pub const CHECKPOINT_SAVE_FAILURES: &str = "buffy_checkpoint_save_failures_total";
}

/// Formats `name{key="value"}` — the labelled-metric naming convention
/// understood by the exporters (a single label per metric suffices for
/// everything buffy records).
pub fn labeled(name: &str, key: &str, value: impl std::fmt::Display) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(
            labeled(names::SHARD_HITS, "shard", 3),
            "buffy_memo_shard_hits_total{shard=\"3\"}"
        );
    }

    #[test]
    fn install_swaps_and_uninstall_disables() {
        // Self-contained: no other unit test in this crate touches the
        // global slot.
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        install(a.clone());
        active().unwrap().counter("g_total", "g").inc();
        install(b.clone());
        active().unwrap().counter("g_total", "g").inc();
        uninstall();
        assert!(active().is_none());
        assert_eq!(a.snapshot().counters.get("g_total"), Some(&1));
        assert_eq!(b.snapshot().counters.get("g_total"), Some(&1));
    }
}
