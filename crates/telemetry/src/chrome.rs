//! Chrome trace-event JSON exporter.
//!
//! Renders the recorder's trace buffer in the [trace-event format]
//! understood by `chrome://tracing` and Perfetto: an object with a
//! `traceEvents` array of `Complete` (`ph:"X"`) and `Instant`
//! (`ph:"i"`) events, timestamps and durations in microseconds. The
//! array is prefixed with `Metadata` (`ph:"M"`) `process_name` /
//! `thread_name` events so the viewers label the tracks ("buffy",
//! "driver", "worker-N") instead of showing bare pid/tid numbers.
//!
//! [trace-event format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{TraceEvent, TracePhase};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Display name for recording thread `tid`.
///
/// Tid 1 is the first thread that recorded an event — the exploration
/// driver; every later tid is one of the evaluation workers it spawned.
fn thread_name(tid: u64) -> String {
    if tid == 1 {
        "driver".to_string()
    } else {
        format!("worker-{}", tid - 1)
    }
}

/// Renders `events` as a complete Chrome trace-event JSON document.
///
/// All events share `pid` 1 (one process); `tid` is the stable
/// per-thread id assigned at recording time, so Perfetto lays worker
/// threads out as separate tracks. The document opens with `ph:"M"`
/// metadata naming the process and every thread that appears in
/// `events` (ascending tid), so the tracks come up labelled.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"buffy\"}}",
    );
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            thread_name(tid)
        );
    }
    for e in events.iter() {
        out.push_str(",\n");
        let name = json_escape(&e.name);
        match e.ph {
            TracePhase::Complete => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"buffy\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    e.ts_us, e.dur_us, e.tid
                );
            }
            TracePhase::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"buffy\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    e.ts_us, e.tid
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = render_chrome_trace(&[]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
        // Only the process metadata — no threads recorded anything.
        assert!(doc.contains("\"process_name\""));
        assert!(!doc.contains("\"thread_name\""));
    }

    #[test]
    fn metadata_names_every_recording_thread_once() {
        let event = |tid| TraceEvent {
            name: "eval".into(),
            ph: TracePhase::Instant,
            ts_us: 0,
            dur_us: 0,
            tid,
        };
        let doc = render_chrome_trace(&[event(3), event(1), event(3)]);
        assert_eq!(doc.matches("\"thread_name\"").count(), 2);
        let driver = doc.find("{\"name\":\"driver\"}").expect("driver named");
        let worker = doc.find("{\"name\":\"worker-2\"}").expect("worker named");
        // Ascending tid order regardless of event order.
        assert!(driver < worker, "{doc}");
        // Metadata precedes all payload events.
        assert!(worker < doc.find("\"ph\":\"i\"").unwrap(), "{doc}");
    }
}
