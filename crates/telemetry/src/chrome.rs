//! Chrome trace-event JSON exporter.
//!
//! Renders the recorder's trace buffer in the [trace-event format]
//! understood by `chrome://tracing` and Perfetto: an object with a
//! `traceEvents` array of `Complete` (`ph:"X"`) and `Instant`
//! (`ph:"i"`) events, timestamps and durations in microseconds.
//!
//! [trace-event format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{TraceEvent, TracePhase};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `events` as a complete Chrome trace-event JSON document.
///
/// All events share `pid` 1 (one process); `tid` is the stable
/// per-thread id assigned at recording time, so Perfetto lays worker
/// threads out as separate tracks.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let name = json_escape(&e.name);
        match e.ph {
            TracePhase::Complete => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"buffy\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    e.ts_us, e.dur_us, e.tid
                );
            }
            TracePhase::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"buffy\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    e.ts_us, e.tid
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = render_chrome_trace(&[]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }
}
