//! Trace events: timestamped spans and instants for the Chrome-trace
//! exporter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone per-process thread-id assignment: the first thread to record
/// a trace event becomes tid 1, the next tid 2, and so on. Stable for
/// the lifetime of the thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The tid of the calling thread (assigned on first use).
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The shape of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A duration span (`ph:"X"` — `ts` is the start, `dur` the length).
    Complete,
    /// A point-in-time marker (`ph:"i"`).
    Instant,
}

/// One trace event. Timestamps are microseconds relative to the owning
/// [`Recorder`](crate::Recorder)'s creation instant, matching the
/// Chrome trace-event format's microsecond convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name, e.g. `phase:bounds` or `eval`.
    pub name: String,
    /// Span or instant.
    pub ph: TracePhase,
    /// Start time in microseconds since recorder creation.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recording thread's stable id.
    pub tid: u64,
}
