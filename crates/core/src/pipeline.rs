//! The incremental evaluation pipeline shared by every exploration
//! driver.
//!
//! Each candidate storage distribution flows through the same four
//! stages, in order:
//!
//! 1. **Memo lookup** — the sharded cache ([`ShardedCache`]) answers
//!    repeats without re-analysis;
//! 2. **Certificate pruning** — the [`PruneOracle`]'s static
//!    cycle-ratio certificates and monotone dominance records decide
//!    candidates without simulation (queried by the drivers through the
//!    `prunes_*` methods, only at deterministic decision points);
//! 3. **Warm start** — a neighbouring distribution's eval record
//!    (one channel, ± one step) pre-sizes the analysis arena, and a
//!    pooled [`AnalysisWorkspace`] is reused instead of reallocated;
//! 4. **Cold engine run** — the reduced-state-space analysis proper,
//!    panic-contained and cancellation-aware.
//!
//! Telemetry, statistics, checkpoint-replay and failure containment are
//! attached here exactly once; the drivers (`explore`, `dependency`,
//! `constraint`, and `buffy-csdf`'s wrappers) are thin consumers.
//!
//! # Warm-start soundness
//!
//! The self-timed execution of a dataflow graph under fixed capacities is
//! deterministic: the sequence of states the analysis visits — and hence
//! the throughput, the cycle metadata, and the number of reduced states —
//! is a function of the model and the distribution alone. The warm start
//! only seeds *memory layout*: the interner's table size and the
//! bookkeeping vectors' capacities. No computed value can depend on it,
//! so fronts and [`ExplorationStats`]' deterministic counters are
//! byte-identical with warm-starting on or off, at any thread count. The
//! `warm_starts`/`warm_start_states` counters themselves are
//! timing-dependent (a neighbour must already be cached to seed) and are
//! therefore excluded from `ExplorationStats` equality, like wall time.

use crate::error::ExploreError;
use crate::explore::{ExploreOptions, WarmStart};
use crate::fault::{FaultPlan, FaultSite};
use crate::objective::ObjectiveKind;
use crate::pareto::{ParetoPoint, ParetoSet};
use crate::prune::PruneOracle;
use crate::runtime::{
    resolve_threads, AtomicStats, CachedEval, EvaluationFailure, ExplorationStats, ExploreObserver,
    PruneKind, ShardedCache,
};
use buffy_analysis::{
    throughput_for_reusing, AnalysisWorkspace, CancelReason, CancelToken, Capacities,
    DataflowSemantics, EnergyModel, ExplorationLimits, StaticBounds,
};
use buffy_graph::{ActorId, ChannelId, Rational, StorageDistribution};
use buffy_telemetry::{labeled, names};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The shared evaluation pipeline: memoization, pruning, warm-starting
/// and statistics behind one interface, generic over the model class.
///
/// The memo cache is sharded ([`ShardedCache`]) and all counters are
/// atomics ([`AtomicStats`]): concurrent workers never serialize on a
/// whole-cache lock, and the only mutex footprint on the hot path is the
/// per-shard lock guarding an individual `HashMap` plus one pop/push on
/// the workspace pool.
pub(crate) struct EvalPipeline<'a, M: DataflowSemantics + Sync> {
    model: &'a M,
    observed: ActorId,
    limits: ExplorationLimits,
    cache: ShardedCache<StorageDistribution, CachedEval>,
    stats: AtomicStats,
    threads: usize,
    observer: &'a dyn ExploreObserver,
    cancel: Arc<CancelToken>,
    warm_start: Option<Arc<WarmStart>>,
    fail_distribution: Option<StorageDistribution>,
    /// Deterministic fault schedule ([`crate::fault`]); `None` in
    /// production, where every hook is a single untaken branch.
    faults: Option<Arc<FaultPlan>>,
    failures: Mutex<Vec<EvaluationFailure>>,
    telemetry: Option<EvalTelemetry>,
    shard_stats_published: AtomicBool,
    /// Static-certificate + dominance prune oracle ([`crate::prune`]).
    /// Genuine results are recorded as they land; proofs are only queried
    /// from the driver thread between evaluation chunks, so decisions are
    /// deterministic across thread counts.
    oracle: PruneOracle,
    /// Whether cold runs may seed their arena from a neighbouring
    /// distribution's cached record (`--no-warm-start` turns this off;
    /// results are identical either way).
    warm_neighbours: bool,
    /// Per-channel capacity step sizes, indexed by channel: a candidate's
    /// warm-start neighbours differ by exactly one step on one channel.
    neighbour_steps: Vec<u64>,
    /// Pool of reusable analysis arenas, one in flight per worker. A
    /// workspace that survives an analysis returns to the pool; one
    /// caught in a panic is dropped (a fresh one is created on demand).
    workspaces: Mutex<Vec<AnalysisWorkspace>>,
    /// Energy coefficients, present exactly when the declared objective
    /// space includes the energy axis: every [`ParetoPoint`] then carries
    /// the exact energy per iteration derived from the throughput through
    /// [`EnergyModel::energy_per_iteration`]. `None` keeps the factory on
    /// the paper's 2D fast path.
    energy: Option<EnergyModel>,
}

/// Telemetry handles of one pipeline run, fetched once at construction:
/// when no recorder is installed the pipeline pays a single branch, and
/// when one is, the hot path records through these `Arc`s without any
/// registry lookup or lock.
pub(crate) struct EvalTelemetry {
    recorder: Arc<buffy_telemetry::Recorder>,
    latency: Arc<buffy_telemetry::Histogram>,
    short_circuits: Arc<buffy_telemetry::Counter>,
    static_prunes: Arc<buffy_telemetry::Counter>,
    dominance_prunes: Arc<buffy_telemetry::Counter>,
    warm_starts: Arc<buffy_telemetry::Counter>,
    warm_start_states: Arc<buffy_telemetry::Counter>,
    energy_points: Arc<buffy_telemetry::Counter>,
}

impl EvalTelemetry {
    pub(crate) fn fetch() -> Option<EvalTelemetry> {
        buffy_telemetry::active().map(|recorder| EvalTelemetry {
            latency: recorder.histogram(
                names::EVAL_LATENCY_NS,
                "Evaluation wall latency per memoised throughput analysis, in nanoseconds.",
            ),
            short_circuits: recorder.counter(
                names::EVALS_SHORT_CIRCUITED,
                "Per-size sweeps cut short because the monotonicity ceiling was reached.",
            ),
            static_prunes: recorder.counter(
                names::STATIC_PRUNES,
                "Candidates skipped by a static cycle-ratio certificate.",
            ),
            dominance_prunes: recorder.counter(
                names::DOMINANCE_PRUNES,
                "Candidates skipped by a monotone dominance record.",
            ),
            warm_starts: recorder.counter(
                names::WARM_STARTS,
                "Analyses whose arena was pre-sized from a neighbouring record.",
            ),
            warm_start_states: recorder.counter(
                names::WARM_START_STATES,
                "Reduced-state capacity reused through neighbour warm starts.",
            ),
            energy_points: recorder.counter(
                names::ENERGY_POINTS,
                "Pareto candidate points whose energy objective was computed.",
            ),
            recorder,
        })
    }
}

/// States charged to the memory watchdog by one injected arena-pressure
/// spike ([`FaultSite::ArenaPressure`]): large enough that a handful of
/// spikes exhaust a chaos run's state budget, the way a pathological
/// distribution's state space would.
const ARENA_SPIKE_STATES: u64 = 1 << 20;

/// Renders a panic payload for failure reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<'a, M: DataflowSemantics + Sync> EvalPipeline<'a, M> {
    pub(crate) fn new(
        model: &'a M,
        observed: ActorId,
        options: &ExploreOptions,
        observer: &'a dyn ExploreObserver,
    ) -> Result<EvalPipeline<'a, M>, ExploreError> {
        // A model the static pass cannot certify (disconnected, no
        // consistent repetition vector, …) silently degrades to
        // dominance-only pruning — the oracle never guesses.
        let oracle = if options.static_prune {
            PruneOracle::new(StaticBounds::new(model, observed).ok())
        } else {
            PruneOracle::disabled()
        };
        // An inconsistent model has no repetition vector and therefore no
        // energy coefficients — but such a model fails the bounds phase
        // before any point is constructed, so degrading to `None` there is
        // unobservable. Adversarial annotations overflowing the exact
        // coefficient arithmetic are a different matter: the bounds phase
        // would *succeed* and silently chart an energy-free front, so
        // overflow is surfaced as the error it is.
        let energy = if options.objectives.has(ObjectiveKind::Energy) {
            use buffy_analysis::AnalysisError;
            use buffy_graph::GraphError;
            match EnergyModel::from_semantics(model, observed) {
                Ok(m) => Some(m),
                Err(e @ AnalysisError::Graph(GraphError::ArithmeticOverflow { .. })) => {
                    return Err(ExploreError::from(e))
                }
                Err(_) => None,
            }
        } else {
            None
        };
        Ok(EvalPipeline {
            model,
            observed,
            limits: options.limits,
            cache: ShardedCache::new(),
            stats: AtomicStats::new(),
            threads: resolve_threads(options.threads),
            observer,
            cancel: options.cancel.clone().unwrap_or_default(),
            warm_start: options.warm_start.clone(),
            fail_distribution: options.fail_distribution.clone(),
            faults: options.fault_plan.clone(),
            failures: Mutex::new(Vec::new()),
            telemetry: EvalTelemetry::fetch(),
            shard_stats_published: AtomicBool::new(false),
            oracle,
            warm_neighbours: options.warm_start_neighbours,
            neighbour_steps: (0..model.num_channels())
                .map(|i| model.channel_step(ChannelId::new(i)))
                .collect(),
            workspaces: Mutex::new(Vec::new()),
            energy,
        })
    }

    /// Builds the Pareto point of one evaluated distribution in the
    /// declared objective space: the paper's storage/throughput pair, plus
    /// the exact energy per iteration when the energy axis is declared.
    ///
    /// Energy is a pure function of the throughput through the precomputed
    /// model, so this costs no extra analysis and the memoized
    /// [`CachedEval`] records need no new field — checkpoint replay and
    /// warm starts reconstruct identical points for free.
    pub(crate) fn point(
        &self,
        distribution: StorageDistribution,
        throughput: Rational,
    ) -> ParetoPoint {
        match &self.energy {
            Some(m) => {
                if let Some(t) = &self.telemetry {
                    t.energy_points.inc();
                }
                // The checked path: point construction runs outside the
                // worker's panic containment, so an overflowing energy
                // (extreme but validated coefficients at an extreme
                // throughput) degrades to the worst representable energy
                // — deterministic, and dominated out of any honest front
                // — rather than aborting the run.
                let energy = m
                    .checked_energy_per_iteration(throughput)
                    .unwrap_or(Rational::from_integer(i128::MAX));
                ParetoPoint::with_energy(distribution, throughput, energy)
            }
            None => ParetoPoint::new(distribution, throughput),
        }
    }

    /// Memoized throughput of one distribution.
    ///
    /// Warm-start entries are replayed on first request as recorded
    /// evaluations (checkpointed state count, zero wall time): a resumed
    /// run reproduces both the front and the statistics of an
    /// uninterrupted one. A panicking analysis is contained here: it is
    /// recorded as an [`EvaluationFailure`], cached as zero throughput
    /// (deterministic on re-request), and the search continues.
    pub(crate) fn eval(&self, dist: &StorageDistribution) -> Result<Rational, ExploreError> {
        Ok(self.eval_full(dist)?.throughput)
    }

    /// A usable warm-start seed from `neighbour`'s cached record, when
    /// one exists. The probe is a tally-free [`ShardedCache::peek`]:
    /// whether a neighbour is cached yet depends on worker timing, so a
    /// counted lookup would make the cache statistics nondeterministic.
    fn usable_record(&self, neighbour: &StorageDistribution) -> Option<u64> {
        match self.cache.peek(neighbour) {
            Some(e) if !e.failed && e.states_stored > 0 => Some(e.states_stored),
            _ => None,
        }
    }

    /// The arena pre-size hint for `dist`: the recorded state count of
    /// the first cached neighbour (per channel: one step up, then one
    /// step down). Adjacent distributions have nearly identical reachable
    /// spaces, so the neighbour's count is within a few percent of
    /// `dist`'s — close enough that the interner starts at its final
    /// table size instead of growing through the power-of-two ladder.
    fn neighbour_hint(&self, dist: &StorageDistribution) -> Option<u64> {
        if !self.warm_neighbours {
            return None;
        }
        for (i, &step) in self.neighbour_steps.iter().enumerate() {
            let cid = ChannelId::new(i);
            if let Some(hint) = self.usable_record(&dist.grown(cid, step)) {
                return Some(hint);
            }
            if dist.get(cid) >= step {
                let mut caps = dist.as_slice().to_vec();
                caps[i] -= step;
                let down = StorageDistribution::from_capacities(caps);
                if let Some(hint) = self.usable_record(&down) {
                    return Some(hint);
                }
            }
        }
        None
    }

    fn pop_workspace(&self) -> AnalysisWorkspace {
        self.workspaces.lock().unwrap().pop().unwrap_or_default()
    }

    fn push_workspace(&self, ws: AnalysisWorkspace) {
        self.workspaces.lock().unwrap().push(ws);
    }

    /// [`EvalPipeline::eval`] plus the cached replay metadata — what the
    /// dependency-guided search needs to answer storage-dependency
    /// queries without re-running the state-space analysis.
    pub(crate) fn eval_full(&self, dist: &StorageDistribution) -> Result<CachedEval, ExploreError> {
        if let Some(entry) = self.cache.get(dist) {
            self.stats.record_cache_hit();
            self.observer.cache_hit(dist);
            return Ok(entry);
        }
        if let Some(warm) = &self.warm_start {
            if let Some(&(t, states)) = warm.get(dist) {
                self.observer.evaluation_started(dist);
                self.stats.record_evaluation(states, 0);
                let entry = CachedEval {
                    throughput: t,
                    deadlocked: t.is_zero(),
                    cycle_entry_time: 0,
                    period: 0,
                    has_replay_meta: false,
                    states_stored: states,
                    failed: false,
                };
                self.cache.insert(dist.clone(), entry);
                // A replayed checkpoint entry is a genuine result: it must
                // seed the same dominance records as the run it restores,
                // or a resumed run would prune differently.
                self.oracle.record(dist, t);
                self.observer.evaluation_finished(dist, t, states, 0);
                self.cancel.note_states(states);
                self.cancel.note_evaluation();
                return Ok(entry);
            }
        }
        self.observer.evaluation_started(dist);
        if let Some(plan) = &self.faults {
            if plan.should_inject(FaultSite::SpuriousCancel) {
                self.cancel.cancel(CancelReason::Interrupt);
            }
        }
        let trace_ts = self
            .telemetry
            .as_ref()
            .map(|t| t.recorder.elapsed_us())
            .unwrap_or(0);
        let hint = self.neighbour_hint(dist);
        let mut ws = self.pop_workspace();
        let start = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if self.fail_distribution.as_ref() == Some(dist) {
                panic!("injected evaluation failure (fail_distribution test hook)");
            }
            if let Some(plan) = &self.faults {
                if plan.should_inject(FaultSite::EvalPanic) {
                    panic!(
                        "injected evaluation failure (fault plan, seed {})",
                        plan.seed()
                    );
                }
            }
            throughput_for_reusing(
                self.model,
                Capacities::from_distribution(dist),
                self.observed,
                self.limits,
                &self.cancel,
                &mut ws,
                hint.unwrap_or(0) as usize,
            )
        }));
        match attempt {
            Ok(report) => {
                self.push_workspace(ws);
                let report = report?;
                let nanos = start.elapsed().as_nanos() as u64;
                let states = report.states_stored as u64;
                self.stats.record_evaluation(states, nanos);
                if let Some(seeded) = hint {
                    self.stats.record_warm_start(seeded);
                }
                if let Some(t) = &self.telemetry {
                    t.latency.record(nanos);
                    t.recorder
                        .trace_complete_at("eval", trace_ts, nanos / 1_000);
                    if let Some(seeded) = hint {
                        t.warm_starts.inc();
                        t.warm_start_states.add(seeded);
                    }
                }
                let entry = CachedEval {
                    throughput: report.throughput,
                    deadlocked: report.deadlocked,
                    cycle_entry_time: report.cycle_entry_time,
                    period: report.period,
                    has_replay_meta: true,
                    states_stored: states,
                    failed: false,
                };
                self.cache.insert(dist.clone(), entry);
                self.oracle.record(dist, report.throughput);
                self.observer
                    .evaluation_finished(dist, report.throughput, states, nanos);
                // An injected arena-pressure spike rides on the genuine
                // count: it models this evaluation's arena ballooning, so
                // it lands exactly where real states are accounted and the
                // watchdog degrades the run between candidates.
                let spike = match &self.faults {
                    Some(plan) if plan.should_inject(FaultSite::ArenaPressure) => {
                        ARENA_SPIKE_STATES
                    }
                    _ => 0,
                };
                self.cancel.note_states(states + spike);
                self.cancel.note_evaluation();
                Ok(entry)
            }
            Err(payload) => {
                // The workspace was mid-analysis when the panic unwound
                // through it: drop it rather than pooling a possibly
                // inconsistent arena.
                drop(ws);
                let message = panic_message(payload.as_ref());
                self.stats.record_failure();
                let entry = CachedEval {
                    throughput: Rational::ZERO,
                    deadlocked: true,
                    cycle_entry_time: 0,
                    period: 0,
                    has_replay_meta: false,
                    states_stored: 0,
                    failed: true,
                };
                // Degraded zero-throughput is *not* a genuine result: it
                // is cached (deterministic on re-request) but never
                // recorded in the oracle — a panic proves nothing about
                // the real throughput, so it must not seed proofs.
                self.cache.insert(dist.clone(), entry);
                self.failures.lock().unwrap().push(EvaluationFailure {
                    distribution: dist.clone(),
                    message: message.clone(),
                });
                self.observer.evaluation_failed(dist, &message);
                self.cancel.note_evaluation();
                Ok(entry)
            }
        }
    }

    /// Registers one oracle-decided skip with the statistics, the
    /// observer and telemetry.
    fn note_prune(&self, dist: &StorageDistribution, kind: PruneKind) {
        self.stats.record_prune(kind);
        self.observer.distribution_pruned(dist, kind);
        if let Some(t) = &self.telemetry {
            match kind {
                PruneKind::Static => t.static_prunes.inc(),
                PruneKind::Dominance => t.dominance_prunes.inc(),
            }
        }
    }

    /// Whether the oracle proves `t(dist) ≤ limit`; a successful proof is
    /// counted as a prune. Exactness: a candidate at or below the current
    /// best cannot improve the front (updates require strictly greater
    /// throughput), so skipping it changes nothing but the work done.
    pub(crate) fn prunes_at_most(&self, dist: &StorageDistribution, limit: &Rational) -> bool {
        match self.oracle.proves_at_most(dist, limit) {
            Some(kind) => {
                self.note_prune(dist, kind);
                true
            }
            None => false,
        }
    }

    /// Whether the oracle proves `t(dist) < limit` (strictly); counted as
    /// a prune on success.
    pub(crate) fn prunes_below(&self, dist: &StorageDistribution, limit: &Rational) -> bool {
        match self.oracle.proves_below(dist, limit) {
            Some(kind) => {
                self.note_prune(dist, kind);
                true
            }
            None => false,
        }
    }

    /// Whether the oracle proves `t(dist) = 0`; counted as a prune on
    /// success.
    pub(crate) fn prunes_zero(&self, dist: &StorageDistribution) -> bool {
        match self.oracle.proves_zero(dist) {
            Some(kind) => {
                self.note_prune(dist, kind);
                true
            }
            None => false,
        }
    }

    /// Whether the oracle proves `t(dist) > 0` (a positive dominance
    /// record pointwise below `dist`); counted as a prune on success.
    pub(crate) fn proves_positive(&self, dist: &StorageDistribution) -> bool {
        if self.oracle.proves_positive(dist) {
            self.note_prune(dist, PruneKind::Dominance);
            true
        } else {
            false
        }
    }

    /// Evaluates a batch of distributions, possibly in parallel. Results
    /// align with the input order.
    ///
    /// Work is handed out through an atomic index; results land in
    /// per-slot [`OnceLock`]s, so workers share no locks at all. Batches
    /// always contain distinct distributions (they come from one
    /// enumeration pass), so no two workers ever analyse the same
    /// distribution concurrently and the evaluation count stays exact.
    pub(crate) fn eval_batch(
        &self,
        batch: &[StorageDistribution],
    ) -> Result<Vec<Rational>, ExploreError> {
        if self.threads <= 1 || batch.len() <= 1 {
            return batch.iter().map(|d| self.eval(d)).collect();
        }
        let results: Vec<OnceLock<Result<Rational, ExploreError>>> =
            batch.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(batch.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        return;
                    }
                    let _ = results[i].set(self.eval(&batch[i]));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index evaluated"))
            .collect()
    }

    /// Records one per-size sweep cut short by the monotonicity ceiling.
    pub(crate) fn note_short_circuit(&self) {
        if let Some(t) = &self.telemetry {
            t.short_circuits.inc();
        }
    }

    /// Snapshot of the run's statistics. Also publishes the memo cache's
    /// per-shard hit/miss/occupancy tallies to the recorder — drivers call
    /// this exactly once per exit path, and a guard keeps the counters
    /// single-shot even if that ever changes.
    pub(crate) fn stats(&self) -> ExplorationStats {
        if let Some(t) = &self.telemetry {
            if !self.shard_stats_published.swap(true, Ordering::Relaxed) {
                for (i, s) in self.cache.shard_stats().iter().enumerate() {
                    t.recorder
                        .counter(
                            &labeled(names::SHARD_HITS, "shard", i),
                            "Memo-cache hits per shard.",
                        )
                        .add(s.hits);
                    t.recorder
                        .counter(
                            &labeled(names::SHARD_MISSES, "shard", i),
                            "Memo-cache misses per shard.",
                        )
                        .add(s.misses);
                    t.recorder
                        .gauge(
                            &labeled(names::SHARD_ENTRIES, "shard", i),
                            "Memo-cache entries per shard at the end of the run.",
                        )
                        .set(s.entries);
                }
            }
        }
        self.stats.snapshot()
    }

    /// Drains the recorded evaluation failures, sorted by distribution so
    /// the report is deterministic across thread counts.
    pub(crate) fn take_failures(&self) -> Vec<EvaluationFailure> {
        let mut v = std::mem::take(&mut *self.failures.lock().unwrap());
        v.sort_by(|a, b| a.distribution.as_slice().cmp(b.distribution.as_slice()));
        v
    }
}

/// Clips a front to the requested throughput window and thins it to one
/// point per quantization level (smallest size wins) — the shared
/// options-semantics tail of every driver. Returns the input unchanged
/// when no window or quantum is set.
pub(crate) fn clip_front(
    pareto: ParetoSet,
    options: &ExploreOptions,
    thr_max_graph: Rational,
) -> ParetoSet {
    if options.min_throughput.is_none()
        && options.max_throughput.is_none()
        && options.quantum.is_none()
    {
        return pareto;
    }
    let min_t = options.min_throughput.unwrap_or(Rational::ZERO);
    let max_t = options.max_throughput.unwrap_or(thr_max_graph);
    let mut thinned = ParetoSet::new();
    let mut last_level: Option<Rational> = None;
    for p in pareto.points() {
        if p.throughput < min_t || p.throughput > max_t {
            continue;
        }
        if let Some(quantum) = options.quantum {
            let level = p.throughput.quantize_down(quantum);
            if last_level == Some(level) {
                continue;
            }
            last_level = Some(level);
        }
        thinned.insert(p.clone());
    }
    thinned
}
