//! # buffy-core
//!
//! The primary contribution of Stuijk, Geilen & Basten, *"Exploring
//! Trade-Offs in Buffer Requirements and Throughput Constraints for
//! Synchronous Dataflow Graphs"* (DAC 2006): exact exploration of the
//! trade-off between channel storage (buffer capacities) and throughput
//! for SDF graphs.
//!
//! - [`channel_lower_bound`] / [`lower_bound_distribution`] /
//!   [`upper_bound_distribution`]: the bounds boxing the design space
//!   (paper §8, Fig. 7);
//! - [`explore_design_space`]: the paper's exact exploration — divide and
//!   conquer over distribution sizes, monotonicity-seeded search in the
//!   throughput dimension, optional quantization and parallelism (§9–10);
//! - [`explore_dependency_guided`]: the storage-dependency-guided pruning
//!   the paper's conclusions call for (§12);
//! - [`min_storage_for_throughput`]: the headline question — minimal
//!   storage meeting a given throughput constraint;
//! - [`ParetoSet`] / [`ParetoPoint`]: the resulting front (Figs. 5, 13);
//! - [`ExplorationStats`] / [`ExploreObserver`]: the exploration runtime's
//!   unified statistics and structured event stream — the `_observed`
//!   entry points stream evaluation, cache-hit, Pareto-accept and
//!   search-phase events while a search runs.
//!
//! Every driver is written once against the unified kernel's
//! [`DataflowSemantics`](buffy_analysis::DataflowSemantics) trait — the
//! `*_for` variants ([`explore_design_space_for`],
//! [`explore_dependency_guided_for`], [`min_storage_for_throughput_for`],
//! [`upper_bound_distribution_for`]) accept any model implementing it
//! (`buffy-csdf` instantiates them for cyclo-static graphs); the plain
//! names are the SDF-typed entry points.
//!
//! # Quickstart
//!
//! ```
//! use buffy_core::{explore_design_space, ExploreOptions};
//! use buffy_graph::{Rational, SdfGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example (Fig. 1).
//! let mut b = SdfGraph::builder("example");
//! let a = b.actor("a", 1);
//! let bb = b.actor("b", 2);
//! let c = b.actor("c", 2);
//! b.channel("alpha", a, 2, bb, 3)?;
//! b.channel("beta", bb, 1, c, 2)?;
//! let graph = b.build()?;
//!
//! let result = explore_design_space(&graph, &ExploreOptions::default())?;
//! for point in result.pareto.points() {
//!     println!("{point}");
//! }
//! assert_eq!(result.pareto.minimal().unwrap().size, 6);   // ⟨4, 2⟩, thr 1/7
//! assert_eq!(result.pareto.maximal().unwrap().size, 10);  // thr 1/4
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod bounds;
mod checkpoint;
mod constraint;
mod dependency;
mod enumerate;
mod error;
mod explore;
mod fault;
mod live;
mod objective;
mod pareto;
mod pipeline;
mod prune;
mod runtime;

pub use bounds::{
    channel_lower_bound, channel_step, lower_bound_distribution, lower_bound_distribution_for,
    upper_bound_distribution, upper_bound_distribution_for,
};
pub use checkpoint::{Checkpoint, CheckpointEntry, CheckpointError, SalvageReport};
pub use constraint::{
    min_storage_for_throughput, min_storage_for_throughput_for,
    min_storage_for_throughput_observed, ConstraintResult,
};
pub use dependency::{
    explore_dependency_guided, explore_dependency_guided_for, explore_dependency_guided_observed,
};
pub use enumerate::DistributionSpace;
pub use error::ExploreError;
pub use explore::{
    explore_design_space, explore_design_space_for, explore_design_space_observed,
    ExplorationResult, ExploreOptions, WarmStart,
};
pub use fault::{FaultPlan, FaultSite, FAULT_SITES};
pub use live::{EventRing, LiveEvent, LiveObserver, LiveStats, TeeObserver, DEFAULT_RING_CAPACITY};
pub use objective::{ObjectiveKind, ObjectiveSpace, ObjectiveVector, ParseObjectivesError, Sense};
pub use pareto::{ParetoPoint, ParetoSet};
pub use runtime::{
    resolve_threads, Completeness, EvaluationFailure, ExplorationStats, ExploreObserver,
    NoopObserver, PruneKind, SearchPhase, SkippedSize,
};

// Re-export the cooperative budget/cancellation types: callers construct a
// token once and hand it to both the analysis and exploration layers.
pub use buffy_analysis::{CancelReason, CancelToken};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use buffy_analysis as analysis;
pub use buffy_graph as graph;
