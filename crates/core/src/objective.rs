//! The declared objective space of an exploration and the per-point
//! objective vectors ranked by Pareto dominance.
//!
//! The paper's trade-off space is two-dimensional — storage size against
//! throughput — but nothing in dominance filtering is specific to that
//! pair. [`ObjectiveKind`] names the axes the engine knows how to
//! compute, each with a fixed optimization [`Sense`]; [`ObjectiveSpace`]
//! declares which axes one exploration ranks (always including the
//! paper's pair); and [`ObjectiveVector`] carries the exact
//! [`Rational`] value of every declared axis for one evaluated
//! distribution. [`ParetoSet`](crate::ParetoSet) compares points solely
//! through [`ObjectiveVector::dominates`], so adding an axis never
//! touches the front machinery.
//!
//! The energy axis is derived from the throughput axis through the
//! precomputed [`EnergyModel`](buffy_analysis::EnergyModel) and is
//! monotone non-increasing in it; consequently the default
//! storage/throughput fronts are unchanged by the refactor and the prune
//! oracle's throughput-only bounds remain sound (see
//! [`prune`](crate::prune)). Latency can be declared for reporting; it is
//! annotated onto the finished front by the CLI rather than evaluated
//! per candidate, and never participates in dominance.

use buffy_graph::Rational;
use core::fmt;
use std::str::FromStr;

/// Whether larger or smaller values of an axis are preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Smaller values dominate (storage, energy, latency).
    Minimize,
    /// Larger values dominate (throughput).
    Maximize,
}

/// An axis of the objective space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectiveKind {
    /// Total storage size `sz(γ)` of the distribution (minimized).
    Storage,
    /// Throughput of the observed actor (maximized).
    Throughput,
    /// Exact energy per graph iteration under the actor power model
    /// (minimized).
    Energy,
    /// Initial output latency of the observed actor (minimized;
    /// reporting-only, never ranked).
    Latency,
}

impl ObjectiveKind {
    /// The fixed optimization sense of this axis.
    pub fn sense(self) -> Sense {
        match self {
            ObjectiveKind::Throughput => Sense::Maximize,
            _ => Sense::Minimize,
        }
    }

    /// The axis name used by `--objectives` and the reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::Storage => "storage",
            ObjectiveKind::Throughput => "throughput",
            ObjectiveKind::Energy => "energy",
            ObjectiveKind::Latency => "latency",
        }
    }
}

impl fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an `--objectives` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseObjectivesError {
    message: String,
}

impl fmt::Display for ParseObjectivesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseObjectivesError {}

/// The ordered set of axes one exploration computes and reports.
///
/// The paper's storage/throughput pair is always present; extra axes are
/// kept in the canonical order storage, throughput, energy, latency so a
/// declaration is independent of the order the user listed the names in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveSpace {
    kinds: Vec<ObjectiveKind>,
}

impl ObjectiveSpace {
    /// The paper's default space: storage and throughput.
    pub fn default_2d() -> ObjectiveSpace {
        ObjectiveSpace {
            kinds: vec![ObjectiveKind::Storage, ObjectiveKind::Throughput],
        }
    }

    /// The default space extended with the energy axis.
    pub fn with_energy() -> ObjectiveSpace {
        ObjectiveSpace {
            kinds: vec![
                ObjectiveKind::Storage,
                ObjectiveKind::Throughput,
                ObjectiveKind::Energy,
            ],
        }
    }

    /// The declared axes, in canonical order.
    pub fn kinds(&self) -> &[ObjectiveKind] {
        &self.kinds
    }

    /// Whether `kind` is declared.
    pub fn has(&self, kind: ObjectiveKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// Whether this is exactly the paper's default storage/throughput
    /// space — the fast path every existing driver stays on.
    pub fn is_default(&self) -> bool {
        self.kinds == [ObjectiveKind::Storage, ObjectiveKind::Throughput]
    }
}

impl Default for ObjectiveSpace {
    fn default() -> ObjectiveSpace {
        ObjectiveSpace::default_2d()
    }
}

impl fmt::Display for ObjectiveSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

impl FromStr for ObjectiveSpace {
    type Err = ParseObjectivesError;

    /// Parses a comma-separated axis list, e.g.
    /// `storage,throughput,energy`. Both paper axes must be present;
    /// duplicates are rejected; the result is in canonical order
    /// regardless of the input order.
    fn from_str(s: &str) -> Result<ObjectiveSpace, ParseObjectivesError> {
        let mut seen = Vec::new();
        for name in s.split(',') {
            let name = name.trim();
            let kind = match name {
                "storage" => ObjectiveKind::Storage,
                "throughput" => ObjectiveKind::Throughput,
                "energy" => ObjectiveKind::Energy,
                "latency" => ObjectiveKind::Latency,
                other => {
                    return Err(ParseObjectivesError {
                        message: format!(
                            "unknown objective {other:?} (expected storage, throughput, energy or latency)"
                        ),
                    })
                }
            };
            if seen.contains(&kind) {
                return Err(ParseObjectivesError {
                    message: format!("objective {kind} listed twice"),
                });
            }
            seen.push(kind);
        }
        for required in [ObjectiveKind::Storage, ObjectiveKind::Throughput] {
            if !seen.contains(&required) {
                return Err(ParseObjectivesError {
                    message: format!("objective space must include {required}"),
                });
            }
        }
        let kinds = [
            ObjectiveKind::Storage,
            ObjectiveKind::Throughput,
            ObjectiveKind::Energy,
            ObjectiveKind::Latency,
        ]
        .into_iter()
        .filter(|k| seen.contains(k))
        .collect();
        Ok(ObjectiveSpace { kinds })
    }
}

/// The exact objective values of one evaluated distribution, one entry
/// per declared axis in the space's canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveVector {
    entries: Vec<(ObjectiveKind, Rational)>,
}

impl ObjectiveVector {
    /// The paper's 2D vector: storage size and throughput.
    pub fn pair(size: u64, throughput: Rational) -> ObjectiveVector {
        ObjectiveVector {
            entries: vec![
                (ObjectiveKind::Storage, Rational::new(size as i128, 1)),
                (ObjectiveKind::Throughput, throughput),
            ],
        }
    }

    /// The 3D vector extending [`pair`](Self::pair) with an energy value.
    pub fn triple(size: u64, throughput: Rational, energy: Rational) -> ObjectiveVector {
        ObjectiveVector {
            entries: vec![
                (ObjectiveKind::Storage, Rational::new(size as i128, 1)),
                (ObjectiveKind::Throughput, throughput),
                (ObjectiveKind::Energy, energy),
            ],
        }
    }

    /// The entries, in the space's canonical axis order.
    pub fn entries(&self) -> &[(ObjectiveKind, Rational)] {
        &self.entries
    }

    /// The value of `kind`, if that axis is present.
    pub fn get(&self, kind: ObjectiveKind) -> Option<Rational> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, v)| *v)
    }

    /// Drops the given axis (used by projection tests and reports).
    pub fn without(&self, kind: ObjectiveKind) -> ObjectiveVector {
        ObjectiveVector {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| *k != kind)
                .copied()
                .collect(),
        }
    }

    /// Weak Pareto dominance: `self` is no worse than `other` on every
    /// axis, each compared under its own sense. Equal vectors dominate
    /// each other; [`ParetoSet`](crate::ParetoSet) breaks that tie on the
    /// witnessing distributions.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both vectors declare the same axes in the same
    /// order — comparing points from different spaces is a logic error.
    pub fn dominates(&self, other: &ObjectiveVector) -> bool {
        debug_assert!(
            self.entries.len() == other.entries.len()
                && self
                    .entries
                    .iter()
                    .zip(&other.entries)
                    .all(|((a, _), (b, _))| a == b),
            "dominance across different objective spaces"
        );
        self.entries
            .iter()
            .zip(&other.entries)
            .all(|((kind, a), (_, b))| match kind.sense() {
                Sense::Minimize => a <= b,
                Sense::Maximize => a >= b,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_accepts_any_order_and_canonicalizes() {
        let s: ObjectiveSpace = "energy,storage,throughput".parse().unwrap();
        assert_eq!(s, ObjectiveSpace::with_energy());
        assert_eq!(s.to_string(), "storage,throughput,energy");
        assert!(s.has(ObjectiveKind::Energy));
        assert!(!s.is_default());
        let d: ObjectiveSpace = "throughput,storage".parse().unwrap();
        assert!(d.is_default());
        assert_eq!(d, ObjectiveSpace::default());
        let l: ObjectiveSpace = "storage,throughput,energy,latency".parse().unwrap();
        assert_eq!(l.kinds().len(), 4);
        assert_eq!(l.to_string(), "storage,throughput,energy,latency");
    }

    #[test]
    fn parsing_rejects_bad_declarations() {
        assert!("storage,throughput,bogus"
            .parse::<ObjectiveSpace>()
            .is_err());
        assert!("storage,storage,throughput"
            .parse::<ObjectiveSpace>()
            .is_err());
        assert!("storage,energy".parse::<ObjectiveSpace>().is_err());
        assert!("energy".parse::<ObjectiveSpace>().is_err());
    }

    #[test]
    fn senses_are_fixed_per_axis() {
        assert_eq!(ObjectiveKind::Storage.sense(), Sense::Minimize);
        assert_eq!(ObjectiveKind::Throughput.sense(), Sense::Maximize);
        assert_eq!(ObjectiveKind::Energy.sense(), Sense::Minimize);
        assert_eq!(ObjectiveKind::Latency.sense(), Sense::Minimize);
    }

    #[test]
    fn dominance_respects_sense_per_axis() {
        let a = ObjectiveVector::pair(6, Rational::new(1, 7));
        let b = ObjectiveVector::pair(8, Rational::new(1, 7));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let c = ObjectiveVector::pair(6, Rational::new(1, 4));
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
        // Equal vectors weakly dominate each other.
        assert!(a.dominates(&a.clone()));

        // In 3D a worse energy blocks dominance that held in 2D.
        let x = ObjectiveVector::triple(6, Rational::new(1, 7), Rational::new(50, 1));
        let y = ObjectiveVector::triple(8, Rational::new(1, 7), Rational::new(40, 1));
        assert!(!x.dominates(&y));
        assert!(!y.dominates(&x));
    }

    #[test]
    fn vector_accessors() {
        let v = ObjectiveVector::triple(6, Rational::new(1, 7), Rational::new(73, 1));
        assert_eq!(v.get(ObjectiveKind::Storage), Some(Rational::new(6, 1)));
        assert_eq!(v.get(ObjectiveKind::Energy), Some(Rational::new(73, 1)));
        assert_eq!(v.get(ObjectiveKind::Latency), None);
        let projected = v.without(ObjectiveKind::Energy);
        assert_eq!(projected, ObjectiveVector::pair(6, Rational::new(1, 7)));
        assert_eq!(v.entries().len(), 3);
    }
}
