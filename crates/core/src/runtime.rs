//! The exploration runtime: concurrency plumbing and observability for
//! the design-space drivers.
//!
//! The paper's exact method runs one timed state-space analysis per
//! candidate storage distribution, and those analyses are embarrassingly
//! parallel (§10). This module holds everything the drivers share to
//! exploit that without serializing on a single lock:
//!
//! - [`ShardedCache`]: the memo cache of analysed distributions, hash
//!   partitioned into independently locked shards so concurrent workers
//!   rarely contend;
//! - [`AtomicStats`]: contention-free evaluation counters, snapshotted
//!   into the [`ExplorationStats`] every driver reports;
//! - [`ExploreObserver`]: a structured event stream (evaluations, cache
//!   hits, accepted Pareto points, search-phase transitions) that the CLI
//!   renders as progress or JSON-lines traces;
//! - [`resolve_threads`]: `threads: 0` → the machine's available
//!   parallelism.

use crate::pareto::ParetoPoint;
use buffy_analysis::{fx_hash, CancelReason, FxBuildHasher};
use buffy_graph::{Rational, StorageDistribution};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Batch size for chunked candidate evaluation.
///
/// Both the sequential and the parallel evaluation paths consume the
/// per-size enumeration in chunks of exactly this many distributions,
/// checking the early-exit condition only at chunk boundaries. The chunk
/// size being independent of the thread count is what makes the set of
/// evaluated distributions — and with it every statistic in
/// [`ExplorationStats`] — identical across thread counts.
pub(crate) const EVAL_CHUNK: usize = 32;

/// Number of cache shards; a power of two so the shard of a hash is a
/// mask away. 16 shards keep contention negligible for any realistic
/// worker count while costing next to nothing when single-threaded.
const SHARD_COUNT: usize = 16;

/// A concurrent memoization cache, hash-partitioned into
/// [`SHARD_COUNT`] independently locked shards.
///
/// Keys are spread over the shards by their [`fx_hash`]; each shard is a
/// small `Mutex<HashMap>` (Fx-hashed as well), so two workers only
/// contend when their keys land in the same shard. Values are `Copy`
/// (the drivers cache throughputs, i.e. [`Rational`]s), which keeps
/// lookups free of clones.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
}

/// One cache shard: the map plus its own hit/miss tallies. The tallies
/// are plain integers bumped under the shard lock the lookup already
/// holds — per-shard statistics cost nothing extra on the hot path.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, V, FxBuildHasher>,
    hits: u64,
    misses: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Shard<K, V> {
        Shard {
            map: HashMap::default(),
            hits: 0,
            misses: 0,
        }
    }
}

/// Point-in-time statistics of one cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardCacheStats {
    /// Lookups answered by this shard.
    pub(crate) hits: u64,
    /// Lookups this shard missed.
    pub(crate) misses: u64,
    /// Entries currently stored.
    pub(crate) entries: u64,
}

impl<K: Hash + Eq, V: Copy> ShardedCache<K, V> {
    pub(crate) fn new() -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        &self.shards[(fx_hash(key) as usize) & (SHARD_COUNT - 1)]
    }

    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap();
        let value = shard.map.get(key).copied();
        match value {
            Some(_) => shard.hits += 1,
            None => shard.misses += 1,
        }
        value
    }

    /// Looks `key` up *without* touching the hit/miss tallies.
    ///
    /// This is the neighbour-probe entry point of the warm-start pipeline:
    /// probes are speculative (most neighbours were never evaluated) and
    /// timing-dependent under parallelism, so counting them would make
    /// `cache_hits` and the per-shard statistics nondeterministic. A peek
    /// is observation-only — the deterministic statistics are byte-for-byte
    /// those of a peek-free run.
    pub(crate) fn peek(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap().map.get(key).copied()
    }

    pub(crate) fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().unwrap().map.insert(key, value);
    }

    /// Per-shard hit/miss/occupancy statistics, in shard order.
    pub(crate) fn shard_stats(&self) -> Vec<ShardCacheStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().unwrap();
                ShardCacheStats {
                    hits: shard.hits,
                    misses: shard.misses,
                    entries: shard.map.len() as u64,
                }
            })
            .collect()
    }
}

/// Unified statistics of one exploration run.
///
/// Replaces the ad-hoc `(evaluations, cache_hits, max_states)` tuple: every
/// driver — the exhaustive and guided explorers, the CSDF wrappers and the
/// constraint search — reports this struct, and the bench and CLI surfaces
/// render it.
///
/// Equality ignores `eval_nanos` and the two warm-start counters: wall
/// time varies run to run, and whether a neighbour's record was already
/// in the memo cache when an evaluation started depends on worker timing
/// — both are performance artifacts, not search outcomes. The remaining
/// counters are deterministic — identical across thread counts by
/// construction (fixed-size evaluation chunks), which the regression tests
/// assert with `==`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplorationStats {
    /// Throughput analyses actually run (memo-cache misses).
    pub evaluations: u64,
    /// Evaluation requests answered from the memo cache.
    pub cache_hits: u64,
    /// Largest reduced state space stored in any single analysis (the
    /// paper's "maximum #states" of Table 2).
    pub max_states: u64,
    /// Total wall time spent inside throughput analyses, in nanoseconds
    /// (summed over workers, so it can exceed elapsed time when
    /// parallel). Ignored by `==`.
    pub eval_nanos: u64,
    /// Evaluations that panicked and were degraded to a recorded failure
    /// instead of aborting the run.
    pub failures: u64,
    /// Candidate distributions skipped because a static cycle-ratio
    /// certificate already decided them (no state-space analysis run).
    pub static_prunes: u64,
    /// Candidate distributions skipped because a pointwise-dominating or
    /// -dominated distribution with a known throughput already decided
    /// them (monotonicity, paper §9).
    pub dominance_prunes: u64,
    /// Evaluations whose analysis arena was pre-sized from a neighbouring
    /// distribution's eval record. A pure allocation-layer effect: which
    /// neighbours are cached when an evaluation starts depends on worker
    /// timing, so this counter (like `eval_nanos`) is ignored by `==`.
    pub warm_starts: u64,
    /// Reduced-state capacity reused through those warm starts (sum of
    /// the seeding records' state counts). Ignored by `==`.
    pub warm_start_states: u64,
}

impl ExplorationStats {
    /// Total evaluation requests: analyses run plus cache hits.
    pub fn requests(&self) -> u64 {
        self.evaluations + self.cache_hits
    }

    /// Fraction of requests answered from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of analyses that started from a neighbour-seeded arena,
    /// in `[0, 1]`.
    pub fn warm_start_hit_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.warm_starts as f64 / self.evaluations as f64
        }
    }
}

impl PartialEq for ExplorationStats {
    /// Compares the deterministic counters only; `eval_nanos` (wall time)
    /// and the warm-start counters (cache-timing artifacts) are excluded.
    fn eq(&self, other: &Self) -> bool {
        self.evaluations == other.evaluations
            && self.cache_hits == other.cache_hits
            && self.max_states == other.max_states
            && self.failures == other.failures
            && self.static_prunes == other.static_prunes
            && self.dominance_prunes == other.dominance_prunes
    }
}

impl Eq for ExplorationStats {}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} evaluations, {} cache hits ({:.0}%), max {} states",
            self.evaluations,
            self.cache_hits,
            self.cache_hit_rate() * 100.0,
            self.max_states
        )?;
        if self.failures > 0 {
            write!(f, ", {} failed", self.failures)?;
        }
        if self.static_prunes > 0 || self.dominance_prunes > 0 {
            write!(
                f,
                ", {} pruned statically + {} by dominance",
                self.static_prunes, self.dominance_prunes
            )?;
        }
        if self.warm_starts > 0 {
            write!(
                f,
                ", {} warm-started ({:.0}%)",
                self.warm_starts,
                self.warm_start_hit_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Lock-free accumulator behind [`ExplorationStats`]: every counter is an
/// atomic, so workers never serialize on statistics bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    max_states: AtomicU64,
    eval_nanos: AtomicU64,
    failures: AtomicU64,
    static_prunes: AtomicU64,
    dominance_prunes: AtomicU64,
    warm_starts: AtomicU64,
    warm_start_states: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn new() -> AtomicStats {
        AtomicStats::default()
    }

    /// Records one completed throughput analysis.
    pub(crate) fn record_evaluation(&self, states: u64, nanos: u64) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.max_states.fetch_max(states, Ordering::Relaxed);
        self.eval_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one memo-cache hit.
    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one degraded (panicked) evaluation.
    pub(crate) fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one analysis whose arena was pre-sized from a neighbour's
    /// record of `states` reduced states.
    pub(crate) fn record_warm_start(&self, states: u64) {
        self.warm_starts.fetch_add(1, Ordering::Relaxed);
        self.warm_start_states.fetch_add(states, Ordering::Relaxed);
    }

    /// Records one candidate skipped by the prune oracle.
    pub(crate) fn record_prune(&self, kind: PruneKind) {
        match kind {
            PruneKind::Static => &self.static_prunes,
            PruneKind::Dominance => &self.dominance_prunes,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot (callers take it after all workers joined).
    pub(crate) fn snapshot(&self) -> ExplorationStats {
        ExplorationStats {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            max_states: self.max_states.load(Ordering::Relaxed),
            eval_nanos: self.eval_nanos.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            static_prunes: self.static_prunes.load(Ordering::Relaxed),
            dominance_prunes: self.dominance_prunes.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            warm_start_states: self.warm_start_states.load(Ordering::Relaxed),
        }
    }
}

/// Why the prune oracle skipped a candidate distribution without running
/// (or even enqueueing) its state-space analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneKind {
    /// A capacity-aware cycle-ratio certificate decided the candidate
    /// (static upper bound at or below what the search still needed).
    Static,
    /// A previously evaluated pointwise-comparable distribution decided
    /// the candidate (throughput monotonicity).
    Dominance,
}

impl PruneKind {
    /// Stable machine-readable name (used in JSON traces).
    pub fn name(&self) -> &'static str {
        match self {
            PruneKind::Static => "static-bound",
            PruneKind::Dominance => "dominance",
        }
    }
}

impl fmt::Display for PruneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A memoized evaluation: the throughput plus the replay metadata that
/// lets the dependency-guided search answer storage-dependency queries
/// from the cache (`has_replay_meta` is `false` for entries that were
/// warm-started or degraded, where no genuine analysis ran).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachedEval {
    /// Throughput of the observed actor under the distribution.
    pub(crate) throughput: Rational,
    /// Whether the execution deadlocked.
    pub(crate) deadlocked: bool,
    /// Time at which the periodic phase was entered.
    pub(crate) cycle_entry_time: u64,
    /// Length of one period of the periodic phase.
    pub(crate) period: u64,
    /// Whether `deadlocked`/`cycle_entry_time`/`period` come from a real
    /// analysis and can seed a dependency replay.
    pub(crate) has_replay_meta: bool,
    /// Reduced states the analysis stored — the warm-start pipeline uses
    /// it to pre-size a neighbouring distribution's arena (0 for replayed
    /// or degraded entries, which seed nothing).
    pub(crate) states_stored: u64,
    /// Whether the analysis panicked and was degraded to zero throughput
    /// (such entries are terminal: no replay, no dominance record).
    pub(crate) failed: bool,
}

/// How complete a search result is: exact, or truncated by cancellation.
///
/// Every driver result carries one of these. An `exact` result is what an
/// unbudgeted, uninterrupted run produces. A truncated result is still
/// *sound* — every reported Pareto point is achievable — but may miss
/// points the full search would have found; those are accounted for by the
/// skipped-size annotations and `distributions_skipped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completeness {
    /// `true` when the search ran to completion.
    pub exact: bool,
    /// Why the search stopped early, when it did.
    pub truncated_by: Option<CancelReason>,
    /// Number of enumerated candidate distributions whose evaluation was
    /// skipped (saturating; capped counting keeps huge spaces cheap).
    pub distributions_skipped: u64,
}

impl Completeness {
    /// The marker of a run that completed normally.
    pub fn exact() -> Completeness {
        Completeness {
            exact: true,
            truncated_by: None,
            distributions_skipped: 0,
        }
    }

    /// The marker of a run truncated by `reason` with `skipped` candidate
    /// distributions left unevaluated.
    pub fn truncated(reason: CancelReason, skipped: u64) -> Completeness {
        Completeness {
            exact: false,
            truncated_by: Some(reason),
            distributions_skipped: skipped,
        }
    }
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.truncated_by {
            None => f.write_str("exact"),
            Some(reason) => write!(
                f,
                "partial (truncated by {}, {} distributions skipped)",
                reason.name(),
                self.distributions_skipped
            ),
        }
    }
}

/// A distribution size the truncated search never settled, annotated with
/// a *sound* conservative throughput bound: the bounds phase's maximal
/// achievable throughput of the graph (paper §8), which no storage
/// distribution of any size can exceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedSize {
    /// The total distribution size (sum of channel capacities).
    pub size: u64,
    /// Number of candidate distributions of this size (saturating; counted
    /// with a cap so huge spaces stay cheap to annotate).
    pub distributions: u64,
    /// Conservative upper bound on the maximal throughput achievable at
    /// this size.
    pub throughput_bound: Rational,
}

/// One evaluation that panicked and was degraded instead of aborting the
/// run: the distribution is recorded as yielding zero throughput and the
/// search continues deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationFailure {
    /// The distribution whose analysis panicked.
    pub distribution: StorageDistribution,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// The phase a search driver is in; reported through
/// [`ExploreObserver::phase_started`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchPhase {
    /// Boxing the design space: bounds on size and throughput (paper §8).
    Bounds,
    /// Binary search for the smallest positive-throughput size.
    MinimalSize,
    /// Divide-and-conquer over the size dimension (paper §9).
    FrontSearch,
    /// Binary search for minimal storage under a throughput constraint.
    ConstraintSearch,
    /// Dependency-guided frontier search.
    GuidedSearch,
}

impl SearchPhase {
    /// Stable machine-readable name (used in JSON traces).
    pub fn name(&self) -> &'static str {
        match self {
            SearchPhase::Bounds => "bounds",
            SearchPhase::MinimalSize => "minimal-size",
            SearchPhase::FrontSearch => "front-search",
            SearchPhase::ConstraintSearch => "constraint-search",
            SearchPhase::GuidedSearch => "guided-search",
        }
    }
}

impl fmt::Display for SearchPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured observation of an exploration run.
///
/// All methods default to no-ops, so observers implement only what they
/// care about. Implementations must be `Sync`: with multi-threaded
/// evaluation, events arrive concurrently from worker threads. Event
/// *order* between workers is nondeterministic; the statistics totals are
/// not.
pub trait ExploreObserver: Sync {
    /// A search driver entered `phase`.
    fn phase_started(&self, phase: SearchPhase) {
        let _ = phase;
    }

    /// A throughput analysis of `dist` is about to run (cache miss).
    fn evaluation_started(&self, dist: &StorageDistribution) {
        let _ = dist;
    }

    /// A throughput analysis finished: `dist` has `throughput`, storing
    /// `states` reduced states, in `nanos` wall time.
    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        let _ = (dist, throughput, states, nanos);
    }

    /// An evaluation request for `dist` was answered from the memo cache.
    fn cache_hit(&self, dist: &StorageDistribution) {
        let _ = dist;
    }

    /// A throughput analysis of `dist` panicked and was degraded to a
    /// recorded failure (the run continues).
    fn evaluation_failed(&self, dist: &StorageDistribution, message: &str) {
        let _ = (dist, message);
    }

    /// `point` was accepted into the Pareto front under construction
    /// (it may later be evicted by a dominating point).
    fn pareto_accepted(&self, point: &ParetoPoint) {
        let _ = point;
    }

    /// The prune oracle skipped `dist` without running its analysis.
    fn distribution_pruned(&self, dist: &StorageDistribution, kind: PruneKind) {
        let _ = (dist, kind);
    }
}

/// The do-nothing observer: the default for all non-`_observed` entry
/// points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ExploreObserver for NoopObserver {}

/// Resolves a thread-count option: `0` means "auto-detect", returning the
/// machine's [`std::thread::available_parallelism`] (1 if unknown); any
/// other value is returned unchanged.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_cache_round_trips() {
        let cache: ShardedCache<StorageDistribution, Rational> = ShardedCache::new();
        for i in 0..100u64 {
            let d = StorageDistribution::from_capacities(vec![i, i + 1]);
            assert_eq!(cache.get(&d), None);
            cache.insert(d.clone(), Rational::new(1, (i + 1) as i128));
            assert_eq!(cache.get(&d), Some(Rational::new(1, (i + 1) as i128)));
        }
        // Re-insert overwrites.
        let d = StorageDistribution::from_capacities(vec![0, 1]);
        cache.insert(d.clone(), Rational::ONE);
        assert_eq!(cache.get(&d), Some(Rational::ONE));
    }

    #[test]
    fn shard_stats_tally_hits_misses_and_entries() {
        let cache: ShardedCache<StorageDistribution, Rational> = ShardedCache::new();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        assert_eq!(cache.get(&d), None); // miss
        cache.insert(d.clone(), Rational::ONE);
        assert_eq!(cache.get(&d), Some(Rational::ONE)); // hit
        assert_eq!(cache.get(&d), Some(Rational::ONE)); // hit
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARD_COUNT);
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let misses: u64 = stats.iter().map(|s| s.misses).sum();
        let entries: u64 = stats.iter().map(|s| s.entries).sum();
        assert_eq!((hits, misses, entries), (2, 1, 1));
        // All three land in the same shard (same key).
        assert!(stats.contains(&ShardCacheStats {
            hits: 2,
            misses: 1,
            entries: 1
        }));
    }

    #[test]
    fn peek_reads_without_touching_the_tallies() {
        let cache: ShardedCache<StorageDistribution, Rational> = ShardedCache::new();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let missing = StorageDistribution::from_capacities(vec![9, 9]);
        assert_eq!(cache.peek(&d), None);
        cache.insert(d.clone(), Rational::ONE);
        assert_eq!(cache.peek(&d), Some(Rational::ONE));
        assert_eq!(cache.peek(&missing), None);
        let stats = cache.shard_stats();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let misses: u64 = stats.iter().map(|s| s.misses).sum();
        assert_eq!((hits, misses), (0, 0), "peek must not tally");
        // A tallying get still works as before.
        assert_eq!(cache.get(&d), Some(Rational::ONE));
        let hits: u64 = cache.shard_stats().iter().map(|s| s.hits).sum();
        assert_eq!(hits, 1);
    }

    #[test]
    fn sharded_cache_is_concurrently_usable() {
        let cache: ShardedCache<StorageDistribution, Rational> = ShardedCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let d = StorageDistribution::from_capacities(vec![t, i]);
                        cache.insert(d.clone(), Rational::new(1, (i + 1) as i128));
                        assert!(cache.get(&d).is_some());
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..200u64 {
                let d = StorageDistribution::from_capacities(vec![t, i]);
                assert_eq!(cache.get(&d), Some(Rational::new(1, (i + 1) as i128)));
            }
        }
    }

    #[test]
    fn stats_equality_ignores_wall_time() {
        let a = ExplorationStats {
            evaluations: 10,
            cache_hits: 5,
            max_states: 42,
            eval_nanos: 1_000,
            ..ExplorationStats::default()
        };
        let b = ExplorationStats {
            eval_nanos: 999_999,
            ..a
        };
        assert_eq!(a, b);
        let c = ExplorationStats {
            evaluations: 11,
            ..a
        };
        assert_ne!(a, c);
        let d = ExplorationStats { failures: 1, ..a };
        assert_ne!(a, d);
        let e = ExplorationStats {
            static_prunes: 3,
            ..a
        };
        assert_ne!(a, e);
        let f = ExplorationStats {
            dominance_prunes: 2,
            ..a
        };
        assert_ne!(a, f);
        // Warm-start counters are cache-timing artifacts: excluded from
        // `==` just like wall time.
        let g = ExplorationStats {
            warm_starts: 7,
            warm_start_states: 1234,
            ..a
        };
        assert_eq!(a, g);
        assert_eq!(a.requests(), 15);
        assert!((a.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ExplorationStats::default().cache_hit_rate(), 0.0);
        assert!((g.warm_start_hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(ExplorationStats::default().warm_start_hit_rate(), 0.0);
    }

    #[test]
    fn atomic_stats_accumulate_across_threads() {
        let stats = AtomicStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = &stats;
                scope.spawn(move || {
                    for i in 0..100 {
                        stats.record_evaluation(i, 10);
                        stats.record_cache_hit();
                        stats.record_warm_start(i);
                    }
                });
            }
        });
        let s = stats.snapshot();
        assert_eq!(s.evaluations, 400);
        assert_eq!(s.cache_hits, 400);
        assert_eq!(s.max_states, 99);
        assert_eq!(s.eval_nanos, 4_000);
        assert_eq!(s.warm_starts, 400);
        assert_eq!(s.warm_start_states, 4 * 4950);
        assert!((s.warm_start_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resolve_threads_auto_detects() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn completeness_markers_render() {
        let exact = Completeness::exact();
        assert!(exact.exact);
        assert_eq!(exact.to_string(), "exact");
        let partial = Completeness::truncated(CancelReason::Deadline, 12);
        assert!(!partial.exact);
        assert_eq!(partial.truncated_by, Some(CancelReason::Deadline));
        assert_eq!(
            partial.to_string(),
            "partial (truncated by deadline, 12 distributions skipped)"
        );
    }

    #[test]
    fn prune_kinds_are_recorded_and_named() {
        assert_eq!(PruneKind::Static.name(), "static-bound");
        assert_eq!(PruneKind::Dominance.to_string(), "dominance");
        let stats = AtomicStats::new();
        stats.record_prune(PruneKind::Static);
        stats.record_prune(PruneKind::Static);
        stats.record_prune(PruneKind::Dominance);
        let s = stats.snapshot();
        assert_eq!((s.static_prunes, s.dominance_prunes), (2, 1));
        assert!(
            s.to_string()
                .contains("2 pruned statically + 1 by dominance"),
            "{s}"
        );
    }

    #[test]
    fn phase_names_are_stable() {
        for (phase, name) in [
            (SearchPhase::Bounds, "bounds"),
            (SearchPhase::MinimalSize, "minimal-size"),
            (SearchPhase::FrontSearch, "front-search"),
            (SearchPhase::ConstraintSearch, "constraint-search"),
            (SearchPhase::GuidedSearch, "guided-search"),
        ] {
            assert_eq!(phase.name(), name);
            assert_eq!(phase.to_string(), name);
        }
    }
}
