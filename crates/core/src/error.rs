//! Error type for the design-space exploration.

use buffy_analysis::{AnalysisError, CancelReason};
use buffy_graph::GraphError;
use core::fmt;

/// Errors raised while exploring the storage/throughput design space.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// A graph-level problem (inconsistency, …).
    Graph(GraphError),
    /// An underlying throughput/MCM analysis failed.
    Analysis(AnalysisError),
    /// The requested constraint cannot be met: the throughput demanded
    /// exceeds the maximal achievable throughput of the graph.
    InfeasibleThroughput {
        /// The requested throughput, as a display string.
        requested: String,
        /// The maximal achievable throughput, as a display string.
        maximal: String,
    },
    /// The graph never reaches a positive throughput for any storage
    /// distribution within the configured size cap.
    NoPositiveThroughput,
    /// The search was cancelled (deadline, interrupt or exhausted budget)
    /// before it could establish even a partial result worth returning —
    /// e.g. during the bounds phase, or in a constraint search before any
    /// feasible witness was found. Searches cancelled *after* that point
    /// return a partial result instead of this error.
    Cancelled {
        /// Why the run was cancelled.
        reason: CancelReason,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Graph(e) => write!(f, "{e}"),
            ExploreError::Analysis(e) => write!(f, "{e}"),
            ExploreError::InfeasibleThroughput { requested, maximal } => write!(
                f,
                "requested throughput {requested} exceeds the maximal achievable throughput {maximal}"
            ),
            ExploreError::NoPositiveThroughput => {
                write!(f, "no storage distribution within bounds yields a positive throughput")
            }
            ExploreError::Cancelled { reason } => {
                write!(f, "exploration cancelled before any result was available: {reason}")
            }
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Graph(e) => Some(e),
            ExploreError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ExploreError {
    fn from(e: GraphError) -> Self {
        ExploreError::Graph(e)
    }
}

impl From<AnalysisError> for ExploreError {
    fn from(e: AnalysisError) -> Self {
        // Surface graph-level problems as `Graph` so callers see the same
        // error shape regardless of which analysis layer detected them.
        match e {
            AnalysisError::Graph(g) => ExploreError::Graph(g),
            AnalysisError::Cancelled { reason } => ExploreError::Cancelled { reason },
            other => ExploreError::Analysis(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ExploreError::InfeasibleThroughput {
            requested: "1/2".into(),
            maximal: "1/4".into(),
        };
        assert!(e.to_string().contains("1/2"));
        assert!(e.to_string().contains("1/4"));
        assert!(ExploreError::NoPositiveThroughput
            .to_string()
            .contains("positive"));
        let e: ExploreError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("no actors"));
        let e: ExploreError = AnalysisError::NotLive.into();
        assert!(e.to_string().contains("token-free"));
    }

    #[test]
    fn cancelled_analysis_maps_to_cancelled_explore() {
        let e: ExploreError = AnalysisError::Cancelled {
            reason: CancelReason::Deadline,
        }
        .into();
        assert_eq!(
            e,
            ExploreError::Cancelled {
                reason: CancelReason::Deadline
            }
        );
        assert!(e.to_string().contains("deadline"), "{e}");
    }
}
