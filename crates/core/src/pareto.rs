//! Pareto points and Pareto sets of the objective trade-off space.
//!
//! A storage distribution is *minimal* when no smaller distribution
//! realizes at least the same throughput (paper §8). The set of minimal
//! distributions — one per achievable throughput level — forms the Pareto
//! front charted in the paper's Figures 5 and 13. Dominance is ranked
//! through each point's [`ObjectiveVector`], so the same set machinery
//! carries the default storage/throughput pair and any extended space
//! (e.g. with the energy axis) unchanged.

use crate::objective::{ObjectiveKind, ObjectiveVector};
use buffy_graph::{Rational, StorageDistribution};
use core::fmt;

/// One point of the trade-off space: a distribution, its objective
/// vector, and the paper's two axes broken out for direct access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint {
    /// The witnessing storage distribution.
    pub distribution: StorageDistribution,
    /// Its size `sz(γ)`.
    pub size: u64,
    /// The throughput of the observed actor under it.
    pub throughput: Rational,
    /// All declared objective values, including the two above.
    pub objectives: ObjectiveVector,
}

impl ParetoPoint {
    /// Creates a point in the default storage/throughput space.
    pub fn new(distribution: StorageDistribution, throughput: Rational) -> ParetoPoint {
        let size = distribution.size();
        ParetoPoint {
            distribution,
            size,
            throughput,
            objectives: ObjectiveVector::pair(size, throughput),
        }
    }

    /// Creates a point in the storage/throughput/energy space.
    pub fn with_energy(
        distribution: StorageDistribution,
        throughput: Rational,
        energy: Rational,
    ) -> ParetoPoint {
        let size = distribution.size();
        ParetoPoint {
            distribution,
            size,
            throughput,
            objectives: ObjectiveVector::triple(size, throughput, energy),
        }
    }

    /// The energy value, when the point carries the energy axis.
    pub fn energy(&self) -> Option<Rational> {
        self.objectives.get(ObjectiveKind::Energy)
    }
}

impl fmt::Display for ParetoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size {:>4}  throughput {:>8}  ",
            self.size,
            self.throughput.to_string(),
        )?;
        if let Some(energy) = self.energy() {
            write!(f, "energy {:>8}  ", energy.to_string())?;
        }
        write!(f, "γ = {}", self.distribution)
    }
}

/// A dominance-filtered set of [`ParetoPoint`]s, kept sorted by size
/// (ascending) with strictly increasing throughput.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParetoSet {
    points: Vec<ParetoPoint>,
}

impl ParetoSet {
    /// Creates an empty set.
    pub fn new() -> ParetoSet {
        ParetoSet::default()
    }

    /// Inserts a candidate point, dropping it if dominated and evicting
    /// points it dominates. Returns whether the point was kept.
    ///
    /// Dominance is the weak product order over the point's
    /// [`ObjectiveVector`] (in the default space: `(s, t)` dominates
    /// `(s', t')` when `s ≤ s'` and `t ≥ t'`). Zero-throughput points are
    /// never kept (a deadlocked distribution is not a trade-off). When a
    /// candidate ties an incumbent on *every* objective, the point with
    /// the lexicographically smaller distribution wins — a deterministic
    /// choice independent of insertion order, so parallel merges produce
    /// byte-identical fronts.
    pub fn insert(&mut self, point: ParetoPoint) -> bool {
        if point.throughput.is_zero() {
            return false;
        }
        if let Some(incumbent) = self
            .points
            .iter_mut()
            .find(|p| p.objectives == point.objectives)
        {
            if point.distribution.as_slice() < incumbent.distribution.as_slice() {
                *incumbent = point;
                return true;
            }
            return false;
        }
        if self
            .points
            .iter()
            .any(|p| p.objectives.dominates(&point.objectives))
        {
            return false;
        }
        self.points
            .retain(|p| !point.objectives.dominates(&p.objectives));
        let pos = self
            .points
            .partition_point(|p| (p.size, p.throughput) < (point.size, point.throughput));
        self.points.insert(pos, point);
        #[cfg(feature = "strict-invariants")]
        self.assert_antichain();
        true
    }

    /// Hard invariant check compiled in by the `strict-invariants`
    /// feature: the front is an antichain under objective dominance and
    /// stays sorted by (size, throughput) — in the default space that
    /// means sizes and throughputs both strictly increase along it.
    #[cfg(feature = "strict-invariants")]
    fn assert_antichain(&self) {
        for w in self.points.windows(2) {
            assert!(
                (w[0].size, w[0].throughput) < (w[1].size, w[1].throughput),
                "Pareto front order violated: ({}, {}) next to ({}, {})",
                w[0].size,
                w[0].throughput,
                w[1].size,
                w[1].throughput
            );
        }
        for (i, p) in self.points.iter().enumerate() {
            for (j, q) in self.points.iter().enumerate() {
                assert!(
                    i == j || !p.objectives.dominates(&q.objectives),
                    "Pareto antichain violated: ({}, {}) dominates ({}, {})",
                    p.size,
                    p.throughput,
                    q.size,
                    q.throughput
                );
            }
        }
    }

    /// The points, sorted by size ascending (throughput strictly
    /// increasing).
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The smallest point whose throughput is at least `throughput` — the
    /// answer to the paper's core question: *the minimal storage needed to
    /// meet a throughput constraint*.
    pub fn min_size_for_throughput(&self, throughput: Rational) -> Option<&ParetoPoint> {
        self.points.iter().find(|p| p.throughput >= throughput)
    }

    /// The highest-throughput point with size at most `size`.
    pub fn max_throughput_for_size(&self, size: u64) -> Option<&ParetoPoint> {
        self.points.iter().rev().find(|p| p.size <= size)
    }

    /// The point realizing the maximal throughput (the right end of the
    /// front).
    pub fn maximal(&self) -> Option<&ParetoPoint> {
        self.points.last()
    }

    /// The smallest positive-throughput point (the left end of the front).
    pub fn minimal(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }
}

impl IntoIterator for ParetoSet {
    type Item = ParetoPoint;
    type IntoIter = std::vec::IntoIter<ParetoPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a ParetoSet {
    type Item = &'a ParetoPoint;
    type IntoIter = std::slice::Iter<'a, ParetoPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl Extend<ParetoPoint> for ParetoSet {
    fn extend<T: IntoIterator<Item = ParetoPoint>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl FromIterator<ParetoPoint> for ParetoSet {
    fn from_iter<T: IntoIterator<Item = ParetoPoint>>(iter: T) -> Self {
        let mut s = ParetoSet::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(caps: &[u64], thr: Rational) -> ParetoPoint {
        ParetoPoint::new(StorageDistribution::from_capacities(caps.to_vec()), thr)
    }

    #[test]
    fn insert_keeps_front_sorted_and_strict() {
        let mut s = ParetoSet::new();
        assert!(s.insert(pt(&[4, 2], Rational::new(1, 7))));
        assert!(s.insert(pt(&[7, 3], Rational::new(1, 4))));
        assert!(s.insert(pt(&[6, 2], Rational::new(1, 6))));
        assert!(s.insert(pt(&[6, 3], Rational::new(1, 5))));
        assert_eq!(s.len(), 4);
        let sizes: Vec<u64> = s.points().iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![6, 8, 9, 10]);
        let thr: Vec<Rational> = s.points().iter().map(|p| p.throughput).collect();
        assert!(thr.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dominated_points_rejected_and_evicted() {
        let mut s = ParetoSet::new();
        assert!(s.insert(pt(&[4, 2], Rational::new(1, 7))));
        // ⟨5,2⟩ same throughput, bigger: dominated (the paper's example of
        // a non-minimal distribution).
        assert!(!s.insert(pt(&[5, 2], Rational::new(1, 7))));
        // A better point at the same size evicts the old one.
        assert!(s.insert(pt(&[3, 3], Rational::new(1, 6))));
        assert_eq!(s.len(), 1);
        assert_eq!(s.points()[0].throughput, Rational::new(1, 6));
        // Equal objectives: the lexicographically smaller distribution
        // wins, whichever arrives first.
        assert!(s.insert(pt(&[2, 4], Rational::new(1, 6))));
        assert_eq!(s.points()[0].distribution.as_slice(), &[2, 4]);
        assert!(!s.insert(pt(&[3, 3], Rational::new(1, 6))));
        assert_eq!(s.points()[0].distribution.as_slice(), &[2, 4]);
    }

    #[test]
    fn equal_objective_tie_break_is_insertion_order_independent() {
        let candidates = [
            pt(&[3, 3], Rational::new(1, 6)),
            pt(&[2, 4], Rational::new(1, 6)),
            pt(&[4, 2], Rational::new(1, 6)),
        ];
        let forward: ParetoSet = candidates.iter().cloned().collect();
        let backward: ParetoSet = candidates.iter().rev().cloned().collect();
        assert_eq!(forward, backward);
        assert_eq!(forward.points()[0].distribution.as_slice(), &[2, 4]);
    }

    fn pt3(caps: &[u64], thr: Rational, energy: Rational) -> ParetoPoint {
        ParetoPoint::with_energy(
            StorageDistribution::from_capacities(caps.to_vec()),
            thr,
            energy,
        )
    }

    #[test]
    fn three_dimensional_dominance_keeps_energy_incomparable_points() {
        let mut s = ParetoSet::new();
        assert!(s.insert(pt3(&[4, 2], Rational::new(1, 7), Rational::new(73, 1))));
        // Bigger but same throughput with lower energy would be dominated
        // in 2D; an honest third axis keeps it only if energy improves.
        assert!(s.insert(pt3(&[5, 2], Rational::new(1, 7), Rational::new(60, 1))));
        assert_eq!(s.len(), 2);
        // With equal energy the 2D dominance argument applies again.
        assert!(!s.insert(pt3(&[6, 2], Rational::new(1, 7), Rational::new(60, 1))));
        // A point better on all three axes evicts both.
        assert!(s.insert(pt3(&[4, 2], Rational::new(1, 4), Rational::new(50, 1))));
        assert_eq!(s.len(), 1);
        assert_eq!(s.points()[0].energy(), Some(Rational::new(50, 1)));
    }

    #[test]
    fn zero_throughput_never_kept() {
        let mut s = ParetoSet::new();
        assert!(!s.insert(pt(&[1, 1], Rational::ZERO)));
        assert!(s.is_empty());
    }

    #[test]
    fn queries() {
        let s: ParetoSet = [
            pt(&[4, 2], Rational::new(1, 7)),
            pt(&[6, 2], Rational::new(1, 6)),
            pt(&[6, 3], Rational::new(1, 5)),
            pt(&[7, 3], Rational::new(1, 4)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            s.min_size_for_throughput(Rational::new(1, 6)).unwrap().size,
            8
        );
        assert_eq!(
            s.min_size_for_throughput(Rational::new(3, 20))
                .unwrap()
                .size,
            8
        );
        assert!(s.min_size_for_throughput(Rational::new(1, 2)).is_none());
        assert_eq!(
            s.max_throughput_for_size(9).unwrap().throughput,
            Rational::new(1, 5)
        );
        assert!(s.max_throughput_for_size(5).is_none());
        assert_eq!(s.maximal().unwrap().throughput, Rational::new(1, 4));
        assert_eq!(s.minimal().unwrap().size, 6);
    }

    #[test]
    fn display_is_informative() {
        let p = pt(&[4, 2], Rational::new(1, 7));
        let s = p.to_string();
        assert!(s.contains("1/7"));
        assert!(s.contains("<4, 2>"));
    }

    #[test]
    fn iteration() {
        let s: ParetoSet = [pt(&[4, 2], Rational::new(1, 7))].into_iter().collect();
        assert_eq!((&s).into_iter().count(), 1);
        assert_eq!(s.into_iter().count(), 1);
    }
}
