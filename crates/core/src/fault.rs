//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] decides, for every *site* where the runtime can fail
//! (worker panics, checkpoint I/O, cancellation races, arena pressure),
//! whether the site's *n*-th occurrence injects a fault. The decision is
//! a pure function of `(seed, site, occurrence-index)` — no wall clock,
//! no global RNG — so a given seed reproduces the exact same fault
//! schedule on every run, machine, and thread count where the occurrence
//! order is itself deterministic (single-threaded runs, or per-site
//! streams that are totals rather than orderings).
//!
//! The plan generalizes the old `fail_distribution` test hook in
//! [`EvalPipeline`](crate::pipeline): instead of failing one named
//! distribution, a plan schedules faults over the whole run. Hooks are
//! zero-cost when no plan is installed — every injection point guards on
//! an `Option` that is `None` in production, one branch and no atomics.
//!
//! Occurrence counters are relaxed atomics: concurrent workers may
//! interleave their draws, but each draw still consumes exactly one
//! index of the site's deterministic decision stream, so the *number* of
//! injected faults per site is reproducible even when their assignment
//! to particular evaluations is not. The `buffy chaos` driver runs
//! single-threaded so the full schedule is reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

use buffy_analysis::fx_hash;

/// Number of distinct fault sites (length of the per-site arrays).
pub const FAULT_SITES: usize = 5;

/// A place in the runtime where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A worker panic inside a throughput evaluation (contained by the
    /// pipeline's `catch_unwind`).
    EvalPanic,
    /// A spurious cancellation request racing the run, as if a SIGINT or
    /// deadline fired mid-exploration.
    SpuriousCancel,
    /// An arena-pressure spike: a burst of noted states pushing the run
    /// toward its memory budget.
    ArenaPressure,
    /// A short/torn write while persisting a checkpoint temp file.
    CheckpointWrite,
    /// A failed rename when atomically publishing a checkpoint.
    CheckpointRename,
}

impl FaultSite {
    /// All sites, in index order.
    pub const ALL: [FaultSite; FAULT_SITES] = [
        FaultSite::EvalPanic,
        FaultSite::SpuriousCancel,
        FaultSite::ArenaPressure,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointRename,
    ];

    /// Stable machine-readable name, used in chaos reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::EvalPanic => "eval-panic",
            FaultSite::SpuriousCancel => "spurious-cancel",
            FaultSite::ArenaPressure => "arena-pressure",
            FaultSite::CheckpointWrite => "checkpoint-write",
            FaultSite::CheckpointRename => "checkpoint-rename",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::EvalPanic => 0,
            FaultSite::SpuriousCancel => 1,
            FaultSite::ArenaPressure => 2,
            FaultSite::CheckpointWrite => 3,
            FaultSite::CheckpointRename => 4,
        }
    }
}

/// A seeded, deterministic fault schedule.
///
/// Each site has an injection rate `num/den`; occurrence `i` of a site
/// injects iff `fx_hash((seed, site, i)) % den < num`. Rates of `0/1`
/// (the default) never inject, so an all-zero plan behaves exactly like
/// no plan at all.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [(u64, u64); FAULT_SITES],
    occurrences: [AtomicU64; FAULT_SITES],
    injected: [AtomicU64; FAULT_SITES],
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero (injects nothing
    /// until [`with_rate`](FaultPlan::with_rate) arms a site).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [(0, 1); FAULT_SITES],
            occurrences: Default::default(),
            injected: Default::default(),
        }
    }

    /// The canonical chaos mix used by `buffy chaos`: frequent checkpoint
    /// I/O faults, occasional evaluation panics and arena spikes, rare
    /// spurious cancellations. The evaluation-facing rates are kept low
    /// enough that most schedules survive the load-bearing bounds phase
    /// and reach the exit-0/exit-3 paths too, not just early errors.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rate(FaultSite::EvalPanic, 1, 128)
            .with_rate(FaultSite::SpuriousCancel, 1, 512)
            .with_rate(FaultSite::ArenaPressure, 1, 64)
            .with_rate(FaultSite::CheckpointWrite, 1, 4)
            .with_rate(FaultSite::CheckpointRename, 1, 8)
    }

    /// Sets a site's injection rate to `num` in `den`. A zero denominator
    /// is treated as `0/1` (never inject).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, num: u64, den: u64) -> FaultPlan {
        self.rates[site.index()] = if den == 0 { (0, 1) } else { (num, den) };
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next occurrence of `site` and reports whether it should
    /// inject a fault. Pure in `(seed, site, occurrence-index)`: the
    /// `i`-th call for a site always returns the same answer for a given
    /// seed, regardless of when or from which thread it is made.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let idx = site.index();
        let (num, den) = self.rates[idx];
        let occ = self.occurrences[idx].fetch_add(1, Ordering::Relaxed);
        if num == 0 {
            return false;
        }
        let inject = fx_hash(&(self.seed, idx as u64, occ)) % den < num;
        if inject {
            self.injected[idx].fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// How many times `site` has been drawn so far.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.occurrences[site.index()].load(Ordering::Relaxed)
    }

    /// How many of those draws injected a fault.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn decisions_are_pure_in_seed_site_and_index() {
        let a = FaultPlan::chaos(7);
        let b = FaultPlan::chaos(7);
        for _ in 0..512 {
            for site in FaultSite::ALL {
                assert_eq!(a.should_inject(site), b.should_inject(site));
            }
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(
            a.total_injected() > 0,
            "chaos rates should fire in 512 draws"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::chaos(0);
        let b = FaultPlan::chaos(1);
        let draws_a: Vec<bool> = (0..256)
            .map(|_| a.should_inject(FaultSite::EvalPanic))
            .collect();
        let draws_b: Vec<bool> = (0..256)
            .map(|_| b.should_inject(FaultSite::EvalPanic))
            .collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        // Interleaving draws across sites must not disturb any single
        // site's stream: compare against a plan drawing one site only.
        let mixed = FaultPlan::chaos(42);
        let solo = FaultPlan::chaos(42);
        let mut mixed_writes = Vec::new();
        for i in 0..256 {
            if i % 3 == 0 {
                let _ = mixed.should_inject(FaultSite::EvalPanic);
            }
            mixed_writes.push(mixed.should_inject(FaultSite::CheckpointWrite));
        }
        let solo_writes: Vec<bool> = (0..256)
            .map(|_| solo.should_inject(FaultSite::CheckpointWrite))
            .collect();
        assert_eq!(mixed_writes, solo_writes);
    }

    #[test]
    fn zero_rate_site_never_injects_but_still_counts() {
        let plan = FaultPlan::new(3).with_rate(FaultSite::EvalPanic, 1, 2);
        for _ in 0..64 {
            assert!(!plan.should_inject(FaultSite::CheckpointRename));
        }
        assert_eq!(plan.occurrences(FaultSite::CheckpointRename), 64);
        assert_eq!(plan.injected(FaultSite::CheckpointRename), 0);
    }

    #[test]
    fn zero_denominator_is_never_inject() {
        let plan = FaultPlan::new(9).with_rate(FaultSite::EvalPanic, 5, 0);
        for _ in 0..32 {
            assert!(!plan.should_inject(FaultSite::EvalPanic));
        }
    }

    #[test]
    fn concurrent_draws_preserve_per_site_totals() {
        // With N threads each drawing K times, exactly N*K occurrence
        // indices are consumed, so the injected total equals the
        // single-threaded count over the same index range.
        const THREADS: usize = 4;
        const DRAWS: usize = 64;
        let plan = Arc::new(FaultPlan::new(11).with_rate(FaultSite::EvalPanic, 1, 3));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let plan = Arc::clone(&plan);
                scope.spawn(move || {
                    for _ in 0..DRAWS {
                        let _ = plan.should_inject(FaultSite::EvalPanic);
                    }
                });
            }
        });
        assert_eq!(
            plan.occurrences(FaultSite::EvalPanic),
            (THREADS * DRAWS) as u64
        );
        let reference = FaultPlan::new(11).with_rate(FaultSite::EvalPanic, 1, 3);
        let mut expect = 0;
        for _ in 0..THREADS * DRAWS {
            if reference.should_inject(FaultSite::EvalPanic) {
                expect += 1;
            }
        }
        assert_eq!(plan.injected(FaultSite::EvalPanic), expect);
    }
}
