//! Bounds on the storage/throughput design space (paper §8, Fig. 7).
//!
//! Three bounds box the space the exploration must search:
//!
//! - a **per-channel lower bound** on the capacity needed for any positive
//!   throughput (the classical BMLB bound of \[ALP97\]/\[Mur96\]):
//!   `p + c − gcd(p,c) + (d mod gcd(p,c))`, or `d` when the initial tokens
//!   alone exceed that;
//! - their sum, the **combined lower bound** `lb` on the distribution size;
//! - an **upper bound** `ub`: the size of a distribution realizing the
//!   maximal achievable throughput (the role \[GGD02\] plays in the paper).
//!   Larger distributions can never improve throughput further.
//!
//! Capacities only matter in steps of `gcd(p, c)` ([`channel_step`]): the
//! token count of a channel is always congruent to `d` modulo that gcd, so
//! intermediate capacities behave identically to the next-lower step.
//!
//! Both bounds are computed through the unified kernel: the generic forms
//! ([`lower_bound_distribution_for`], [`upper_bound_distribution_for`])
//! only ask a model the [`DataflowSemantics`] questions, so the same code
//! boxes the SDF and CSDF design spaces.

use crate::error::ExploreError;
use buffy_analysis::{
    bmlb, rate_step, throughput_for, Capacities, DataflowSemantics, ExplorationLimits,
};
use buffy_graph::{ActorId, Channel, ChannelId, Rational, SdfGraph, StorageDistribution};

/// Lower bound on the capacity of one channel for positive throughput
/// (BMLB, \[ALP97\]/\[Mur96\]).
///
/// ```
/// # use buffy_graph::SdfGraph;
/// # use buffy_core::channel_lower_bound;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// let g = b.build()?;
/// // p + c − gcd = 2 + 3 − 1 = 4: the α capacity of the paper's smallest
/// // positive-throughput distribution ⟨4, 2⟩.
/// assert_eq!(channel_lower_bound(g.channel(g.channel_by_name("alpha").unwrap())), 4);
/// # Ok(())
/// # }
/// ```
pub fn channel_lower_bound(channel: &Channel) -> u64 {
    bmlb(
        channel.production(),
        channel.consumption(),
        channel.initial_tokens(),
    )
}

/// The quantum in which growing a channel's capacity can change behaviour:
/// `gcd(production, consumption)`.
pub fn channel_step(channel: &Channel) -> u64 {
    rate_step(channel.production(), channel.consumption())
}

/// The distribution assigning every channel its lower bound; its size is
/// the combined lower bound `lb` of Fig. 7.
pub fn lower_bound_distribution(graph: &SdfGraph) -> StorageDistribution {
    lower_bound_distribution_for(graph)
}

/// The generic form of [`lower_bound_distribution`]: every channel at the
/// model-declared bound ([`DataflowSemantics::channel_lower_bound`]).
pub fn lower_bound_distribution_for<M: DataflowSemantics>(model: &M) -> StorageDistribution {
    (0..model.num_channels())
        .map(|i| model.channel_lower_bound(ChannelId::new(i)))
        .collect()
}

/// A distribution realizing the maximal achievable throughput of
/// `observed`, found by growing from the lower bounds and then shrinking
/// channel-by-channel; its size is the `ub` of Fig. 7.
///
/// The result is per-channel minimal (no single channel can shrink further
/// without losing throughput) but not necessarily size-minimal — the exact
/// minimum is what the design-space exploration itself determines.
///
/// # Errors
///
/// Propagates analysis failures; [`ExploreError::NoPositiveThroughput`] if
/// growth never reaches the maximal throughput within a generous cap.
pub fn upper_bound_distribution(
    graph: &SdfGraph,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<(StorageDistribution, Rational), ExploreError> {
    upper_bound_distribution_for(graph, observed, limits)
}

/// The generic form of [`upper_bound_distribution`]: works for any
/// [`DataflowSemantics`] model through the unified kernel.
///
/// # Errors
///
/// See [`upper_bound_distribution`].
pub fn upper_bound_distribution_for<M: DataflowSemantics>(
    model: &M,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<(StorageDistribution, Rational), ExploreError> {
    upper_bound_distribution_with(model, observed, &|dist| {
        let r = throughput_for(model, Capacities::from_distribution(dist), observed, limits)?;
        Ok(r.throughput)
    })
}

/// [`upper_bound_distribution_for`] with the throughput probes routed
/// through a caller-supplied evaluation function — the exploration drivers
/// pass their memoized [`crate::explore::Evaluator`] so that bound probes
/// are cached, counted in the [`crate::ExplorationStats`] and reported to
/// the [`crate::ExploreObserver`].
pub(crate) fn upper_bound_distribution_with<M: DataflowSemantics>(
    model: &M,
    observed: ActorId,
    eval: &dyn Fn(&StorageDistribution) -> Result<Rational, ExploreError>,
) -> Result<(StorageDistribution, Rational), ExploreError> {
    let q = model.repetition_cycles()?;
    let thr_max = model.maximal_throughput(observed)?;

    // Start from a heuristic: room for one full iteration of productions
    // and consumptions plus initial tokens, at least the lower bound.
    let mut dist: StorageDistribution = (0..model.num_channels())
        .map(|i| {
            let cid = ChannelId::new(i);
            let iter_room = model.initial_tokens(cid)
                + model.cycle_production(cid) * q[model.channel_source(cid).index()]
                + model.cycle_consumption(cid) * q[model.channel_target(cid).index()];
            iter_room.max(model.channel_lower_bound(cid))
        })
        .collect();

    // Grow until the maximal throughput is reached (monotonicity
    // guarantees this terminates at some finite size).
    let mut guard = 0;
    loop {
        if eval(&dist)? == thr_max {
            break;
        }
        dist = dist.as_slice().iter().map(|&c| c * 2).collect();
        guard += 1;
        if guard > 64 {
            return Err(ExploreError::NoPositiveThroughput);
        }
    }

    // Shrink each channel in turn to its per-channel minimum (binary
    // search over capacity steps, holding the other channels fixed).
    for i in 0..model.num_channels() {
        let cid = ChannelId::new(i);
        let step = model.channel_step(cid);
        let lo_cap = model.channel_lower_bound(cid);
        let mut lo = 0u64; // in steps above lo_cap — may lose throughput
                           // Round up to the step grid (monotonicity: rounding up keeps the
                           // maximal throughput).
        let mut hi = (dist.get(cid) - lo_cap).div_ceil(step);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut probe = dist.clone();
            probe.set(cid, lo_cap + mid * step);
            if eval(&probe)? == thr_max {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        dist.set(cid, lo_cap + hi * step);
    }

    Ok((dist, thr_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_analysis::throughput;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example_lower_bounds() {
        let g = example();
        let lb = lower_bound_distribution(&g);
        // α: 2+3−1 = 4; β: 1+2−1 = 2 — the paper's ⟨4, 2⟩.
        assert_eq!(lb.as_slice(), &[4, 2]);
        assert_eq!(lb.size(), 6);
    }

    #[test]
    fn lower_bound_respects_initial_tokens() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        // gcd(4,6) = 2; d = 3 → bound 4+6−2 + (3 mod 2) = 9.
        b.channel_with_tokens("c1", x, 4, y, 6, 3).unwrap();
        // Initial tokens dominate: d = 50 > p+c−g.
        b.channel_with_tokens("c2", x, 4, y, 6, 50).unwrap();
        let g = b.build().unwrap();
        let lb = lower_bound_distribution(&g);
        assert_eq!(lb.as_slice(), &[9, 50]);
    }

    #[test]
    fn channel_steps() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c1", x, 4, y, 6).unwrap();
        b.channel("c2", x, 1, y, 5).unwrap();
        let g = b.build().unwrap();
        let steps: Vec<u64> = g.channels().map(|(_, c)| channel_step(c)).collect();
        assert_eq!(steps, vec![2, 1]);
    }

    #[test]
    fn capacities_between_steps_are_equivalent() {
        // With rates 4:6 every reachable token count is even; capacities 9
        // (= lb) and 10 must behave identically.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 3);
        b.channel("c", x, 4, y, 6).unwrap();
        let g = b.build().unwrap();
        let y = g.actor_by_name("y").unwrap();
        let t9 = throughput(&g, &StorageDistribution::from_capacities(vec![10]), y).unwrap();
        let t10 = throughput(&g, &StorageDistribution::from_capacities(vec![11]), y).unwrap();
        assert_eq!(t9.throughput, t10.throughput);
    }

    #[test]
    fn upper_bound_reaches_maximal_throughput() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let (ub, thr_max) = upper_bound_distribution(&g, c, ExplorationLimits::default()).unwrap();
        assert_eq!(thr_max, Rational::new(1, 4));
        let r = throughput(&g, &ub, c).unwrap();
        assert_eq!(r.throughput, thr_max);
        // Per-channel minimal: shrinking any single channel by its step
        // loses the maximal throughput.
        for (cid, ch) in g.channels() {
            let step = channel_step(ch);
            if ub.get(cid) < channel_lower_bound(ch) + step {
                continue;
            }
            let mut probe = ub.clone();
            probe.set(cid, ub.get(cid) - step);
            let r = throughput(&g, &probe, c).unwrap();
            assert!(r.throughput < thr_max, "channel {} not minimal", ch.name());
        }
        // The paper: maximal throughput is reached at distribution size 10.
        // The per-channel-minimal ub may be slightly larger than the global
        // optimum, but never smaller.
        assert!(ub.size() >= 10);
    }

    #[test]
    fn lower_bound_distribution_of_example_is_live() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let lb = lower_bound_distribution(&g);
        let r = throughput(&g, &lb, c).unwrap();
        assert!(!r.deadlocked);
    }
}
