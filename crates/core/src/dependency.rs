//! Dependency-guided design-space exploration.
//!
//! The paper's exhaustive per-size enumeration is exact but exponential in
//! the number of channels (§9, §11); its conclusions call for combining
//! the technique with pruning heuristics (§12). This module implements the
//! pruning direction the authors later adopted in the SDF3 tool suite:
//! starting from the per-channel lower bounds, only *storage-dependent*
//! channels — channels whose lack of space actually blocked a token-ready
//! actor during the periodic phase (see
//! [`buffy_analysis::throughput_with_dependencies`]) — are grown, each by
//! its behavioural step size.
//!
//! On every graph in this repository's test suite (the paper's gallery and
//! seeded random graphs) the guided search produces exactly the same
//! (size, throughput) Pareto front as the exhaustive search, while
//! evaluating far fewer distributions; the equivalence is asserted by
//! integration tests and measured by the `dse` ablation benchmark. The
//! refined causal-dependency notion with a completeness proof is
//! follow-up work by the same authors and out of scope of the 2006 paper.

use crate::bounds::upper_bound_distribution_with;
use crate::enumerate::DistributionSpace;
use crate::error::ExploreError;
use crate::explore::{ExplorationResult, ExploreOptions};
use crate::pareto::{ParetoPoint, ParetoSet};
use crate::runtime::{AtomicStats, ExploreObserver, NoopObserver, SearchPhase};
use buffy_analysis::{
    throughput_for, throughput_with_dependencies_for, Capacities, DataflowSemantics,
};
use buffy_graph::{ChannelId, Rational, SdfGraph, StorageDistribution};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// Explores the design space by growing storage-dependent channels only.
///
/// Accepts the same options as
/// [`explore_design_space`](crate::explore_design_space); the `threads`
/// option is ignored (the frontier is evaluated sequentially), and
/// `quantum` only thins the reported front.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
///
/// # Examples
///
/// ```
/// use buffy_core::{explore_dependency_guided, ExploreOptions};
/// use buffy_graph::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let r = explore_dependency_guided(&g, &ExploreOptions::default())?;
/// let sizes: Vec<u64> = r.pareto.points().iter().map(|p| p.size).collect();
/// assert_eq!(sizes, vec![6, 8, 9, 10]); // identical to the exhaustive front
/// # Ok(())
/// # }
/// ```
pub fn explore_dependency_guided(
    graph: &SdfGraph,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_dependency_guided_for(graph, options)
}

/// The generic form of [`explore_dependency_guided`]: the same guided
/// search for any [`DataflowSemantics`] model through the unified kernel.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
pub fn explore_dependency_guided_for<M: DataflowSemantics>(
    model: &M,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_dependency_guided_observed(model, options, &NoopObserver)
}

/// [`explore_dependency_guided_for`] with a structured [`ExploreObserver`]
/// receiving evaluation, Pareto-accept and phase events as the guided
/// frontier is consumed.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
pub fn explore_dependency_guided_observed<M: DataflowSemantics>(
    model: &M,
    options: &ExploreOptions,
    observer: &dyn ExploreObserver,
) -> Result<ExplorationResult, ExploreError> {
    let observed = options
        .observed
        .unwrap_or_else(|| model.default_observed_actor());
    let space = DistributionSpace::for_model(model);
    let lb_size = space.min_size();

    let stats = AtomicStats::new();
    // Bound probes run the plain throughput analysis (no dependency
    // tracking) but are still timed, counted and observed.
    observer.phase_started(SearchPhase::Bounds);
    let (ub_dist, thr_max_graph) = upper_bound_distribution_with(model, observed, &|d| {
        observer.evaluation_started(d);
        let start = Instant::now();
        let r = throughput_for(
            model,
            Capacities::from_distribution(d),
            observed,
            options.limits,
        )?;
        let nanos = start.elapsed().as_nanos() as u64;
        stats.record_evaluation(r.states_stored as u64, nanos);
        observer.evaluation_finished(d, r.throughput, r.states_stored as u64, nanos);
        Ok(r.throughput)
    })?;
    let ub_size = options
        .max_size
        .unwrap_or_else(|| ub_dist.size())
        .max(lb_size);
    let thr_cap = match options.max_throughput {
        Some(cap) => cap.min(thr_max_graph),
        None => thr_max_graph,
    };

    let steps: Vec<u64> = (0..model.num_channels())
        .map(|i| model.channel_step(ChannelId::new(i)))
        .collect();

    observer.phase_started(SearchPhase::GuidedSearch);
    let mut pareto = ParetoSet::new();
    let mut seen: HashSet<StorageDistribution> = HashSet::new();
    let mut frontier: BinaryHeap<Reverse<(u64, StorageDistribution)>> = BinaryHeap::new();
    let start = space.min_distribution();
    seen.insert(start.clone());
    frontier.push(Reverse((start.size(), start)));

    let mut found_positive = false;

    while let Some(Reverse((size, dist))) = frontier.pop() {
        observer.evaluation_started(&dist);
        let eval_start = Instant::now();
        let r = throughput_with_dependencies_for(model, &dist, observed, options.limits)?;
        let nanos = eval_start.elapsed().as_nanos() as u64;
        stats.record_evaluation(r.report.states_stored as u64, nanos);
        observer.evaluation_finished(
            &dist,
            r.report.throughput,
            r.report.states_stored as u64,
            nanos,
        );

        let thr = r.report.throughput;
        if !thr.is_zero() {
            found_positive = true;
            let p = ParetoPoint::new(dist.clone(), thr);
            if pareto.insert(p.clone()) {
                observer.pareto_accepted(&p);
            }
            if thr >= thr_cap {
                continue; // growing further cannot be Pareto-optimal
            }
        }

        for cid in r.dependent_channels() {
            let step = steps[cid.index()];
            let child = dist.grown(cid, step);
            if size + step > ub_size {
                continue;
            }
            if let Some(caps) = &options.max_channel_caps {
                if child.get(cid) > caps.get(cid) {
                    continue; // §8: per-channel capacity constraint
                }
            }
            if seen.insert(child.clone()) {
                frontier.push(Reverse((child.size(), child)));
            }
        }
    }

    if !found_positive {
        return Err(ExploreError::NoPositiveThroughput);
    }

    // Optional thinning / clipping to match the exhaustive explorer's
    // options semantics.
    if options.quantum.is_some()
        || options.min_throughput.is_some()
        || options.max_throughput.is_some()
    {
        let min_t = options.min_throughput.unwrap_or(Rational::ZERO);
        let max_t = options.max_throughput.unwrap_or(thr_max_graph);
        let mut thinned = ParetoSet::new();
        let mut last_level: Option<Rational> = None;
        for p in pareto.points() {
            if p.throughput < min_t || p.throughput > max_t {
                continue;
            }
            if let Some(quantum) = options.quantum {
                let level = p.throughput.quantize_down(quantum);
                if last_level == Some(level) {
                    continue;
                }
                last_level = Some(level);
            }
            thinned.insert(p.clone());
        }
        pareto = thinned;
    }

    // The guided search never revisits a distribution (the `seen` set
    // dedups the frontier), so its cache-hit count is genuinely zero.
    Ok(ExplorationResult {
        pareto,
        max_throughput: thr_max_graph,
        lower_bound_size: lb_size,
        upper_bound_size: ub_size,
        stats: stats.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_design_space;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn front(r: &ExplorationResult) -> Vec<(u64, Rational)> {
        r.pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect()
    }

    #[test]
    fn matches_exhaustive_on_example() {
        let g = example();
        let exhaustive = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let guided = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(front(&exhaustive), front(&guided));
        // And the guided search should not evaluate more points.
        assert!(
            guided.stats.evaluations <= exhaustive.stats.evaluations,
            "guided {} vs exhaustive {}",
            guided.stats.evaluations,
            exhaustive.stats.evaluations
        );
    }

    #[test]
    fn respects_size_cap() {
        let g = example();
        let opts = ExploreOptions {
            max_size: Some(8),
            ..ExploreOptions::default()
        };
        let guided = explore_dependency_guided(&g, &opts).unwrap();
        assert!(guided.pareto.points().iter().all(|p| p.size <= 8));
        assert_eq!(
            guided.pareto.maximal().unwrap().throughput,
            Rational::new(1, 6)
        );
    }

    #[test]
    fn quantized_front_is_thinner() {
        let g = example();
        let opts = ExploreOptions {
            quantum: Some(Rational::new(1, 10)),
            ..ExploreOptions::default()
        };
        let guided = explore_dependency_guided(&g, &opts).unwrap();
        assert!(guided.pareto.len() <= 2);
        assert!(!guided.pareto.is_empty());
    }

    #[test]
    fn matches_exhaustive_on_ring() {
        // q = (3, 6, 2): 3·2 = 6·1, 6·1 = 2·3, 2·3 = 3·2.
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        let z = b.actor("z", 1);
        b.channel("c1", x, 2, y, 1).unwrap();
        b.channel("c2", y, 1, z, 3).unwrap();
        b.channel_with_tokens("c3", z, 3, x, 2, 6).unwrap();
        let g = b.build().unwrap();
        let exhaustive = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let guided = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(front(&exhaustive), front(&guided));
    }
}
