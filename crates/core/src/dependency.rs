//! Dependency-guided design-space exploration.
//!
//! The paper's exhaustive per-size enumeration is exact but exponential in
//! the number of channels (§9, §11); its conclusions call for combining
//! the technique with pruning heuristics (§12). This module implements the
//! pruning direction the authors later adopted in the SDF3 tool suite:
//! starting from the per-channel lower bounds, only *storage-dependent*
//! channels — channels whose lack of space actually blocked a token-ready
//! actor during the periodic phase (see
//! [`buffy_analysis::throughput_with_dependencies`]) — are grown, each by
//! its behavioural step size.
//!
//! On every graph in this repository's test suite (the paper's gallery and
//! seeded random graphs) the guided search produces exactly the same
//! (size, throughput) Pareto front as the exhaustive search, while
//! evaluating far fewer distributions; the equivalence is asserted by
//! integration tests and measured by the `dse` ablation benchmark. The
//! refined causal-dependency notion with a completeness proof is
//! follow-up work by the same authors and out of scope of the 2006 paper.

use crate::bounds::upper_bound_distribution_with;
use crate::enumerate::DistributionSpace;
use crate::error::ExploreError;
use crate::explore::{ExplorationResult, ExploreOptions};
use crate::pareto::ParetoSet;
use crate::pipeline::{clip_front, EvalPipeline};
use crate::runtime::{Completeness, ExploreObserver, NoopObserver, SearchPhase, SkippedSize};
use buffy_analysis::{
    dependencies_from_run_for, throughput_with_dependencies_for, CancelReason, DataflowSemantics,
};
use buffy_graph::{ChannelId, Rational, SdfGraph, StorageDistribution};
use buffy_telemetry::{labeled, names};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Explores the design space by growing storage-dependent channels only.
///
/// Accepts the same options as
/// [`explore_design_space`](crate::explore_design_space); the `threads`
/// option is ignored (the frontier is evaluated sequentially) and
/// `quantum` only thins the reported front. Evaluations run through the
/// same `EvalPipeline` as the exhaustive search: bound probes are
/// cached (a frontier candidate landing on a probed distribution is a
/// cache hit, not a re-analysis), checkpointed `warm_start` throughputs
/// are replayed, cold analyses warm-start from cached neighbours, and
/// the static-certificate / dominance prune oracle skips candidates it
/// can prove deadlocked (deriving their children from the deadlock
/// replay). Once an accepted point reaches the graph's maximal
/// throughput — at a size no larger than any queued candidate, by the
/// size-ordered frontier — the remaining frontier is provably dominated
/// and drained through the oracle: one cheap certificate replaces each
/// state-space analysis the unpruned search would have run. A cancel
/// token is honoured between frontier candidates (and inside the
/// bounds-phase analyses): when it trips, the unexpanded frontier is
/// reported as skipped sizes on a partial result.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
///
/// # Examples
///
/// ```
/// use buffy_core::{explore_dependency_guided, ExploreOptions};
/// use buffy_graph::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let r = explore_dependency_guided(&g, &ExploreOptions::default())?;
/// let sizes: Vec<u64> = r.pareto.points().iter().map(|p| p.size).collect();
/// assert_eq!(sizes, vec![6, 8, 9, 10]); // identical to the exhaustive front
/// # Ok(())
/// # }
/// ```
pub fn explore_dependency_guided(
    graph: &SdfGraph,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_dependency_guided_for(graph, options)
}

/// The generic form of [`explore_dependency_guided`]: the same guided
/// search for any [`DataflowSemantics`] model through the unified kernel.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
pub fn explore_dependency_guided_for<M: DataflowSemantics + Sync>(
    model: &M,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_dependency_guided_observed(model, options, &NoopObserver)
}

/// [`explore_dependency_guided_for`] with a structured [`ExploreObserver`]
/// receiving evaluation, Pareto-accept and phase events as the guided
/// frontier is consumed.
///
/// # Errors
///
/// Same as [`explore_design_space`](crate::explore_design_space).
pub fn explore_dependency_guided_observed<M: DataflowSemantics + Sync>(
    model: &M,
    options: &ExploreOptions,
    observer: &dyn ExploreObserver,
) -> Result<ExplorationResult, ExploreError> {
    let observed = options
        .observed
        .unwrap_or_else(|| model.default_observed_actor());
    let space = DistributionSpace::for_model(model);
    let lb_size = space.min_size();

    let eval = EvalPipeline::new(model, observed, options, observer)?;
    let cancel = options.cancel.clone().unwrap_or_default();
    let recorder = buffy_telemetry::active();
    let guided_skip_counter = |reason: &str| {
        recorder.as_ref().map(|r| {
            r.counter(
                &labeled(names::GUIDED_SKIPPED, "reason", reason),
                "Guided-frontier children discarded without evaluation, by reason.",
            )
        })
    };
    let skipped_ub = guided_skip_counter("ub-size");
    let skipped_caps = guided_skip_counter("channel-cap");
    // Bound probes run the plain throughput analysis (no dependency
    // tracking) through the shared memoised evaluator: timed, counted,
    // observed, cached and recorded in the prune oracle like every other
    // evaluation. Cancellation here leaves nothing to salvage and
    // surfaces as [`ExploreError::Cancelled`].
    observer.phase_started(SearchPhase::Bounds);
    let bounds_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::Bounds.name()));
    let (ub_dist, thr_max_graph) =
        upper_bound_distribution_with(model, observed, &|d| eval.eval(d))?;
    let ub_size = options
        .max_size
        .unwrap_or_else(|| ub_dist.size())
        .max(lb_size);
    let thr_cap = match options.max_throughput {
        Some(cap) => cap.min(thr_max_graph),
        None => thr_max_graph,
    };

    let steps: Vec<u64> = (0..model.num_channels())
        .map(|i| model.channel_step(ChannelId::new(i)))
        .collect();

    observer.phase_started(SearchPhase::GuidedSearch);
    drop(bounds_span);
    let _guided_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::GuidedSearch.name()));
    let mut pareto = ParetoSet::new();
    let mut seen: HashSet<StorageDistribution> = HashSet::new();
    let mut frontier: BinaryHeap<Reverse<(u64, StorageDistribution)>> = BinaryHeap::new();
    let start = space.min_distribution();
    seen.insert(start.clone());
    frontier.push(Reverse((start.size(), start)));

    let mut found_positive = false;
    let mut truncated: Option<CancelReason> = None;
    // Best throughput accepted so far. The frontier pops candidates in
    // nondecreasing size, so the point achieving `best` has size no
    // larger than any queued candidate; once `best` reaches the graph's
    // maximal achievable throughput, no remaining candidate can enter
    // the front (entering requires strictly greater throughput than
    // every no-larger point, and `thr_max_graph` bounds every
    // distribution) — the rest of the frontier is drained through the
    // prune oracle, one cheap certificate in place of each state-space
    // analysis the unpruned search would have run.
    let mut best = Rational::ZERO;

    while let Some(&Reverse((size, _))) = frontier.peek() {
        // The frontier is consumed one candidate at a time, so the cancel
        // token is honoured between candidates: on a trip the unexpanded
        // frontier becomes the skipped-size annotation below.
        if let Some(reason) = cancel.check() {
            truncated = Some(reason);
            break;
        }
        let Some(Reverse((_, dist))) = frontier.pop() else {
            unreachable!("peeked entry vanished");
        };
        if !best.is_zero() && best >= thr_max_graph {
            // Ceiling drain. The candidate is dominated whatever the
            // oracle says (see `best` above); consulting it anyway
            // attributes the skipped analysis to the certificate — which
            // always proves `≤ thr_max_graph` here, since the augmented
            // expansion contains every cycle of the plain one — and no
            // children are needed (they are dominated for the same
            // reason). Pruning *before* the ceiling is not attempted: a
            // pruned candidate's dependent set is unknown without an
            // analysis, and growing every channel instead explodes
            // combinatorially on wide graphs.
            let _ = eval.prunes_at_most(&dist, &best);
            continue;
        }
        // A statically proven deadlock skips the state-space analysis
        // entirely: the candidate contributes no front point (its
        // throughput is exactly zero), and its children come from the
        // deadlock replay below — the same channels the full analysis
        // would have reported as storage-dependent.
        let entry = if eval.prunes_zero(&dist) {
            None
        } else {
            let entry = eval.eval_full(&dist)?;
            if entry.failed {
                // A panicking analysis degrades to a zero-throughput leaf:
                // recorded and reported by the evaluator, no children
                // expanded.
                continue;
            }
            Some(entry)
        };

        if let Some(entry) = &entry {
            let thr = entry.throughput;
            if !thr.is_zero() {
                found_positive = true;
                if thr > best {
                    best = thr;
                }
                let p = eval.point(dist.clone(), thr);
                if pareto.insert(p.clone()) {
                    observer.pareto_accepted(&p);
                    if let Some(r) = &recorder {
                        r.trace_instant("pareto");
                    }
                }
                if thr >= thr_cap {
                    continue; // growing further cannot be Pareto-optimal
                }
            }
        }

        // Storage-dependency query. The memoised entry's cycle metadata
        // lets a deterministic replay of the recorded run answer it
        // without re-running the state-space search; entries without that
        // metadata (checkpointed warm-start throughputs) fall back to the
        // full dependency analysis. A panic in either path degrades the
        // candidate to a leaf.
        let (deadlocked, cycle_entry_time, period, has_meta) = match &entry {
            Some(e) => (
                e.deadlocked,
                e.cycle_entry_time,
                e.period,
                e.has_replay_meta,
            ),
            None => (true, 0, 0, true),
        };
        let dependent: Vec<bool> = if has_meta {
            match catch_unwind(AssertUnwindSafe(|| {
                dependencies_from_run_for(model, &dist, deadlocked, cycle_entry_time, period)
            })) {
                Ok(deps) => deps?,
                Err(_) => continue,
            }
        } else {
            match catch_unwind(AssertUnwindSafe(|| {
                throughput_with_dependencies_for(model, &dist, observed, options.limits)
            })) {
                Ok(r) => {
                    let r = r?;
                    let mut flags = vec![false; model.num_channels()];
                    for cid in r.dependent_channels() {
                        flags[cid.index()] = true;
                    }
                    flags
                }
                Err(_) => continue,
            }
        };

        for (i, dep) in dependent.iter().enumerate() {
            if !dep {
                continue;
            }
            let cid = ChannelId::new(i);
            let step = steps[i];
            let child = dist.grown(cid, step);
            if size + step > ub_size {
                if let Some(c) = &skipped_ub {
                    c.inc();
                }
                continue;
            }
            if let Some(caps) = &options.max_channel_caps {
                if child.get(cid) > caps.get(cid) {
                    if let Some(c) = &skipped_caps {
                        c.inc();
                    }
                    continue; // §8: per-channel capacity constraint
                }
            }
            if seen.insert(child.clone()) {
                frontier.push(Reverse((child.size(), child)));
            }
        }
    }

    if !found_positive && truncated.is_none() {
        return Err(ExploreError::NoPositiveThroughput);
    }

    // Annotate the unexpanded frontier of a truncated run, grouped by
    // size, under the sound bounds-phase throughput ceiling.
    let (completeness, skipped) = match truncated {
        None => (Completeness::exact(), Vec::new()),
        Some(reason) => {
            let mut by_size: BTreeMap<u64, u64> = BTreeMap::new();
            for Reverse((size, _)) in frontier.iter() {
                *by_size.entry(*size).or_insert(0) += 1;
            }
            let total = by_size.values().sum();
            let skipped = by_size
                .into_iter()
                .map(|(size, distributions)| SkippedSize {
                    size,
                    distributions,
                    throughput_bound: thr_max_graph,
                })
                .collect();
            (Completeness::truncated(reason, total), skipped)
        }
    };

    // Optional thinning / clipping to match the exhaustive explorer's
    // options semantics.
    let pareto = clip_front(pareto, options, thr_max_graph);

    let stats = eval.stats();
    Ok(ExplorationResult {
        pareto,
        max_throughput: thr_max_graph,
        lower_bound_size: lb_size,
        upper_bound_size: ub_size,
        completeness,
        skipped,
        failures: eval.take_failures(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_design_space;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn front(r: &ExplorationResult) -> Vec<(u64, Rational)> {
        r.pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect()
    }

    #[test]
    fn matches_exhaustive_on_example() {
        let g = example();
        let exhaustive = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let guided = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(front(&exhaustive), front(&guided));
        // And the guided search should not evaluate more points.
        assert!(
            guided.stats.evaluations <= exhaustive.stats.evaluations,
            "guided {} vs exhaustive {}",
            guided.stats.evaluations,
            exhaustive.stats.evaluations
        );
    }

    #[test]
    fn disarmed_fault_plan_is_invisible() {
        // The fault layer must be zero-cost when off: a plan with all
        // rates zero (and no plan at all) produce identical fronts and
        // identical deterministic statistics.
        let g = example();
        let clean = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        let opts = ExploreOptions {
            fault_plan: Some(std::sync::Arc::new(crate::fault::FaultPlan::new(7))),
            ..ExploreOptions::default()
        };
        let disarmed = explore_dependency_guided(&g, &opts).unwrap();
        assert_eq!(front(&clean), front(&disarmed));
        assert_eq!(clean.stats, disarmed.stats);
        assert_eq!(clean.stats.failures, 0);
    }

    #[test]
    fn respects_size_cap() {
        let g = example();
        let opts = ExploreOptions {
            max_size: Some(8),
            ..ExploreOptions::default()
        };
        let guided = explore_dependency_guided(&g, &opts).unwrap();
        assert!(guided.pareto.points().iter().all(|p| p.size <= 8));
        assert_eq!(
            guided.pareto.maximal().unwrap().throughput,
            Rational::new(1, 6)
        );
    }

    #[test]
    fn quantized_front_is_thinner() {
        let g = example();
        let opts = ExploreOptions {
            quantum: Some(Rational::new(1, 10)),
            ..ExploreOptions::default()
        };
        let guided = explore_dependency_guided(&g, &opts).unwrap();
        assert!(guided.pareto.len() <= 2);
        assert!(!guided.pareto.is_empty());
    }

    #[test]
    fn eval_budget_truncates_with_frontier_annotations() {
        use buffy_analysis::{CancelReason, CancelToken};
        use std::sync::Arc;

        let g = example();
        let full = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        assert!(full.completeness.exact);
        let mut saw_partial = false;
        for budget in 1..full.stats.evaluations {
            let opts = ExploreOptions {
                cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget))),
                ..ExploreOptions::default()
            };
            let r = match explore_dependency_guided(&g, &opts) {
                Err(ExploreError::Cancelled { reason }) => {
                    assert_eq!(reason, CancelReason::EvaluationBudget);
                    continue;
                }
                other => other.unwrap(),
            };
            saw_partial = true;
            assert!(!r.completeness.exact, "budget {budget}");
            // Soundness: every partial point is dominated by (or equal
            // to) a point of the full front.
            for p in r.pareto.points() {
                assert!(
                    full.pareto
                        .points()
                        .iter()
                        .any(|q| q.size <= p.size && q.throughput >= p.throughput),
                    "budget {budget}: stray point {p}"
                );
            }
            for s in &r.skipped {
                assert_eq!(s.throughput_bound, full.max_throughput);
            }
            assert_eq!(
                r.completeness.distributions_skipped,
                r.skipped.iter().map(|s| s.distributions).sum::<u64>()
            );
        }
        assert!(saw_partial, "no budget produced a salvageable partial run");
    }

    #[test]
    fn injected_panic_degrades_one_frontier_candidate() {
        let g = example();
        // Fail the distribution behind the clean run's maximal front
        // point: the run must survive, minus (at most) that point.
        let full = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        let fail = full.pareto.maximal().unwrap().distribution.clone();
        let r = explore_dependency_guided(
            &g,
            &ExploreOptions {
                fail_distribution: Some(fail.clone()),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.stats.failures, 1);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].distribution, fail);
        assert!(r.completeness.exact);
        assert!(r.pareto.points().iter().all(|p| p.distribution != fail));
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn matches_exhaustive_on_ring() {
        // q = (3, 6, 2): 3·2 = 6·1, 6·1 = 2·3, 2·3 = 3·2.
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        let z = b.actor("z", 1);
        b.channel("c1", x, 2, y, 1).unwrap();
        b.channel("c2", y, 1, z, 3).unwrap();
        b.channel_with_tokens("c3", z, 3, x, 2, 6).unwrap();
        let g = b.build().unwrap();
        let exhaustive = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let guided = explore_dependency_guided(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(front(&exhaustive), front(&guided));
    }
}
