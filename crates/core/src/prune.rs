//! The prune oracle: static certificates plus monotone dominance.
//!
//! Every query answers a question the exact engine would answer the same
//! way — the oracle only *skips work*, it never changes a result. Two
//! proof sources compose:
//!
//! - **static certificates** ([`StaticBounds`]): a capacity-aware
//!   maximum-cycle-ratio bound for one concrete distribution, sound by
//!   construction (and a proven deadlock when the augmented expansion
//!   has a token-free cycle);
//! - **dominance records**: throughput is monotone in pointwise capacity
//!   (paper §9), so a *genuinely evaluated* distribution `r` with
//!   throughput `t(r)` proves `t(d) ≤ t(r)` for every `d ≤ r` and
//!   `t(d) ≥ t(r)` for every `d ≥ r`.
//!
//! Records are kept per throughput level as antichains: for
//! upper-bound queries (`r ≥ d` wanted) only pointwise-*maximal*
//! records matter, for lower-bound queries (`r ≤ d` wanted) only
//! pointwise-*minimal* ones — insertion filters both ways, keeping the
//! stores small.
//!
//! Determinism: records are inserted while workers evaluate (any order —
//! the stores are order-insensitive sets), and queried only between
//! evaluation chunks, after workers joined. Prune decisions therefore
//! depend only on the chunk-aligned evaluation history, which is itself
//! identical across thread counts.
//!
//! # Soundness under the energy objective
//!
//! Both proof sources bound only the *throughput* axis, yet they remain
//! sound when the exploration also tracks energy
//! ([`ObjectiveKind::Energy`](crate::ObjectiveKind::Energy)). Energy per
//! iteration is a function of throughput alone — `E(t) = W + I·f/t`
//! with model constants `W, I, f ≥ 0` (see `buffy_analysis::EnergyModel`)
//! — and is monotone non-increasing in `t`. A distribution pruned
//! because its throughput cannot beat an evaluated point therefore also
//! cannot offer strictly lower energy at comparable throughput: every
//! point the oracle skips is dominated in the extended space exactly
//! when it is dominated in the storage/throughput plane. No
//! energy-aware certificates are needed, and none are recorded.

use crate::runtime::PruneKind;
use buffy_analysis::{FxBuildHasher, StaticBounds};
use buffy_graph::{Rational, StorageDistribution};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// One throughput level's antichain of distributions.
type Levels = BTreeMap<Rational, Vec<StorageDistribution>>;

/// The oracle threaded through the exploration drivers.
///
/// Constructed once per search (with or without a usable
/// [`StaticBounds`]); shared by reference, internally synchronized.
#[derive(Debug)]
pub(crate) struct PruneOracle {
    /// `false` for the `static_prune: false` escape hatch: every query
    /// answers "no proof" and nothing is recorded.
    enabled: bool,
    bounds: Option<StaticBounds>,
    /// Memoized static certificates: distribution → its bound (`None`
    /// when no finite certificate exists).
    certs: Mutex<HashMap<StorageDistribution, Option<Rational>, FxBuildHasher>>,
    /// Pointwise-maximal records per level: answers "some record ≥ d".
    maximal: Mutex<Levels>,
    /// Pointwise-minimal records per level: answers "some record ≤ d".
    minimal: Mutex<Levels>,
}

impl PruneOracle {
    /// An oracle over `bounds` (pass `None` to keep only dominance
    /// pruning, e.g. for disconnected models).
    pub(crate) fn new(bounds: Option<StaticBounds>) -> PruneOracle {
        PruneOracle {
            enabled: true,
            bounds: bounds.filter(|b| b.is_usable()),
            certs: Mutex::new(HashMap::default()),
            maximal: Mutex::new(BTreeMap::new()),
            minimal: Mutex::new(BTreeMap::new()),
        }
    }

    /// An oracle that never prunes — neither statically nor by dominance
    /// (the `static_prune: false` escape hatch; fronts are byte-identical
    /// either way, by construction).
    pub(crate) fn disabled() -> PruneOracle {
        PruneOracle {
            enabled: false,
            ..PruneOracle::new(None)
        }
    }

    /// Whether static certificates are available at all (test hook).
    #[cfg(test)]
    pub(crate) fn has_static(&self) -> bool {
        self.bounds.is_some()
    }

    /// Records a *genuine* analysis result (a fresh evaluation or a
    /// warm-start replay of one — never a panic-degraded zero).
    pub(crate) fn record(&self, dist: &StorageDistribution, throughput: Rational) {
        if !self.enabled {
            return;
        }
        {
            let mut levels = self.maximal.lock().unwrap();
            let level = levels.entry(throughput).or_default();
            if !level.iter().any(|r| r.dominates(dist)) {
                level.retain(|r| !dist.dominates(r));
                level.push(dist.clone());
            }
        }
        let mut levels = self.minimal.lock().unwrap();
        let level = levels.entry(throughput).or_default();
        if !level.iter().any(|r| dist.dominates(r)) {
            level.retain(|r| !r.dominates(dist));
            level.push(dist.clone());
        }
    }

    /// The memoized static certificate bound of `dist`.
    pub(crate) fn static_bound(&self, dist: &StorageDistribution) -> Option<Rational> {
        if !self.enabled {
            return None;
        }
        let bounds = self.bounds.as_ref()?;
        if let Some(&cached) = self.certs.lock().unwrap().get(dist) {
            return cached;
        }
        let bound = bounds.certificate(dist).map(|c| c.bound);
        self.certs.lock().unwrap().insert(dist.clone(), bound);
        bound
    }

    /// A proof that `t(dist) ≤ limit`, if one exists.
    pub(crate) fn proves_at_most(
        &self,
        dist: &StorageDistribution,
        limit: &Rational,
    ) -> Option<PruneKind> {
        if self.dominated_upper(dist, |level| level <= limit) {
            return Some(PruneKind::Dominance);
        }
        match self.static_bound(dist) {
            Some(b) if b <= *limit => Some(PruneKind::Static),
            _ => None,
        }
    }

    /// A proof that `t(dist) < limit` (strictly), if one exists.
    pub(crate) fn proves_below(
        &self,
        dist: &StorageDistribution,
        limit: &Rational,
    ) -> Option<PruneKind> {
        if self.dominated_upper(dist, |level| level < limit) {
            return Some(PruneKind::Dominance);
        }
        match self.static_bound(dist) {
            Some(b) if b < *limit => Some(PruneKind::Static),
            _ => None,
        }
    }

    /// A proof that `t(dist) = 0`, if one exists.
    pub(crate) fn proves_zero(&self, dist: &StorageDistribution) -> Option<PruneKind> {
        self.proves_at_most(dist, &Rational::ZERO)
    }

    /// A proof that `t(dist) > 0`, if one exists (a positive record
    /// pointwise below `dist`).
    pub(crate) fn proves_positive(&self, dist: &StorageDistribution) -> bool {
        let levels = self.minimal.lock().unwrap();
        levels
            .iter()
            .rev()
            .take_while(|(level, _)| **level > Rational::ZERO)
            .any(|(_, records)| records.iter().any(|r| dist.dominates(r)))
    }

    /// Whether some record at an accepted level dominates `dist`.
    fn dominated_upper(
        &self,
        dist: &StorageDistribution,
        accept: impl Fn(&Rational) -> bool,
    ) -> bool {
        let levels = self.maximal.lock().unwrap();
        levels
            .iter()
            .take_while(|(level, _)| accept(level))
            .any(|(_, records)| records.iter().any(|r| r.dominates(dist)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn d(caps: &[u64]) -> StorageDistribution {
        StorageDistribution::from_capacities(caps.to_vec())
    }

    #[test]
    fn dominance_proofs_follow_monotonicity() {
        let o = PruneOracle::new(None);
        o.record(&d(&[5, 3]), Rational::new(1, 6));
        o.record(&d(&[4, 2]), Rational::new(1, 7));

        // ⟨4, 3⟩ ≤ ⟨5, 3⟩: throughput at most 1/6.
        assert_eq!(
            o.proves_at_most(&d(&[4, 3]), &Rational::new(1, 6)),
            Some(PruneKind::Dominance)
        );
        // …but nothing proves it below 1/7.
        assert_eq!(o.proves_below(&d(&[4, 3]), &Rational::new(1, 7)), None);
        // ⟨6, 3⟩ ≥ ⟨4, 2⟩ (positive record): provably positive.
        assert!(o.proves_positive(&d(&[6, 3])));
        // ⟨3, 1⟩ has no record below it.
        assert!(!o.proves_positive(&d(&[3, 1])));
        // Incomparable to all records: no upper proof either.
        assert_eq!(o.proves_at_most(&d(&[9, 1]), &Rational::new(1, 6)), None);
    }

    #[test]
    fn zero_records_prove_deadlock_downward() {
        let o = PruneOracle::new(None);
        o.record(&d(&[5, 2]), Rational::ZERO);
        assert_eq!(o.proves_zero(&d(&[4, 2])), Some(PruneKind::Dominance));
        assert_eq!(o.proves_zero(&d(&[5, 3])), None);
    }

    #[test]
    fn antichain_insertion_filters_redundant_records() {
        let o = PruneOracle::new(None);
        let t = Rational::new(1, 4);
        o.record(&d(&[4, 2]), t);
        o.record(&d(&[5, 3]), t); // dominates ⟨4,2⟩: replaces it in `maximal`
        o.record(&d(&[4, 2]), t); // re-insert: redundant there, kept in `minimal`
        {
            let max = o.maximal.lock().unwrap();
            assert_eq!(max[&t], vec![d(&[5, 3])]);
            let min = o.minimal.lock().unwrap();
            assert_eq!(min[&t], vec![d(&[4, 2])]);
        }
        // Incomparable records coexist at one level.
        o.record(&d(&[2, 9]), t);
        assert_eq!(o.maximal.lock().unwrap()[&t].len(), 2);
        assert_eq!(o.minimal.lock().unwrap()[&t].len(), 2);
    }

    #[test]
    fn static_bounds_are_memoized_and_sound() {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let g = b.build().unwrap();
        let o = PruneOracle::new(Some(StaticBounds::new(&g, c).unwrap()));
        assert!(o.has_static());

        // ⟨4, 2⟩ is exactly 1/7 statically: at most 1/7, not below it.
        assert_eq!(
            o.proves_at_most(&d(&[4, 2]), &Rational::new(1, 7)),
            Some(PruneKind::Static)
        );
        assert_eq!(o.proves_below(&d(&[4, 2]), &Rational::new(1, 7)), None);
        // ⟨3, 2⟩ deadlocks statically.
        assert_eq!(o.proves_zero(&d(&[3, 2])), Some(PruneKind::Static));
        // The second query hits the certificate memo.
        assert_eq!(o.static_bound(&d(&[4, 2])), Some(Rational::new(1, 7)));
        assert_eq!(o.certs.lock().unwrap().len(), 2);
    }

    #[test]
    fn disabled_oracle_never_prunes_at_all() {
        let o = PruneOracle::disabled();
        assert!(!o.has_static());
        // Records are dropped: not even dominance proofs come back.
        o.record(&d(&[5, 3]), Rational::new(1, 6));
        assert_eq!(o.static_bound(&d(&[4, 2])), None);
        assert_eq!(o.proves_zero(&d(&[0, 0])), None);
        assert_eq!(o.proves_at_most(&d(&[4, 3]), &Rational::ONE), None);
        assert!(!o.proves_positive(&d(&[9, 9])));
    }
}
