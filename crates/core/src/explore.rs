//! Design-space exploration (paper §9).
//!
//! Charts the complete Pareto space of storage-distribution size versus
//! throughput:
//!
//! - the *distribution-size dimension* is searched with the paper's
//!   divide-and-conquer: throughput is monotone in the distribution size,
//!   so whenever the maximal throughput at the two ends of a size interval
//!   coincides, the whole interval is settled;
//! - the *throughput dimension* is searched per size by enumerating the
//!   grid of meaningful distributions ([`DistributionSpace`]) with early
//!   exit as soon as the interval's known ceiling is reached — the
//!   monotonicity-seeded binary search of the paper;
//! - the search is boxed by the combined lower bound (sum of per-channel
//!   BMLB bounds) and the upper bound (a distribution realizing the
//!   maximal achievable throughput), per §8/Fig. 7;
//! - optional *throughput quantization* (the paper's remedy for the H.263
//!   decoder's many Pareto points) and optional multi-threaded evaluation.
//!
//! Candidate evaluations run through the exploration runtime
//! ([`crate::runtime`]): a sharded memo cache, atomic statistics
//! ([`ExplorationStats`]) and a structured [`ExploreObserver`] event
//! stream. Candidates are consumed in fixed-size chunks regardless of the
//! thread count, so the set of evaluated distributions — and every
//! reported statistic — is identical whether the search runs on one
//! thread or many.
//!
//! The driver is written once against [`DataflowSemantics`]
//! ([`explore_design_space_for`]); [`explore_design_space`] is the
//! SDF-typed entry point and `buffy-csdf` instantiates the same driver for
//! cyclo-static graphs. The `_observed` variants take an
//! [`ExploreObserver`] for progress reporting and tracing.

use crate::bounds::upper_bound_distribution_with;
use crate::enumerate::DistributionSpace;
use crate::error::ExploreError;
use crate::objective::ObjectiveSpace;
use crate::pareto::ParetoSet;
use crate::pipeline::{clip_front, EvalPipeline};
use crate::runtime::{
    Completeness, EvaluationFailure, ExplorationStats, ExploreObserver, NoopObserver, SearchPhase,
    SkippedSize, EVAL_CHUNK,
};
use buffy_analysis::{CancelReason, CancelToken, DataflowSemantics, ExplorationLimits};
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};
use buffy_telemetry::{labeled, names};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Cap on how many distributions of a single skipped size are counted when
/// annotating a truncated result — the annotation pass must not itself
/// enumerate an exploding space.
pub(crate) const SKIP_COUNT_CAP: u64 = 10_000;

/// Checkpointed evaluations a run can be warm-started from: distribution →
/// (throughput, reduced states stored). See
/// [`ExploreOptions::warm_start`].
pub type WarmStart = HashMap<StorageDistribution, (Rational, u64)>;

/// Options controlling the design-space exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Actor whose throughput is observed; defaults to the model's
    /// default observed actor (for SDF graphs the first sink,
    /// [`SdfGraph::default_observed_actor`]).
    pub observed: Option<ActorId>,
    /// Cap on the distribution size (paper §10: "it is possible to set the
    /// maximum distribution size"); defaults to the computed upper bound.
    pub max_size: Option<u64>,
    /// Only chart points with throughput at least this value.
    pub min_throughput: Option<Rational>,
    /// Only chart points with throughput at most this value.
    pub max_throughput: Option<Rational>,
    /// Quantize throughputs searched to multiples of this value (paper
    /// §11: limits the number of Pareto points, e.g. for H.263).
    pub quantum: Option<Rational>,
    /// Per-analysis state-space limits.
    pub limits: ExplorationLimits,
    /// Worker threads for evaluating candidate distributions: 1 =
    /// sequential, 0 = auto-detect via
    /// [`std::thread::available_parallelism`]. The reported
    /// [`ExplorationStats`] are identical for every thread count.
    pub threads: usize,
    /// Per-channel capacity ceilings (paper §8: distributed memories
    /// impose "extra constraints on the channel capacities"). Channels
    /// may not grow beyond these values.
    pub max_channel_caps: Option<StorageDistribution>,
    /// Shared cancellation/budget token. Analyses poll it on a coarse
    /// stride; when it trips, the drivers stop and return a *partial*
    /// result (see [`ExplorationResult::completeness`]) instead of an
    /// error — except when cancelled before anything was established,
    /// which yields [`ExploreError::Cancelled`].
    pub cancel: Option<Arc<CancelToken>>,
    /// Evaluations restored from a checkpoint. On first request each entry
    /// is replayed as a *recorded evaluation* (with its checkpointed state
    /// count and zero wall time), not a cache hit — so a resumed run
    /// reproduces the front and the statistics of an uninterrupted one.
    pub warm_start: Option<Arc<WarmStart>>,
    /// Whether cold analyses may warm-start from a neighbouring
    /// distribution's cached record: the neighbour's state count
    /// pre-sizes the analysis arena (see the `pipeline` module). Purely an
    /// allocation-layer optimization — fronts and deterministic
    /// statistics are byte-identical with it on or off — so this toggle
    /// (`--no-warm-start` on the CLI) exists for cross-checking and
    /// measurement.
    pub warm_start_neighbours: bool,
    /// Whether the prune oracle may skip candidate evaluations it can
    /// decide without simulation: static capacity-aware cycle-ratio
    /// certificates plus monotone dominance records. Pruning is
    /// exactness-preserving — the front is byte-identical with it on or
    /// off, only [`ExplorationStats::evaluations`] shrinks — so this
    /// toggle exists for cross-checking and measurement
    /// (`--no-static-prune` on the CLI).
    pub static_prune: bool,
    /// Test hook: the evaluation of exactly this distribution panics
    /// inside the worker, exercising the panic-containment path. Not for
    /// production use.
    pub fail_distribution: Option<StorageDistribution>,
    /// Deterministic fault schedule injecting evaluation panics, spurious
    /// cancellations and arena-pressure spikes into the pipeline (see
    /// [`crate::FaultPlan`]). The generalization of `fail_distribution`:
    /// `None` in production, where every hook is a single untaken branch.
    pub fault_plan: Option<Arc<crate::fault::FaultPlan>>,
    /// The declared objective space of the exploration. The default is
    /// the paper's storage/throughput pair; declaring the energy axis
    /// makes every Pareto point carry the exact energy per iteration
    /// derived from the model's actor power annotations. The energy axis
    /// is a monotone function of the throughput axis, so the default-space
    /// front is unchanged by the declaration (see [`crate::ObjectiveSpace`]).
    pub objectives: ObjectiveSpace,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            observed: None,
            max_size: None,
            min_throughput: None,
            max_throughput: None,
            quantum: None,
            limits: ExplorationLimits::default(),
            threads: 1,
            max_channel_caps: None,
            cancel: None,
            warm_start: None,
            warm_start_neighbours: true,
            static_prune: true,
            fail_distribution: None,
            fault_plan: None,
            objectives: ObjectiveSpace::default_2d(),
        }
    }
}

/// Outcome of a design-space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// The Pareto front: minimal storage distributions and their
    /// throughputs, by increasing size.
    pub pareto: ParetoSet,
    /// The maximal achievable throughput of the observed actor.
    pub max_throughput: Rational,
    /// The combined lower bound on the distribution size (`lb`, Fig. 7).
    pub lower_bound_size: u64,
    /// Size of the computed maximal-throughput distribution (`ub`, Fig. 7).
    pub upper_bound_size: u64,
    /// Whether the search ran to completion or was truncated (deadline,
    /// interrupt, evaluation budget). A truncated front is still sound:
    /// every reported point is achievable.
    pub completeness: Completeness,
    /// For truncated runs: the realizable sizes the search never settled,
    /// each annotated with the conservative bounds-phase throughput
    /// ceiling. Empty for exact runs.
    pub skipped: Vec<SkippedSize>,
    /// Evaluations that panicked and were degraded to zero-throughput
    /// entries instead of aborting the run, in distribution order.
    pub failures: Vec<EvaluationFailure>,
    /// Evaluation statistics: analyses run, cache hits, largest state
    /// space, analysis wall time.
    pub stats: ExplorationStats,
}

/// Quantizes `t` down to the grid when a quantum is set.
fn q(t: Rational, quantum: Option<Rational>) -> Rational {
    match quantum {
        Some(step) if !t.is_zero() => t.quantize_down(step),
        _ => t,
    }
}

/// The maximal throughput over all grid distributions of exactly `size`
/// tokens, with early exit once the (quantized) `ceiling` is reached.
/// Returns the best (quantized value, exact value, witness); the witness is
/// `None` when no grid distribution of that size exists or none terminates
/// positively.
///
/// Candidates are consumed in chunks of exactly [`EVAL_CHUNK`]
/// *enumerated* candidates with the early exit checked at chunk
/// boundaries — for every thread count, including sequential runs, so
/// the evaluated set (and with it the statistics) does not depend on
/// `threads`.
///
/// At each chunk boundary the prune oracle filters candidates it can
/// prove no better than the running best: such a candidate cannot update
/// the best (updates require strictly greater throughput) nor become the
/// witness, so dropping it is exact. Chunks are aligned on the
/// enumeration count, not the evaluation count, which keeps boundaries —
/// and with them the dominance records visible to each decision —
/// independent of how many candidates were pruned.
fn max_throughput_for_size<M: DataflowSemantics + Sync>(
    eval: &EvalPipeline<'_, M>,
    space: &DistributionSpace,
    size: u64,
    ceiling_q: Rational,
    quantum: Option<Rational>,
) -> Result<(Rational, Rational, Option<StorageDistribution>), ExploreError> {
    let mut best = Rational::ZERO;
    let mut best_q = Rational::ZERO;
    let mut witness: Option<StorageDistribution> = None;
    let mut error: Option<ExploreError> = None;

    let mut buffer: Vec<StorageDistribution> = Vec::with_capacity(EVAL_CHUNK);
    let process = |buf: &mut Vec<StorageDistribution>,
                   best: &mut Rational,
                   best_q: &mut Rational,
                   witness: &mut Option<StorageDistribution>|
     -> Result<bool, ExploreError> {
        buf.retain(|d| !eval.prunes_at_most(d, best));
        let results = eval.eval_batch(buf)?;
        for (d, t) in buf.drain(..).zip(results) {
            if t > *best {
                *best = t;
                *best_q = q(t, quantum);
                *witness = Some(d);
            }
        }
        Ok(*best_q >= ceiling_q)
    };
    space.for_each_of_size(size, |d| {
        buffer.push(d);
        if buffer.len() >= EVAL_CHUNK {
            match process(&mut buffer, &mut best, &mut best_q, &mut witness) {
                Ok(true) => {
                    eval.note_short_circuit();
                    ControlFlow::Break(())
                }
                Ok(false) => ControlFlow::Continue(()),
                Err(e) => {
                    error = Some(e);
                    ControlFlow::Break(())
                }
            }
        } else {
            ControlFlow::Continue(())
        }
    });
    if error.is_none() && !buffer.is_empty() {
        if let Err(e) = process(&mut buffer, &mut best, &mut best_q, &mut witness) {
            error = Some(e);
        }
    }

    if let Some(e) = error {
        return Err(e);
    }
    if best.is_zero() {
        witness = None;
    }
    Ok((best_q, best, witness))
}

/// Degrades a cancellation to `None`, recording the first reason seen;
/// every other error propagates.
pub(crate) fn salvage<T>(
    r: Result<T, ExploreError>,
    truncated: &mut Option<CancelReason>,
) -> Result<Option<T>, ExploreError> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(ExploreError::Cancelled { reason }) => {
            if truncated.is_none() {
                *truncated = Some(reason);
            }
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Whether some grid distribution of exactly `size` tokens has positive
/// throughput (early exits on the first hit).
///
/// The oracle short-circuits both ways — a positive proof answers `true`
/// without evaluating, a zero proof skips the candidate — and both are
/// exact consequences of results the engine already produced, so the
/// boolean is identical with pruning on or off.
fn has_positive<M: DataflowSemantics + Sync>(
    eval: &EvalPipeline<'_, M>,
    space: &DistributionSpace,
    size: u64,
) -> Result<bool, ExploreError> {
    let mut found = false;
    let mut error: Option<ExploreError> = None;
    space.for_each_of_size(size, |d| {
        if eval.proves_positive(&d) {
            found = true;
            return ControlFlow::Break(());
        }
        if eval.prunes_zero(&d) {
            return ControlFlow::Continue(());
        }
        match eval.eval(&d) {
            Ok(t) if !t.is_zero() => {
                found = true;
                ControlFlow::Break(())
            }
            Ok(_) => ControlFlow::Continue(()),
            Err(e) => {
                error = Some(e);
                ControlFlow::Break(())
            }
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(found),
    }
}

/// Explores the complete storage/throughput design space of `graph` and
/// returns its Pareto front (paper §9).
///
/// # Errors
///
/// - [`ExploreError::Graph`] for inconsistent graphs;
/// - [`ExploreError::Analysis`] for analysis failures (state limits,
///   token-free cycles, …);
/// - [`ExploreError::NoPositiveThroughput`] when no distribution within
///   the size bounds executes without deadlock;
/// - [`ExploreError::Cancelled`] when a cancel token trips during the
///   bounds phase — before anything is known about the design space.
///   Cancellation in any later phase instead returns `Ok` with a partial
///   result (see [`ExplorationResult::completeness`]).
///
/// # Examples
///
/// The running example's full Pareto space (paper Fig. 5): sizes 6, 8, 9,
/// 10 with throughputs 1/7, 1/6, 1/5, 1/4.
///
/// ```
/// use buffy_core::{explore_design_space, ExploreOptions};
/// use buffy_graph::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
///
/// let result = explore_design_space(&g, &ExploreOptions::default())?;
/// let sizes: Vec<u64> = result.pareto.points().iter().map(|p| p.size).collect();
/// assert_eq!(sizes, vec![6, 8, 9, 10]);
/// assert_eq!(result.pareto.maximal().unwrap().throughput, Rational::new(1, 4));
/// # Ok(())
/// # }
/// ```
pub fn explore_design_space(
    graph: &SdfGraph,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_design_space_for(graph, options)
}

/// The generic form of [`explore_design_space`]: the same driver for any
/// [`DataflowSemantics`] model (`Sync` because candidate evaluation may be
/// parallelized across threads).
///
/// # Errors
///
/// See [`explore_design_space`].
pub fn explore_design_space_for<M: DataflowSemantics + Sync>(
    model: &M,
    options: &ExploreOptions,
) -> Result<ExplorationResult, ExploreError> {
    explore_design_space_observed(model, options, &NoopObserver)
}

/// [`explore_design_space_for`] with a structured [`ExploreObserver`]
/// receiving evaluation, cache-hit, Pareto-accept and phase-transition
/// events as the search runs.
///
/// # Errors
///
/// See [`explore_design_space`].
pub fn explore_design_space_observed<M: DataflowSemantics + Sync>(
    model: &M,
    options: &ExploreOptions,
    observer: &dyn ExploreObserver,
) -> Result<ExplorationResult, ExploreError> {
    let observed = options
        .observed
        .unwrap_or_else(|| model.default_observed_actor());
    let eval = EvalPipeline::new(model, observed, options, observer)?;
    let mut space = DistributionSpace::for_model(model);
    if let Some(caps) = &options.max_channel_caps {
        space = space.with_max_capacities(caps);
    }

    // Observation only: phase spans and pruning counters when a recorder
    // is installed, a single branch when not.
    let recorder = buffy_telemetry::active();
    let pruned_counter = recorder.as_ref().map(|r| {
        r.counter(
            &labeled(
                names::SIZES_PRUNED,
                "phase",
                SearchPhase::FrontSearch.name(),
            ),
            "Distribution sizes settled by interval collapse without any evaluation.",
        )
    });

    // Accept a witness into the front, reporting genuinely new points.
    // Points come out of the pipeline's factory so the declared objective
    // space (e.g. the energy axis) is attached uniformly.
    let accept = |pareto: &mut ParetoSet, w: StorageDistribution, t: Rational| {
        let p = eval.point(w, t);
        if pareto.insert(p.clone()) {
            observer.pareto_accepted(&p);
            if let Some(r) = &recorder {
                r.trace_instant("pareto");
            }
        }
    };

    // Bounds of the size dimension (paper §8, Fig. 7). The probes run
    // through the shared evaluator: memoized, counted, observed.
    // Cancellation in this phase leaves nothing to salvage (no throughput
    // ceiling, no size range) and surfaces as `ExploreError::Cancelled`.
    observer.phase_started(SearchPhase::Bounds);
    let bounds_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::Bounds.name()));
    let lb_size = space.min_size();
    let (ub_dist, thr_max_graph) =
        upper_bound_distribution_with(model, observed, &|d| eval.eval(d))?;
    let mut ub_size = options
        .max_size
        .unwrap_or_else(|| ub_dist.size())
        .max(lb_size);
    if let Some(caps) = &options.max_channel_caps {
        ub_size = ub_size.min(caps.size());
    }

    // Clip the throughput range per the options.
    let thr_cap = match options.max_throughput {
        Some(cap) => cap.min(thr_max_graph),
        None => thr_max_graph,
    };
    let thr_cap_q = q(thr_cap, options.quantum);

    // The size dimension only holds distributions at realizable grid
    // sizes (capacities move in per-channel steps): probing a hole — e.g.
    // any odd size when every step is 2 — would make the monotone
    // feasibility predicate appear false and cut genuine Pareto points
    // off below it. All size searches therefore run over indices into the
    // realizable-size list. Sizes beyond the upper-bound distribution
    // cannot improve on its throughput, so the list is clamped there.
    let search_hi = ub_size.min(ub_dist.size()).max(lb_size);
    let sizes = space.sizes_in(lb_size, search_hi);
    let Some(&largest) = sizes.last() else {
        return Err(ExploreError::NoPositiveThroughput);
    };

    // From here on a trip of the cancel token degrades the run to a
    // partial result: `salvage` converts the `Cancelled` error into a
    // recorded truncation reason, and `assemble_skipped` annotates every
    // realizable size the search never settled with the bounds-phase
    // throughput ceiling (sound: no distribution of any size exceeds it).
    let assemble_skipped = |settled: &[bool]| -> (u64, Vec<SkippedSize>) {
        let mut skipped = Vec::new();
        let mut total: u64 = 0;
        for (i, &size) in sizes.iter().enumerate() {
            if settled.get(i).copied().unwrap_or(false) {
                continue;
            }
            let n = space.count_of_size_capped(size, SKIP_COUNT_CAP);
            total = total.saturating_add(n);
            skipped.push(SkippedSize {
                size,
                distributions: n,
                throughput_bound: thr_max_graph,
            });
        }
        (total, skipped)
    };

    // Smallest size with positive throughput (binary search on the
    // monotone predicate; the combined lower bound may still deadlock —
    // the paper's Fig. 6 discussion).
    observer.phase_started(SearchPhase::MinimalSize);
    drop(bounds_span);
    let minimal_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::MinimalSize.name()));
    let mut truncated: Option<CancelReason> = None;
    let mut lo = 0;
    let mut hi = sizes.len() - 1;
    let min_positive: Option<usize> = 'min: {
        match salvage(has_positive(&eval, &space, largest), &mut truncated)? {
            None => break 'min None,
            Some(false) => return Err(ExploreError::NoPositiveThroughput),
            Some(true) => {}
        }
        match salvage(has_positive(&eval, &space, sizes[lo]), &mut truncated)? {
            None => break 'min None,
            Some(true) => break 'min Some(lo),
            Some(false) => {}
        }
        // Invariant: sizes[lo] infeasible, sizes[hi] feasible.
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            match salvage(has_positive(&eval, &space, sizes[mid]), &mut truncated)? {
                None => break 'min None,
                Some(true) => hi = mid,
                Some(false) => lo = mid,
            }
        }
        Some(hi)
    };
    let Some(min_positive) = min_positive else {
        // Cancelled before the minimal feasible size was located: nothing
        // is settled, the partial front is empty.
        let reason = truncated.expect("cancellation recorded");
        let (total, skipped) = assemble_skipped(&[]);
        return Ok(ExplorationResult {
            pareto: ParetoSet::new(),
            max_throughput: thr_max_graph,
            lower_bound_size: lb_size,
            upper_bound_size: ub_size,
            completeness: Completeness::truncated(reason, total),
            skipped,
            failures: eval.take_failures(),
            stats: eval.stats(),
        });
    };
    let last = sizes.len() - 1;

    observer.phase_started(SearchPhase::FrontSearch);
    drop(minimal_span);
    let _front_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::FrontSearch.name()));
    let mut pareto = ParetoSet::new();
    // Sizes below the minimal feasible one are settled: zero throughput,
    // no front point possible there.
    let mut settled = vec![false; sizes.len()];
    for flag in settled.iter_mut().take(min_positive) {
        *flag = true;
    }
    'search: {
        // Left end of the front.
        let Some((left_q, left_exact, left_witness)) = salvage(
            max_throughput_for_size(
                &eval,
                &space,
                sizes[min_positive],
                thr_cap_q,
                options.quantum,
            ),
            &mut truncated,
        )?
        else {
            break 'search;
        };
        settled[min_positive] = true;
        if let Some(w) = left_witness {
            accept(&mut pareto, w, left_exact);
        }

        // Right end: the maximal throughput is reached at the largest
        // realizable size (unless the user capped the size below it).
        let (right_q, right_exact, right_witness) = if last > min_positive {
            let Some(right) = salvage(
                max_throughput_for_size(&eval, &space, largest, thr_cap_q, options.quantum),
                &mut truncated,
            )?
            else {
                break 'search;
            };
            right
        } else {
            (left_q, left_exact, None)
        };
        settled[last] = true;
        if let Some(w) = right_witness {
            accept(&mut pareto, w, right_exact);
        }

        // Divide and conquer over the realizable-size indices.
        let mut stack: Vec<(usize, Rational, usize, Rational)> = Vec::new();
        if last > min_positive {
            stack.push((min_positive, left_q, last, right_q));
        }
        while let Some((lo_i, lo_q, hi_i, hi_q)) = stack.pop() {
            if lo_q >= hi_q || lo_i + 1 >= hi_i {
                // The interval is settled: its interior cannot contribute
                // a new (quantized) Pareto point.
                let mut pruned = 0u64;
                for flag in settled.iter_mut().take(hi_i).skip(lo_i + 1) {
                    if !*flag {
                        pruned += 1;
                    }
                    *flag = true;
                }
                if pruned > 0 {
                    if let Some(c) = &pruned_counter {
                        c.add(pruned);
                    }
                }
                continue;
            }
            let mid = lo_i + (hi_i - lo_i) / 2;
            let Some((mid_q, mid_exact, mid_witness)) = salvage(
                max_throughput_for_size(&eval, &space, sizes[mid], hi_q, options.quantum),
                &mut truncated,
            )?
            else {
                // The interrupted midpoint and the interiors of all
                // pending intervals stay unsettled and are annotated
                // below.
                break 'search;
            };
            settled[mid] = true;
            if let Some(w) = mid_witness {
                accept(&mut pareto, w, mid_exact);
            }
            stack.push((lo_i, lo_q, mid, mid_q));
            stack.push((mid, mid_q, hi_i, hi_q));
        }
    }

    let (completeness, skipped) = match truncated {
        None => (Completeness::exact(), Vec::new()),
        Some(reason) => {
            let (total, skipped) = assemble_skipped(&settled);
            (Completeness::truncated(reason, total), skipped)
        }
    };

    // Clip per the requested throughput window and thin to one point per
    // quantization level (smallest size wins).
    let pareto = clip_front(pareto, options, thr_max_graph);

    Ok(ExplorationResult {
        pareto,
        max_throughput: thr_max_graph,
        lower_bound_size: lb_size,
        upper_bound_size: ub_size,
        completeness,
        skipped,
        failures: eval.take_failures(),
        stats: eval.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::ParetoPoint;
    use crate::runtime::PruneKind;
    use std::sync::Mutex;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    /// The complete Pareto space of the paper's Fig. 5.
    #[test]
    fn example_full_front() {
        let g = example();
        let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(
            front,
            vec![
                (6, Rational::new(1, 7)),
                (8, Rational::new(1, 6)),
                (9, Rational::new(1, 5)),
                (10, Rational::new(1, 4)),
            ]
        );
        assert_eq!(r.lower_bound_size, 6);
        assert!(r.upper_bound_size >= 10);
        assert_eq!(r.max_throughput, Rational::new(1, 4));
        assert!(r.stats.evaluations > 0);
        assert!(r.stats.max_states > 0);
        // The minimal positive-throughput point is the paper's ⟨4, 2⟩.
        assert_eq!(r.pareto.minimal().unwrap().distribution.as_slice(), &[4, 2]);
    }

    #[test]
    fn memoization_is_observable() {
        // The size-dimension binary search and the per-size sweeps revisit
        // distributions: the cache must absorb the repeats, so analyses run
        // (evaluations) stay strictly below total requests.
        let g = example();
        let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        assert!(
            r.stats.cache_hits > 0,
            "exploration should revisit distributions"
        );
        assert!(r.stats.cache_hit_rate() > 0.0);
        assert!(r.stats.eval_nanos > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = example();
        let seq = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let par = explore_design_space(
            &g,
            &ExploreOptions {
                threads: 4,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let f = |r: &ExplorationResult| {
            r.pareto
                .points()
                .iter()
                .map(|p| (p.size, p.throughput))
                .collect::<Vec<_>>()
        };
        assert_eq!(f(&seq), f(&par));
        // The statistics are deterministic across thread counts: the
        // chunked evaluation requests exactly the same distributions.
        assert_eq!(seq.stats, par.stats);
    }

    /// A cyclic graph (repetition vector (3, 6, 2)): exercises the
    /// certificate pass on feedback structure beyond the pipeline example.
    fn ring() -> SdfGraph {
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        let z = b.actor("z", 1);
        b.channel("c1", x, 2, y, 1).unwrap();
        b.channel("c2", y, 1, z, 3).unwrap();
        b.channel_with_tokens("c3", z, 3, x, 2, 6).unwrap();
        b.build().unwrap()
    }

    /// The paper's Fig. 6 bipartite graph: an a↔b cycle plus a pipeline
    /// tail. Its per-size sweeps span several evaluation chunks, which is
    /// where the static certificates get to skip work.
    fn bipartite() -> SdfGraph {
        let mut b = SdfGraph::builder("bipartite");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 1);
        let c = b.actor("c", 1);
        let d = b.actor("d", 1);
        b.channel_with_tokens("alpha", a, 1, bb, 1, 1).unwrap();
        b.channel_with_tokens("beta", bb, 1, a, 1, 1).unwrap();
        b.channel("gamma", bb, 1, c, 1).unwrap();
        b.channel("delta", c, 1, d, 1).unwrap();
        b.build().unwrap()
    }

    /// The tentpole invariant: the prune oracle is exactness-preserving.
    /// The front (points, sizes, throughputs, witnesses) is byte-identical
    /// with pruning on or off, at one thread and at four — only the
    /// amount of work differs.
    #[test]
    fn pruning_preserves_the_front_and_skips_evaluations() {
        for (name, g) in [
            ("example", example()),
            ("ring", ring()),
            ("bipartite", bipartite()),
        ] {
            let pruned = explore_design_space(&g, &ExploreOptions::default()).unwrap();
            let unpruned = explore_design_space(
                &g,
                &ExploreOptions {
                    static_prune: false,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(pruned.pareto, unpruned.pareto, "{name}");
            assert_eq!(pruned.max_throughput, unpruned.max_throughput, "{name}");
            assert_eq!(pruned.lower_bound_size, unpruned.lower_bound_size, "{name}");
            assert!(pruned.completeness.exact && unpruned.completeness.exact);
            assert_eq!(unpruned.stats.static_prunes, 0);
            assert_eq!(unpruned.stats.dominance_prunes, 0);
            assert!(
                pruned.stats.evaluations <= unpruned.stats.evaluations,
                "{name}: pruning added work"
            );

            // Thread count changes neither the fronts nor the statistics,
            // in either mode.
            for static_prune in [true, false] {
                let reference = if static_prune { &pruned } else { &unpruned };
                let par = explore_design_space(
                    &g,
                    &ExploreOptions {
                        static_prune,
                        threads: 4,
                        ..ExploreOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(par.pareto, reference.pareto, "{name}/{static_prune}");
                assert_eq!(par.stats, reference.stats, "{name}/{static_prune}");
            }
        }

        // On the bipartite graph the oracle provably skips work: its
        // sweeps span several chunks, so later chunks get filtered
        // against the running best once one is established.
        let pruned = explore_design_space(&bipartite(), &ExploreOptions::default()).unwrap();
        let unpruned = explore_design_space(
            &bipartite(),
            &ExploreOptions {
                static_prune: false,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let prunes = pruned.stats.static_prunes + pruned.stats.dominance_prunes;
        assert!(prunes > 0, "oracle never fired: {:?}", pruned.stats);
        assert!(
            pruned.stats.evaluations < unpruned.stats.evaluations,
            "pruning saved nothing: {} vs {}",
            pruned.stats.evaluations,
            unpruned.stats.evaluations
        );
    }

    #[test]
    fn zero_threads_auto_detects() {
        let g = example();
        let auto = explore_design_space(
            &g,
            &ExploreOptions {
                threads: 0,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let seq = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(seq.pareto, auto.pareto);
        assert_eq!(seq.stats, auto.stats);
    }

    #[test]
    fn observer_sees_evaluations_and_pareto_points() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct Counting {
            evals: AtomicU64,
            finished: AtomicU64,
            hits: AtomicU64,
            accepted: AtomicU64,
            phases: AtomicU64,
            pruned: AtomicU64,
        }
        impl ExploreObserver for Counting {
            fn phase_started(&self, _phase: SearchPhase) {
                self.phases.fetch_add(1, Ordering::Relaxed);
            }
            fn evaluation_started(&self, _dist: &StorageDistribution) {
                self.evals.fetch_add(1, Ordering::Relaxed);
            }
            fn evaluation_finished(
                &self,
                _dist: &StorageDistribution,
                _throughput: Rational,
                _states: u64,
                _nanos: u64,
            ) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
            fn cache_hit(&self, _dist: &StorageDistribution) {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            fn pareto_accepted(&self, _point: &ParetoPoint) {
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
            fn distribution_pruned(&self, _dist: &StorageDistribution, _kind: PruneKind) {
                self.pruned.fetch_add(1, Ordering::Relaxed);
            }
        }

        let g = example();
        let obs = Counting::default();
        let r = explore_design_space_observed(&g, &ExploreOptions::default(), &obs).unwrap();
        // Observer totals match the reported statistics exactly.
        assert_eq!(obs.evals.load(Ordering::Relaxed), r.stats.evaluations);
        assert_eq!(obs.finished.load(Ordering::Relaxed), r.stats.evaluations);
        assert_eq!(obs.hits.load(Ordering::Relaxed), r.stats.cache_hits);
        assert_eq!(
            obs.pruned.load(Ordering::Relaxed),
            r.stats.static_prunes + r.stats.dominance_prunes
        );
        // Every front point was announced (evicted points may add more).
        assert!(obs.accepted.load(Ordering::Relaxed) >= r.pareto.len() as u64);
        // Bounds, minimal-size and front-search phases at least.
        assert!(obs.phases.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn eval_budget_truncates_to_a_sound_partial_front() {
        let g = example();
        let full = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        assert!(full.completeness.exact);
        assert!(full.skipped.is_empty());
        assert!(full.failures.is_empty());

        let mut saw_partial = false;
        for budget in 1..full.stats.evaluations {
            let opts = ExploreOptions {
                cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget))),
                ..ExploreOptions::default()
            };
            let r = match explore_design_space(&g, &opts) {
                // Tripped during the bounds phase: nothing to salvage.
                Err(ExploreError::Cancelled { reason }) => {
                    assert_eq!(reason, CancelReason::EvaluationBudget);
                    continue;
                }
                other => other.unwrap(),
            };
            saw_partial = true;
            assert!(!r.completeness.exact, "budget {budget}");
            assert_eq!(
                r.completeness.truncated_by,
                Some(CancelReason::EvaluationBudget)
            );
            // Soundness: every partial point is dominated by (or equal
            // to) a point of the unbudgeted front.
            for p in r.pareto.points() {
                assert!(
                    full.pareto
                        .points()
                        .iter()
                        .any(|q| q.size <= p.size && q.throughput >= p.throughput),
                    "budget {budget}: stray point {p}"
                );
            }
            // Skipped sizes carry the sound bounds-phase ceiling.
            for s in &r.skipped {
                assert_eq!(s.throughput_bound, full.max_throughput);
                assert!(
                    s.distributions > 0,
                    "budget {budget}: empty size {}",
                    s.size
                );
            }
            assert_eq!(
                r.completeness.distributions_skipped,
                r.skipped.iter().map(|s| s.distributions).sum::<u64>()
            );
        }
        assert!(saw_partial, "no budget produced a salvageable partial run");

        // A budget matching the full run changes nothing.
        let opts = ExploreOptions {
            cancel: Some(Arc::new(
                CancelToken::new().with_eval_budget(full.stats.evaluations),
            )),
            ..ExploreOptions::default()
        };
        let r = explore_design_space(&g, &opts).unwrap();
        assert!(r.completeness.exact);
        assert_eq!(r.pareto, full.pareto);
        assert_eq!(r.stats, full.stats);
    }

    #[test]
    fn neighbour_warm_start_changes_nothing_but_counters() {
        // The arena warm start is allocation-layer only: front and
        // deterministic statistics are byte-identical with it on or off,
        // sequentially and in parallel. Only the (eq-excluded) warm-start
        // counters differ.
        let g = example();
        for threads in [1, 4] {
            let warm = explore_design_space(
                &g,
                &ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            let cold = explore_design_space(
                &g,
                &ExploreOptions {
                    threads,
                    warm_start_neighbours: false,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(warm.pareto, cold.pareto, "threads {threads}");
            assert_eq!(warm.stats, cold.stats, "threads {threads}");
            assert_eq!(cold.stats.warm_starts, 0);
            assert_eq!(cold.stats.warm_start_states, 0);
            assert!(
                warm.stats.warm_starts > 0,
                "threads {threads}: no analysis was neighbour-seeded"
            );
        }
    }

    #[test]
    fn injected_worker_panic_degrades_one_evaluation() {
        let g = example();
        // Fail the paper's minimal distribution ⟨4, 2⟩ (the only size-6
        // grid point).
        let fail = StorageDistribution::from_capacities(vec![4, 2]);
        for threads in [1, 4] {
            let r = explore_design_space(
                &g,
                &ExploreOptions {
                    fail_distribution: Some(fail.clone()),
                    threads,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(r.stats.failures, 1, "threads {threads}");
            assert_eq!(r.failures.len(), 1);
            assert_eq!(r.failures[0].distribution, fail);
            assert!(r.failures[0].message.contains("injected"));
            // The run completed; the failed distribution reads as zero
            // throughput and drops off the front, the rest is intact.
            assert!(r.completeness.exact);
            assert!(r.pareto.points().iter().all(|p| p.distribution != fail));
            assert_eq!(
                r.pareto.maximal().unwrap().throughput,
                Rational::new(1, 4),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn warm_start_replays_as_recorded_evaluations() {
        struct Recorder {
            entries: Mutex<Vec<(StorageDistribution, Rational, u64)>>,
        }
        impl ExploreObserver for Recorder {
            fn evaluation_finished(
                &self,
                dist: &StorageDistribution,
                throughput: Rational,
                states: u64,
                _nanos: u64,
            ) {
                self.entries
                    .lock()
                    .unwrap()
                    .push((dist.clone(), throughput, states));
            }
        }

        let g = example();
        let rec = Recorder {
            entries: Mutex::new(Vec::new()),
        };
        let clean = explore_design_space_observed(&g, &ExploreOptions::default(), &rec).unwrap();
        let warm: WarmStart = rec
            .entries
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(d, t, s)| (d, (t, s)))
            .collect();

        let resumed = explore_design_space(
            &g,
            &ExploreOptions {
                warm_start: Some(Arc::new(warm)),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        // Byte-identical front and statistics: replayed entries count as
        // evaluations, only the wall time betrays that nothing ran.
        assert_eq!(resumed.pareto, clean.pareto);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.stats.eval_nanos, 0);
        assert!(resumed.completeness.exact);
    }

    #[test]
    fn size_cap_truncates_front() {
        let g = example();
        let r = explore_design_space(
            &g,
            &ExploreOptions {
                max_size: Some(8),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let sizes: Vec<u64> = r.pareto.points().iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![6, 8]);
        assert_eq!(r.pareto.maximal().unwrap().throughput, Rational::new(1, 6));
    }

    /// The paper's example with every rate doubled: channel steps become
    /// gcd(4,6) = gcd(2,4) = 2, so odd distribution sizes are holes in the
    /// capacity grid. Doubling all rates doubles every capacity bound
    /// while leaving firing counts and timing untouched, so the front is
    /// Fig. 5 with all sizes doubled.
    fn scaled_example() -> SdfGraph {
        let mut b = SdfGraph::builder("example2x");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 4, bb, 6).unwrap();
        b.channel("beta", bb, 2, c, 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn step_grid_front_matches_the_scaled_example() {
        let g = scaled_example();
        let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(
            front,
            vec![
                (12, Rational::new(1, 7)),
                (16, Rational::new(1, 6)),
                (18, Rational::new(1, 5)),
                (20, Rational::new(1, 4)),
            ]
        );
    }

    #[test]
    fn size_cap_in_a_grid_hole_is_clamped_to_the_grid() {
        // max_size 15 is a hole: no distribution of the scaled example has
        // that size. The search must fall back to the largest realizable
        // size below it (14, throughput 1/7) instead of concluding that no
        // distribution has positive throughput.
        let g = scaled_example();
        let r = explore_design_space(
            &g,
            &ExploreOptions {
                max_size: Some(15),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        assert_eq!(front, vec![(12, Rational::new(1, 7))]);
        assert_eq!(r.upper_bound_size, 15);
    }

    #[test]
    fn throughput_window_clips_front() {
        let g = example();
        let r = explore_design_space(
            &g,
            &ExploreOptions {
                min_throughput: Some(Rational::new(1, 6)),
                max_throughput: Some(Rational::new(1, 5)),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let thr: Vec<Rational> = r.pareto.points().iter().map(|p| p.throughput).collect();
        assert_eq!(thr, vec![Rational::new(1, 6), Rational::new(1, 5)]);
    }

    #[test]
    fn quantization_coarsens_front() {
        let g = example();
        // Quantum 1/10: levels 1/7→0.1, 1/6→0.1, 1/5→0.2, 1/4→0.2 —
        // at most 2 points survive.
        let r = explore_design_space(
            &g,
            &ExploreOptions {
                quantum: Some(Rational::new(1, 10)),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(r.pareto.len() <= 2, "front: {:?}", r.pareto.points());
        assert!(!r.pareto.is_empty());
    }

    #[test]
    fn deadlocking_graph_reports_no_positive_throughput() {
        // A token-free two-cycle cannot execute for any capacity; the
        // max-throughput analysis already refuses it.
        let mut b = SdfGraph::builder("dead");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel("r", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let err = explore_design_space(&g, &ExploreOptions::default()).unwrap_err();
        assert!(matches!(err, ExploreError::Analysis(_)));
    }

    #[test]
    fn two_actor_pipeline_front() {
        // x --2:1--> y, exec (1, 1): BMLB = 2; capacity 2 gives thr(y)
        // 2 per 2 steps = 1; larger capacities can reach 2 (y fires twice
        // per step? no — y's own execution time bounds it at 1).
        let mut b = SdfGraph::builder("p");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 2, y, 1).unwrap();
        let g = b.build().unwrap();
        let r = explore_design_space(&g, &ExploreOptions::default()).unwrap();
        assert_eq!(r.max_throughput, Rational::ONE);
        let front: Vec<(u64, Rational)> = r
            .pareto
            .points()
            .iter()
            .map(|p| (p.size, p.throughput))
            .collect();
        // Size 2: x fires, y drains two tokens in 2 steps while x waits →
        // still 1 firing of y per step on average? Verify via the result
        // being a consistent monotone front ending at 1.
        assert!(front.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(front.last().unwrap().1, Rational::ONE);
    }
}
