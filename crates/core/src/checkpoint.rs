//! Checkpointing of exploration runs.
//!
//! A checkpoint is the portable part of an exploration's memoized state:
//! the set of completed throughput evaluations (distribution → throughput
//! and reduced-state count). Restoring it via
//! [`ExploreOptions::warm_start`](crate::ExploreOptions::warm_start)
//! replays each entry as a recorded evaluation on first request, so a
//! resumed run reproduces the Pareto front *and* the statistics of an
//! uninterrupted one byte for byte.
//!
//! The on-disk format is a versioned, checksummed text file:
//!
//! ```text
//! buffy-checkpoint v2
//! fingerprint 00f3a6e2d1c4b597
//! channels 2
//! objectives storage,throughput
//! entries 2
//! 4 2 1/7 42
//! 5 3 1/6 57
//! checksum 8c1d2e3f4a5b6078
//! ```
//!
//! The fingerprint identifies the graph the entries belong to (callers
//! hash a canonical rendering of the model); the trailing checksum is the
//! [`fx_hash`] of everything above it, so truncated or corrupted files are
//! rejected instead of silently poisoning a resumed run. Writes go through
//! a temporary file renamed into place, so a crash mid-write never leaves
//! a half-written checkpoint at the target path.
//!
//! Version 2 adds the `objectives` header declaring the objective space
//! the run explored. The *entries* need no new columns: the energy axis
//! is derived from the recorded throughput when points are
//! reconstructed, so v1 files (no `objectives` line) are still read and
//! default to the paper's storage/throughput space.

use crate::explore::WarmStart;
use crate::objective::ObjectiveSpace;
use buffy_analysis::fx_hash;
use buffy_graph::{Rational, StorageDistribution};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Magic first line identifying the format and its version.
const MAGIC: &str = "buffy-checkpoint v2";

/// The previous format version, still accepted by [`Checkpoint::parse`]:
/// identical except for the missing `objectives` header.
const MAGIC_V1: &str = "buffy-checkpoint v1";

/// One completed evaluation: a storage distribution with its analysed
/// throughput and the size of the reduced state space the analysis stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The per-channel capacities of the distribution.
    pub capacities: Vec<u64>,
    /// The analysed throughput.
    pub throughput: Rational,
    /// Reduced states stored by the analysis (replayed into the
    /// `max_states` statistic on resume).
    pub states: u64,
}

/// A checkpoint: the completed evaluations of one exploration run, tagged
/// with a fingerprint of the graph they belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the model (callers hash a canonical rendering);
    /// resuming against a different graph is refused by the CLI.
    pub fingerprint: u64,
    /// Number of channels (length of every entry's capacity vector).
    pub channels: usize,
    /// The objective space the checkpointed run explored (v1 files
    /// default to the paper's storage/throughput pair).
    pub objectives: ObjectiveSpace,
    /// The completed evaluations.
    pub entries: Vec<CheckpointEntry>,
}

/// Errors loading or saving a [`Checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file is not a valid checkpoint (bad magic, malformed line,
    /// checksum mismatch, truncation).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn corrupt(m: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(m.into())
}

impl Checkpoint {
    /// An empty checkpoint for a graph with `channels` channels, in the
    /// default objective space (set [`objectives`](Self::objectives) for
    /// an extended run).
    pub fn new(fingerprint: u64, channels: usize) -> Checkpoint {
        Checkpoint {
            fingerprint,
            channels,
            objectives: ObjectiveSpace::default_2d(),
            entries: Vec::new(),
        }
    }

    /// Renders the checkpoint in its on-disk text format, including the
    /// trailing checksum line.
    pub fn render(&self) -> String {
        let mut body = String::new();
        let _ = writeln!(body, "{MAGIC}");
        let _ = writeln!(body, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(body, "channels {}", self.channels);
        let _ = writeln!(body, "objectives {}", self.objectives);
        let _ = writeln!(body, "entries {}", self.entries.len());
        for e in &self.entries {
            debug_assert_eq!(e.capacities.len(), self.channels);
            for c in &e.capacities {
                let _ = write!(body, "{c} ");
            }
            let _ = writeln!(body, "{} {}", e.throughput, e.states);
        }
        let checksum = fx_hash(&body);
        let _ = writeln!(body, "checksum {checksum:016x}");
        body
    }

    /// Parses the on-disk text format, verifying magic, counts and
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on any malformation.
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let idx = text
            .rfind("\nchecksum ")
            .ok_or_else(|| corrupt("missing checksum line"))?;
        let body = &text[..idx + 1];
        let declared = text[idx + "\nchecksum ".len()..].trim();
        let declared =
            u64::from_str_radix(declared, 16).map_err(|_| corrupt("malformed checksum"))?;
        let actual = fx_hash(&body.to_string());
        if declared != actual {
            return Err(corrupt(format!(
                "checksum mismatch: file says {declared:016x}, content hashes to {actual:016x}"
            )));
        }

        let mut lines = body.lines();
        let magic = lines.next().ok_or_else(|| corrupt("empty file"))?;
        if magic != MAGIC && magic != MAGIC_V1 {
            return Err(corrupt(format!(
                "unsupported header {magic:?} (expected {MAGIC:?})"
            )));
        }
        let field = |line: Option<&str>, name: &str| -> Result<String, CheckpointError> {
            let line = line.ok_or_else(|| corrupt(format!("missing {name} line")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("malformed {name} line {line:?}")))
        };
        let fingerprint = u64::from_str_radix(&field(lines.next(), "fingerprint")?, 16)
            .map_err(|_| corrupt("malformed fingerprint"))?;
        let channels: usize = field(lines.next(), "channels")?
            .parse()
            .map_err(|_| corrupt("malformed channel count"))?;
        let objectives = if magic == MAGIC {
            field(lines.next(), "objectives")?
                .parse()
                .map_err(|e| corrupt(format!("malformed objectives line: {e}")))?
        } else {
            ObjectiveSpace::default_2d()
        };
        let count: usize = field(lines.next(), "entries")?
            .parse()
            .map_err(|_| corrupt("malformed entry count"))?;

        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| corrupt("fewer entries than declared"))?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != channels + 2 {
                return Err(corrupt(format!("malformed entry line {line:?}")));
            }
            let capacities = fields[..channels]
                .iter()
                .map(|f| f.parse::<u64>())
                .collect::<Result<Vec<u64>, _>>()
                .map_err(|_| corrupt(format!("malformed capacity in {line:?}")))?;
            let throughput: Rational = fields[channels]
                .parse()
                .map_err(|_| corrupt(format!("malformed throughput in {line:?}")))?;
            let states: u64 = fields[channels + 1]
                .parse()
                .map_err(|_| corrupt(format!("malformed state count in {line:?}")))?;
            entries.push(CheckpointEntry {
                capacities,
                throughput,
                states,
            });
        }
        if lines.next().is_some() {
            return Err(corrupt("more entries than declared"));
        }
        Ok(Checkpoint {
            fingerprint,
            channels,
            objectives,
            entries,
        })
    }

    /// Writes the checkpoint to `path` atomically: the rendering goes to a
    /// sibling temporary file first and is renamed into place, so an
    /// interrupted write never leaves a torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when writing or renaming fails.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.render())
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            CheckpointError::Io(format!(
                "cannot rename {} to {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// Loads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when reading fails,
    /// [`CheckpointError::Corrupt`] when verification does.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("cannot read {}: {e}", path.display())))?;
        Checkpoint::parse(&text)
    }

    /// The warm-start map this checkpoint restores
    /// ([`ExploreOptions::warm_start`](crate::ExploreOptions::warm_start)).
    pub fn warm_start_map(&self) -> WarmStart {
        self.entries
            .iter()
            .map(|e| {
                (
                    StorageDistribution::from_capacities(e.capacities.clone()),
                    (e.throughput, e.states),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0x00f3_a6e2_d1c4_b597,
            channels: 2,
            objectives: ObjectiveSpace::default_2d(),
            entries: vec![
                CheckpointEntry {
                    capacities: vec![4, 2],
                    throughput: Rational::new(1, 7),
                    states: 42,
                },
                CheckpointEntry {
                    capacities: vec![5, 3],
                    throughput: Rational::new(1, 6),
                    states: 57,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let cp = sample();
        let text = cp.render();
        assert!(text.starts_with(MAGIC));
        assert!(text.ends_with('\n'));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, cp);
        let empty = Checkpoint::new(7, 3);
        assert_eq!(Checkpoint::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn warm_start_map_restores_entries() {
        let map = sample().warm_start_map();
        assert_eq!(map.len(), 2);
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        assert_eq!(map.get(&d), Some(&(Rational::new(1, 7), 42)));
    }

    #[test]
    fn corruption_is_rejected() {
        let text = sample().render();
        // Flip one capacity digit: the checksum no longer matches.
        let tampered = text.replacen("4 2 1/7", "9 2 1/7", 1);
        assert!(matches!(
            Checkpoint::parse(&tampered),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation loses the checksum line entirely.
        let truncated = &text[..text.len() / 2];
        assert!(Checkpoint::parse(truncated).is_err());
        // A different version tag is refused even with a valid checksum.
        let other = text.replacen("v2", "v9", 1);
        assert!(Checkpoint::parse(&other).is_err());
        // Entry count mismatch.
        let short = text.replacen("entries 2", "entries 3", 1);
        assert!(Checkpoint::parse(&short).is_err());
    }

    #[test]
    fn legacy_v1_files_parse_with_default_objectives() {
        let cp = sample();
        let v2 = cp.render();
        // Reconstruct what a v1 writer produced: downgrade the magic,
        // drop the objectives header, recompute the checksum.
        let idx = v2.rfind("\nchecksum ").unwrap();
        let body = v2[..idx + 1].replacen("v2", "v1", 1).replacen(
            "objectives storage,throughput\n",
            "",
            1,
        );
        let text = format!("{body}checksum {:016x}\n", fx_hash(&body));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, cp);
        assert!(back.objectives.is_default());
    }

    #[test]
    fn extended_objectives_round_trip() {
        let mut cp = sample();
        cp.objectives = ObjectiveSpace::with_energy();
        let text = cp.render();
        assert!(text.contains("objectives storage,throughput,energy\n"));
        assert_eq!(Checkpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "buffy-checkpoint-test-{}-{:x}",
            std::process::id(),
            fx_hash(&"save_and_load_round_trip")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        // Overwriting is atomic-by-rename: the temporary never lingers.
        cp.save(&path).unwrap();
        assert!(!dir.join("run.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
