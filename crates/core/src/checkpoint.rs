//! Checkpointing of exploration runs.
//!
//! A checkpoint is the portable part of an exploration's memoized state:
//! the set of completed throughput evaluations (distribution → throughput
//! and reduced-state count). Restoring it via
//! [`ExploreOptions::warm_start`](crate::ExploreOptions::warm_start)
//! replays each entry as a recorded evaluation on first request, so a
//! resumed run reproduces the Pareto front *and* the statistics of an
//! uninterrupted one byte for byte.
//!
//! The on-disk format is a versioned, checksummed text file:
//!
//! ```text
//! buffy-checkpoint v3
//! fingerprint 00f3a6e2d1c4b597
//! channels 2
//! objectives storage,throughput
//! entries 2
//! 4 2 1/7 42 0d8b2f1a3c4e5f60
//! 5 3 1/6 57 7a1b2c3d4e5f6071
//! checksum 8c1d2e3f4a5b6078
//! ```
//!
//! The fingerprint identifies the graph the entries belong to (callers
//! hash a canonical rendering of the model); the trailing checksum is the
//! [`fx_hash`] of everything above it, so truncated or corrupted files are
//! detected instead of silently poisoning a resumed run. Writes go through
//! a temporary file renamed into place, so a crash mid-write never leaves
//! a half-written checkpoint at the target path.
//!
//! Version 3 adds a per-record checksum column — the [`fx_hash`] of the
//! rest of the entry line — so a torn or truncated file is *salvageable*:
//! [`Checkpoint::salvage`] recovers the longest prefix of records whose
//! checksums verify, instead of rejecting the whole file the way the
//! strict [`Checkpoint::parse`] does. Only corruption *inside* a record
//! loses that record; everything before it warm-starts the resumed run.
//!
//! Version 2 added the `objectives` header declaring the objective space
//! the run explored; v1 lacked it. Both legacy versions are still read
//! (v1 defaults to the paper's storage/throughput space), but only v3
//! files carry record checksums and thus only v3 files can be salvaged.

use crate::explore::WarmStart;
use crate::fault::{FaultPlan, FaultSite};
use crate::objective::ObjectiveSpace;
use buffy_analysis::fx_hash;
use buffy_graph::{Rational, StorageDistribution};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Magic first line identifying the format and its version.
const MAGIC: &str = "buffy-checkpoint v3";

/// Previous format versions, still accepted by [`Checkpoint::parse`]:
/// v2 lacks the per-record checksums, v1 additionally lacks the
/// `objectives` header.
const MAGIC_V2: &str = "buffy-checkpoint v2";
const MAGIC_V1: &str = "buffy-checkpoint v1";

/// One completed evaluation: a storage distribution with its analysed
/// throughput and the size of the reduced state space the analysis stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The per-channel capacities of the distribution.
    pub capacities: Vec<u64>,
    /// The analysed throughput.
    pub throughput: Rational,
    /// Reduced states stored by the analysis (replayed into the
    /// `max_states` statistic on resume).
    pub states: u64,
}

/// A checkpoint: the completed evaluations of one exploration run, tagged
/// with a fingerprint of the graph they belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the model (callers hash a canonical rendering);
    /// resuming against a different graph is refused by the CLI.
    pub fingerprint: u64,
    /// Number of channels (length of every entry's capacity vector).
    pub channels: usize,
    /// The objective space the checkpointed run explored (v1 files
    /// default to the paper's storage/throughput pair).
    pub objectives: ObjectiveSpace,
    /// The completed evaluations.
    pub entries: Vec<CheckpointEntry>,
}

/// What [`Checkpoint::salvage`] recovered from a damaged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageReport {
    /// Entries the header declared.
    pub declared: usize,
    /// Entries whose record checksums verified (the salvaged prefix).
    pub salvaged: usize,
    /// Whether the file was in fact intact (strict parse succeeded, so
    /// nothing was lost).
    pub complete: bool,
}

/// Errors loading or saving a [`Checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file is not a valid checkpoint (bad magic, malformed line,
    /// checksum mismatch, truncation).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn corrupt(m: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(m.into())
}

/// Parses the header lines shared by every version. Returns the parsed
/// fields and the remaining line iterator positioned at the first entry.
struct Header {
    fingerprint: u64,
    channels: usize,
    objectives: ObjectiveSpace,
    count: usize,
}

fn parse_header(magic: &str, lines: &mut std::str::Lines<'_>) -> Result<Header, CheckpointError> {
    let field = |line: Option<&str>, name: &str| -> Result<String, CheckpointError> {
        let line = line.ok_or_else(|| corrupt(format!("missing {name} line")))?;
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| corrupt(format!("malformed {name} line {line:?}")))
    };
    let fingerprint = u64::from_str_radix(&field(lines.next(), "fingerprint")?, 16)
        .map_err(|_| corrupt("malformed fingerprint"))?;
    let channels: usize = field(lines.next(), "channels")?
        .parse()
        .map_err(|_| corrupt("malformed channel count"))?;
    let objectives = if magic == MAGIC_V1 {
        ObjectiveSpace::default_2d()
    } else {
        field(lines.next(), "objectives")?
            .parse()
            .map_err(|e| corrupt(format!("malformed objectives line: {e}")))?
    };
    let count: usize = field(lines.next(), "entries")?
        .parse()
        .map_err(|_| corrupt("malformed entry count"))?;
    Ok(Header {
        fingerprint,
        channels,
        objectives,
        count,
    })
}

/// Parses the version-independent payload of an entry line
/// (`cap... throughput states`).
fn parse_entry_fields(payload: &str, channels: usize) -> Result<CheckpointEntry, CheckpointError> {
    let fields: Vec<&str> = payload.split_whitespace().collect();
    if fields.len() != channels + 2 {
        return Err(corrupt(format!("malformed entry line {payload:?}")));
    }
    let capacities = fields[..channels]
        .iter()
        .map(|f| f.parse::<u64>())
        .collect::<Result<Vec<u64>, _>>()
        .map_err(|_| corrupt(format!("malformed capacity in {payload:?}")))?;
    let throughput: Rational = fields[channels]
        .parse()
        .map_err(|_| corrupt(format!("malformed throughput in {payload:?}")))?;
    let states: u64 = fields[channels + 1]
        .parse()
        .map_err(|_| corrupt(format!("malformed state count in {payload:?}")))?;
    Ok(CheckpointEntry {
        capacities,
        throughput,
        states,
    })
}

/// Parses and checksum-verifies one v3 entry line
/// (`cap... throughput states recordhash`).
fn parse_entry_v3(line: &str, channels: usize) -> Result<CheckpointEntry, CheckpointError> {
    let (payload, declared) = line
        .rsplit_once(' ')
        .ok_or_else(|| corrupt(format!("malformed entry line {line:?}")))?;
    if declared.len() != 16 {
        return Err(corrupt(format!("malformed record checksum in {line:?}")));
    }
    let declared =
        u64::from_str_radix(declared, 16).map_err(|_| corrupt("malformed record checksum"))?;
    let actual = fx_hash(payload);
    if declared != actual {
        return Err(corrupt(format!(
            "record checksum mismatch in {line:?}: declared {declared:016x}, payload hashes to {actual:016x}"
        )));
    }
    parse_entry_fields(payload, channels)
}

impl Checkpoint {
    /// An empty checkpoint for a graph with `channels` channels, in the
    /// default objective space (set [`objectives`](Self::objectives) for
    /// an extended run).
    pub fn new(fingerprint: u64, channels: usize) -> Checkpoint {
        Checkpoint {
            fingerprint,
            channels,
            objectives: ObjectiveSpace::default_2d(),
            entries: Vec::new(),
        }
    }

    /// Renders the checkpoint in its on-disk text format (v3), including
    /// per-record checksums and the trailing whole-file checksum line.
    pub fn render(&self) -> String {
        let mut body = String::new();
        let _ = writeln!(body, "{MAGIC}");
        let _ = writeln!(body, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(body, "channels {}", self.channels);
        let _ = writeln!(body, "objectives {}", self.objectives);
        let _ = writeln!(body, "entries {}", self.entries.len());
        let mut payload = String::new();
        for e in &self.entries {
            debug_assert_eq!(e.capacities.len(), self.channels);
            payload.clear();
            for c in &e.capacities {
                let _ = write!(payload, "{c} ");
            }
            let _ = write!(payload, "{} {}", e.throughput, e.states);
            let _ = writeln!(body, "{payload} {:016x}", fx_hash(&payload));
        }
        let checksum = fx_hash(&body);
        let _ = writeln!(body, "checksum {checksum:016x}");
        body
    }

    /// Parses the on-disk text format strictly, verifying magic, counts,
    /// record checksums (v3) and the whole-file checksum. Accepts v1, v2
    /// and v3 files.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on any malformation. For a damaged v3
    /// file, [`Checkpoint::salvage`] can recover the valid prefix instead.
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let idx = text
            .rfind("\nchecksum ")
            .ok_or_else(|| corrupt("missing checksum line"))?;
        let body = &text[..idx + 1];
        let declared = text[idx + "\nchecksum ".len()..].trim();
        let declared =
            u64::from_str_radix(declared, 16).map_err(|_| corrupt("malformed checksum"))?;
        let actual = fx_hash(body);
        if declared != actual {
            return Err(corrupt(format!(
                "checksum mismatch: file says {declared:016x}, content hashes to {actual:016x}"
            )));
        }

        let mut lines = body.lines();
        let magic = lines.next().ok_or_else(|| corrupt("empty file"))?;
        if magic != MAGIC && magic != MAGIC_V2 && magic != MAGIC_V1 {
            return Err(corrupt(format!(
                "unsupported header {magic:?} (expected {MAGIC:?})"
            )));
        }
        let header = parse_header(magic, &mut lines)?;

        let mut entries = Vec::with_capacity(header.count);
        for _ in 0..header.count {
            let line = lines
                .next()
                .ok_or_else(|| corrupt("fewer entries than declared"))?;
            let entry = if magic == MAGIC {
                parse_entry_v3(line, header.channels)?
            } else {
                parse_entry_fields(line, header.channels)?
            };
            entries.push(entry);
        }
        if lines.next().is_some() {
            return Err(corrupt("more entries than declared"));
        }
        Ok(Checkpoint {
            fingerprint: header.fingerprint,
            channels: header.channels,
            objectives: header.objectives,
            entries,
        })
    }

    /// Recovers the longest valid prefix of a damaged v3 checkpoint.
    ///
    /// Tries the strict [`parse`](Checkpoint::parse) first; when that
    /// fails on a v3 file with an intact header, entry lines are accepted
    /// for as long as their per-record checksums verify, and the first
    /// torn, truncated or corrupted record stops the scan. The salvaged
    /// prefix warm-starts a resumed run that completes byte-identically
    /// to one resumed from the full file's prefix.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the header itself is damaged, or
    /// when the file is a legacy v1/v2 checkpoint (no record checksums to
    /// verify a prefix against).
    pub fn salvage(text: &str) -> Result<(Checkpoint, SalvageReport), CheckpointError> {
        let strict = match Checkpoint::parse(text) {
            Ok(cp) => {
                let n = cp.entries.len();
                return Ok((
                    cp,
                    SalvageReport {
                        declared: n,
                        salvaged: n,
                        complete: true,
                    },
                ));
            }
            Err(e) => e,
        };

        let mut lines = text.lines();
        let magic = lines.next().ok_or_else(|| corrupt("empty file"))?;
        if magic != MAGIC {
            // Legacy files carry no record checksums: a damaged prefix
            // cannot be verified, so the strict error stands.
            return Err(strict);
        }
        let header = parse_header(magic, &mut lines)?;

        let mut entries = Vec::new();
        for line in lines {
            if entries.len() == header.count || line.starts_with("checksum ") {
                break;
            }
            match parse_entry_v3(line, header.channels) {
                Ok(entry) => entries.push(entry),
                Err(_) => break,
            }
        }
        let salvaged = entries.len();
        Ok((
            Checkpoint {
                fingerprint: header.fingerprint,
                channels: header.channels,
                objectives: header.objectives,
                entries,
            },
            SalvageReport {
                declared: header.count,
                salvaged,
                complete: false,
            },
        ))
    }

    /// Writes the checkpoint to `path` atomically: the rendering goes to a
    /// sibling temporary file first and is renamed into place, so an
    /// interrupted write never leaves a torn checkpoint at the target.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when writing or renaming fails.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_with(path, None)
    }

    /// [`save`](Checkpoint::save) with an optional fault plan injecting
    /// torn writes ([`FaultSite::CheckpointWrite`]: only a prefix of the
    /// rendering reaches the temp file) and failed renames
    /// ([`FaultSite::CheckpointRename`]: the temp file is written but
    /// never published). Both surface as [`CheckpointError::Io`], exactly
    /// like the real failures they model.
    pub fn save_with(
        &self,
        path: &Path,
        faults: Option<&FaultPlan>,
    ) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let text = self.render();
        if let Some(plan) = faults {
            if plan.should_inject(FaultSite::CheckpointWrite) {
                // A torn write: two thirds of the bytes land, then the
                // "device" gives up.
                let torn = &text[..text.len() * 2 / 3];
                let _ = std::fs::write(&tmp, torn);
                return Err(CheckpointError::Io(format!(
                    "injected torn write to {}",
                    tmp.display()
                )));
            }
        }
        std::fs::write(&tmp, &text)
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", tmp.display())))?;
        if let Some(plan) = faults {
            if plan.should_inject(FaultSite::CheckpointRename) {
                return Err(CheckpointError::Io(format!(
                    "injected rename failure for {}",
                    tmp.display()
                )));
            }
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            CheckpointError::Io(format!(
                "cannot rename {} to {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// Loads and strictly verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when reading fails,
    /// [`CheckpointError::Corrupt`] when verification does.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("cannot read {}: {e}", path.display())))?;
        Checkpoint::parse(&text)
    }

    /// Loads a checkpoint from `path`, salvaging the longest valid prefix
    /// when the file is a damaged v3 checkpoint
    /// (see [`salvage`](Checkpoint::salvage)).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when reading fails,
    /// [`CheckpointError::Corrupt`] when not even a prefix is recoverable.
    pub fn load_salvaged(path: &Path) -> Result<(Checkpoint, SalvageReport), CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("cannot read {}: {e}", path.display())))?;
        Checkpoint::salvage(&text)
    }

    /// The warm-start map this checkpoint restores
    /// ([`ExploreOptions::warm_start`](crate::ExploreOptions::warm_start)).
    pub fn warm_start_map(&self) -> WarmStart {
        self.entries
            .iter()
            .map(|e| {
                (
                    StorageDistribution::from_capacities(e.capacities.clone()),
                    (e.throughput, e.states),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0x00f3_a6e2_d1c4_b597,
            channels: 2,
            objectives: ObjectiveSpace::default_2d(),
            entries: vec![
                CheckpointEntry {
                    capacities: vec![4, 2],
                    throughput: Rational::new(1, 7),
                    states: 42,
                },
                CheckpointEntry {
                    capacities: vec![5, 3],
                    throughput: Rational::new(1, 6),
                    states: 57,
                },
            ],
        }
    }

    /// Renders `cp` the way a legacy v1/v2 writer did: no record
    /// checksums, and for v1 no objectives header.
    fn render_legacy(cp: &Checkpoint, magic: &str) -> String {
        let mut body = String::new();
        let _ = writeln!(body, "{magic}");
        let _ = writeln!(body, "fingerprint {:016x}", cp.fingerprint);
        let _ = writeln!(body, "channels {}", cp.channels);
        if magic != MAGIC_V1 {
            let _ = writeln!(body, "objectives {}", cp.objectives);
        }
        let _ = writeln!(body, "entries {}", cp.entries.len());
        for e in &cp.entries {
            for c in &e.capacities {
                let _ = write!(body, "{c} ");
            }
            let _ = writeln!(body, "{} {}", e.throughput, e.states);
        }
        let checksum = fx_hash(&body);
        let _ = writeln!(body, "checksum {checksum:016x}");
        body
    }

    #[test]
    fn render_parse_round_trips() {
        let cp = sample();
        let text = cp.render();
        assert!(text.starts_with(MAGIC));
        assert!(text.ends_with('\n'));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, cp);
        let empty = Checkpoint::new(7, 3);
        assert_eq!(Checkpoint::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn warm_start_map_restores_entries() {
        let map = sample().warm_start_map();
        assert_eq!(map.len(), 2);
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        assert_eq!(map.get(&d), Some(&(Rational::new(1, 7), 42)));
    }

    #[test]
    fn corruption_is_rejected() {
        let text = sample().render();
        // Flip one capacity digit: the checksums no longer match.
        let tampered = text.replacen("4 2 1/7", "9 2 1/7", 1);
        assert!(matches!(
            Checkpoint::parse(&tampered),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation loses the checksum line entirely.
        let truncated = &text[..text.len() / 2];
        assert!(Checkpoint::parse(truncated).is_err());
        // A different version tag is refused even with a valid checksum.
        let other = text.replacen("v3", "v9", 1);
        assert!(Checkpoint::parse(&other).is_err());
        // Entry count mismatch.
        let short = text.replacen("entries 2", "entries 3", 1);
        assert!(Checkpoint::parse(&short).is_err());
    }

    #[test]
    fn legacy_v1_files_parse_with_default_objectives() {
        let cp = sample();
        let text = render_legacy(&cp, MAGIC_V1);
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, cp);
        assert!(back.objectives.is_default());
    }

    #[test]
    fn legacy_v2_files_parse() {
        let mut cp = sample();
        cp.objectives = ObjectiveSpace::with_energy();
        let text = render_legacy(&cp, MAGIC_V2);
        assert!(text.contains("objectives storage,throughput,energy\n"));
        assert_eq!(Checkpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn legacy_files_cannot_be_salvaged() {
        let cp = sample();
        let text = render_legacy(&cp, MAGIC_V2);
        // Damage an entry: strict parse fails, and salvage refuses too
        // (no record checksums to trust a prefix by).
        let tampered = text.replacen("4 2 1/7", "9 2 1/7", 1);
        assert!(Checkpoint::salvage(&tampered).is_err());
        // An intact legacy file still loads through the salvage path.
        let (back, report) = Checkpoint::salvage(&text).unwrap();
        assert_eq!(back, cp);
        assert!(report.complete);
    }

    #[test]
    fn extended_objectives_round_trip() {
        let mut cp = sample();
        cp.objectives = ObjectiveSpace::with_energy();
        let text = cp.render();
        assert!(text.contains("objectives storage,throughput,energy\n"));
        assert_eq!(Checkpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn salvage_recovers_prefix_at_any_record_boundary() {
        let cp = sample();
        let text = cp.render();
        let header_end = {
            // Byte offset just past the "entries N" line.
            let idx = text.find("entries 2\n").unwrap();
            idx + "entries 2\n".len()
        };
        let line_ends: Vec<usize> = text[header_end..]
            .match_indices('\n')
            .take(cp.entries.len())
            .map(|(i, _)| header_end + i + 1)
            .collect();
        for (k, &end) in line_ends.iter().enumerate() {
            let truncated = &text[..end];
            assert!(Checkpoint::parse(truncated).is_err());
            let (salv, report) = Checkpoint::salvage(truncated).unwrap();
            assert_eq!(salv.entries, cp.entries[..k + 1]);
            assert_eq!(report.declared, 2);
            assert_eq!(report.salvaged, k + 1);
            assert!(!report.complete);
            assert_eq!(salv.fingerprint, cp.fingerprint);
            assert_eq!(salv.objectives, cp.objectives);
        }
        // Truncating into the middle of record 2 keeps record 1 only.
        let mid = (line_ends[0] + line_ends[1]) / 2;
        let (salv, report) = Checkpoint::salvage(&text[..mid]).unwrap();
        assert_eq!(salv.entries, cp.entries[..1]);
        assert_eq!(report.salvaged, 1);
    }

    #[test]
    fn salvage_rejects_only_the_corrupt_record() {
        let text = sample().render();
        // Corrupt the *second* record's payload: its record checksum no
        // longer matches, so salvage keeps exactly the first record.
        let tampered = text.replacen("5 3 1/6", "5 9 1/6", 1);
        assert!(Checkpoint::parse(&tampered).is_err());
        let (salv, report) = Checkpoint::salvage(&tampered).unwrap();
        assert_eq!(report.salvaged, 1);
        assert_eq!(salv.entries, sample().entries[..1]);
        // Corrupting the *first* record salvages an empty (but valid)
        // checkpoint: header metadata survives, entries do not.
        let tampered = text.replacen("4 2 1/7", "9 2 1/7", 1);
        let (salv, report) = Checkpoint::salvage(&tampered).unwrap();
        assert_eq!(report.salvaged, 0);
        assert!(salv.entries.is_empty());
        assert_eq!(salv.fingerprint, sample().fingerprint);
        // A damaged header is beyond salvage.
        let tampered = text.replacen("channels 2", "channels x", 1);
        assert!(Checkpoint::salvage(&tampered).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "buffy-checkpoint-test-{}-{:x}",
            std::process::id(),
            fx_hash(&"save_and_load_round_trip")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        // Overwriting is atomic-by-rename: the temporary never lingers.
        cp.save(&path).unwrap();
        assert!(!dir.join("run.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_save_faults_surface_as_io_errors() {
        let dir = std::env::temp_dir().join(format!(
            "buffy-checkpoint-test-{}-{:x}",
            std::process::id(),
            fx_hash(&"injected_save_faults")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cp = sample();

        // Torn write: the target is never created, the temp file holds a
        // prefix that still salvages.
        let path = dir.join("torn.ckpt");
        let plan = FaultPlan::new(0).with_rate(FaultSite::CheckpointWrite, 1, 1);
        assert!(matches!(
            cp.save_with(&path, Some(&plan)),
            Err(CheckpointError::Io(_))
        ));
        assert!(!path.exists());
        let torn = std::fs::read_to_string(dir.join("torn.ckpt.tmp")).unwrap();
        assert!(Checkpoint::parse(&torn).is_err());
        let (salv, report) = Checkpoint::salvage(&torn).unwrap();
        assert!(!report.complete);
        assert!(salv.entries.len() < cp.entries.len() || report.salvaged < report.declared);

        // Failed rename: the temp file is complete but unpublished.
        let path = dir.join("rename.ckpt");
        let plan = FaultPlan::new(0).with_rate(FaultSite::CheckpointRename, 1, 1);
        assert!(matches!(
            cp.save_with(&path, Some(&plan)),
            Err(CheckpointError::Io(_))
        ));
        assert!(!path.exists());
        assert_eq!(
            Checkpoint::parse(&std::fs::read_to_string(dir.join("rename.ckpt.tmp")).unwrap())
                .unwrap(),
            cp
        );

        // A quiet plan leaves saves untouched.
        let path = dir.join("quiet.ckpt");
        let plan = FaultPlan::new(0);
        cp.save_with(&path, Some(&plan)).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
