//! Live observation: observer fan-out and the shared surface an embedded
//! observability server reads while a search runs.
//!
//! Three pieces, mirroring the recorder's "zero overhead by default"
//! contract (DESIGN.md §9): when nothing here is attached, the drivers
//! still see a single `&dyn ExploreObserver` no-op; when attached, the
//! observers only *read* the event stream, so the evaluated candidate
//! set — and with it the front and every statistic — stays byte-identical
//! with observation on or off, at any thread count.
//!
//! - [`TeeObserver`] fans every [`ExploreObserver`] event out to a list
//!   of downstream observers in a fixed order (the CLI tees its progress
//!   /trace observer together with the live one below);
//! - [`LiveStats`] is a lock-free bundle of atomic counters plus the
//!   current [`SearchPhase`] and a small mutex-guarded copy of the
//!   Pareto front under construction — everything a `/status` endpoint
//!   wants as a point-in-time snapshot;
//! - [`EventRing`] is a bounded ring buffer of [`LiveEvent`]s with
//!   monotonically increasing sequence numbers, so a Server-Sent-Events
//!   handler can replay history from any cursor and then tail the live
//!   stream; when the ring wraps, the drop count is recorded instead of
//!   blocking the search.
//!
//! [`LiveObserver`] ties the latter two together behind the observer
//! trait.

use crate::pareto::{ParetoPoint, ParetoSet};
use crate::runtime::{ExploreObserver, PruneKind, SearchPhase};
use buffy_graph::{Rational, StorageDistribution};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fans every observer event out to each downstream observer, in the
/// order they were added. Events are delivered synchronously on the
/// calling worker thread; downstream observers must therefore stay as
/// cheap as the contract on [`ExploreObserver`] demands.
pub struct TeeObserver<'a> {
    sinks: Vec<&'a dyn ExploreObserver>,
}

impl<'a> TeeObserver<'a> {
    /// An empty tee (equivalent to [`NoopObserver`](crate::NoopObserver)).
    pub fn new() -> TeeObserver<'a> {
        TeeObserver { sinks: Vec::new() }
    }

    /// The common case: a tee over exactly two observers.
    pub fn pair(
        first: &'a dyn ExploreObserver,
        second: &'a dyn ExploreObserver,
    ) -> TeeObserver<'a> {
        TeeObserver {
            sinks: vec![first, second],
        }
    }

    /// Appends `sink` to the fan-out list.
    pub fn push(&mut self, sink: &'a dyn ExploreObserver) {
        self.sinks.push(sink);
    }
}

impl Default for TeeObserver<'_> {
    fn default() -> Self {
        TeeObserver::new()
    }
}

impl std::fmt::Debug for TeeObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl ExploreObserver for TeeObserver<'_> {
    fn phase_started(&self, phase: SearchPhase) {
        for s in &self.sinks {
            s.phase_started(phase);
        }
    }

    fn evaluation_started(&self, dist: &StorageDistribution) {
        for s in &self.sinks {
            s.evaluation_started(dist);
        }
    }

    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        for s in &self.sinks {
            s.evaluation_finished(dist, throughput, states, nanos);
        }
    }

    fn cache_hit(&self, dist: &StorageDistribution) {
        for s in &self.sinks {
            s.cache_hit(dist);
        }
    }

    fn evaluation_failed(&self, dist: &StorageDistribution, message: &str) {
        for s in &self.sinks {
            s.evaluation_failed(dist, message);
        }
    }

    fn pareto_accepted(&self, point: &ParetoPoint) {
        for s in &self.sinks {
            s.pareto_accepted(point);
        }
    }

    fn distribution_pruned(&self, dist: &StorageDistribution, kind: PruneKind) {
        for s in &self.sinks {
            s.distribution_pruned(dist, kind);
        }
    }
}

/// Lock-free counters describing a search in flight, plus a small
/// mutex-guarded mirror of the Pareto front under construction.
///
/// All counters are plain relaxed atomics — readers get a consistent
/// *enough* point-in-time view for monitoring (each counter individually
/// exact, cross-counter skew bounded by whatever events landed between
/// the loads), which is the same contract Prometheus scrapes live with.
#[derive(Debug)]
pub struct LiveStats {
    started: Instant,
    phase: AtomicUsize,
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    static_prunes: AtomicU64,
    dominance_prunes: AtomicU64,
    failures: AtomicU64,
    accepted: AtomicU64,
    finished: AtomicBool,
    front: Mutex<ParetoSet>,
}

/// Phase slot value for "no phase reported yet".
const PHASE_NONE: usize = 0;

fn phase_index(phase: SearchPhase) -> usize {
    match phase {
        SearchPhase::Bounds => 1,
        SearchPhase::MinimalSize => 2,
        SearchPhase::FrontSearch => 3,
        SearchPhase::ConstraintSearch => 4,
        SearchPhase::GuidedSearch => 5,
    }
}

fn phase_name_of(index: usize) -> Option<&'static str> {
    match index {
        1 => Some(SearchPhase::Bounds.name()),
        2 => Some(SearchPhase::MinimalSize.name()),
        3 => Some(SearchPhase::FrontSearch.name()),
        4 => Some(SearchPhase::ConstraintSearch.name()),
        5 => Some(SearchPhase::GuidedSearch.name()),
        _ => None,
    }
}

impl LiveStats {
    fn new() -> LiveStats {
        LiveStats {
            started: Instant::now(),
            phase: AtomicUsize::new(PHASE_NONE),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            static_prunes: AtomicU64::new(0),
            dominance_prunes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            front: Mutex::new(ParetoSet::new()),
        }
    }

    /// Microseconds since the observer was created.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Name of the most recently entered [`SearchPhase`], `None` before
    /// the first phase event.
    pub fn phase_name(&self) -> Option<&'static str> {
        phase_name_of(self.phase.load(Ordering::Relaxed))
    }

    /// Completed throughput analyses (cache misses that ran).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Evaluation requests answered from the memo cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Candidates decided by a static cycle-ratio certificate.
    pub fn static_prunes(&self) -> u64 {
        self.static_prunes.load(Ordering::Relaxed)
    }

    /// Candidates decided by throughput monotonicity.
    pub fn dominance_prunes(&self) -> u64 {
        self.dominance_prunes.load(Ordering::Relaxed)
    }

    /// Contained analysis panics degraded to recorded failures.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Points accepted into the front under construction (some may since
    /// have been evicted by dominating points; see [`front`](Self::front)
    /// for the surviving set).
    pub fn pareto_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Whether [`LiveObserver::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// A clone of the current best-known Pareto front, dominance applied.
    pub fn front(&self) -> Vec<ParetoPoint> {
        let set = self.front.lock().unwrap_or_else(|e| e.into_inner());
        set.points().to_vec()
    }

    /// Size of the current best-known Pareto front.
    pub fn front_size(&self) -> usize {
        let set = self.front.lock().unwrap_or_else(|e| e.into_inner());
        set.points().len()
    }
}

/// One observer event, copied out of the search so it can outlive the
/// borrowed payloads the [`ExploreObserver`] callbacks receive.
///
/// High-frequency events carry the full distribution (a handful of
/// `u64`s) by value; this is what a streaming endpoint replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveEvent {
    /// A search driver entered a phase.
    Phase {
        /// Stable phase name ([`SearchPhase::name`]).
        name: &'static str,
    },
    /// A throughput analysis finished.
    Evaluation {
        /// Per-channel capacities of the evaluated distribution.
        capacities: Vec<u64>,
        /// `sz(γ)` of the distribution.
        size: u64,
        /// The analysed throughput.
        throughput: Rational,
        /// Reduced states stored by the analysis.
        states: u64,
        /// Analysis wall time in nanoseconds.
        nanos: u64,
    },
    /// An evaluation request was answered from the memo cache.
    CacheHit {
        /// Per-channel capacities of the requested distribution.
        capacities: Vec<u64>,
    },
    /// The prune oracle skipped a candidate without analysing it.
    Pruned {
        /// Per-channel capacities of the skipped distribution.
        capacities: Vec<u64>,
        /// Stable prune-kind name ([`PruneKind::name`]).
        kind: &'static str,
    },
    /// A point was accepted into the Pareto front under construction.
    Pareto {
        /// Per-channel capacities of the witnessing distribution.
        capacities: Vec<u64>,
        /// `sz(γ)` of the accepted point.
        size: u64,
        /// Throughput of the accepted point.
        throughput: Rational,
    },
    /// A throughput analysis panicked and was degraded to a failure.
    Failed {
        /// Per-channel capacities of the failing distribution.
        capacities: Vec<u64>,
        /// The contained panic message.
        message: String,
    },
    /// The search finished; no further events will follow.
    End {
        /// Why the search ended (`"exhausted"`, `"budget"`, …).
        reason: String,
    },
}

impl LiveEvent {
    /// Stable event-type name, usable as an SSE `event:` field.
    pub fn kind(&self) -> &'static str {
        match self {
            LiveEvent::Phase { .. } => "phase",
            LiveEvent::Evaluation { .. } => "evaluation",
            LiveEvent::CacheHit { .. } => "cache-hit",
            LiveEvent::Pruned { .. } => "pruned",
            LiveEvent::Pareto { .. } => "pareto",
            LiveEvent::Failed { .. } => "evaluation-failed",
            LiveEvent::End { .. } => "end",
        }
    }
}

struct RingInner {
    events: VecDeque<(u64, LiveEvent)>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`LiveEvent`]s with monotonically increasing
/// sequence numbers.
///
/// Appends run on search worker threads and take a short uncontended
/// mutex (the guarded work is a `VecDeque` push and at most one pop);
/// readers poll [`since`](EventRing::since) with a cursor and never block
/// the writers for longer than one copy of the pending slice. When the
/// buffer is full the oldest event is dropped and counted — a slow or
/// absent reader can lose history, never stall the search.
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends an event, dropping (and counting) the oldest if full.
    pub fn push(&self, event: LiveEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back((seq, event));
    }

    /// All buffered events with sequence number `>= cursor`, oldest
    /// first. The caller's next cursor is `last returned seq + 1` (or an
    /// unchanged cursor when nothing new arrived).
    pub fn since(&self, cursor: u64) -> Vec<(u64, LiveEvent)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .events
            .iter()
            .filter(|(seq, _)| *seq >= cursor)
            .cloned()
            .collect()
    }

    /// Events lost to ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Sequence number the next pushed event will get.
    pub fn next_seq(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
    }
}

/// Default [`EventRing`] capacity used by [`LiveObserver::new`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The observer an embedded observability server reads: every event
/// updates the lock-free [`LiveStats`] and lands in the [`EventRing`].
///
/// Like the recorder, attaching this observer never feeds anything back
/// into the search: the front and [`crate::ExplorationStats`] of a run
/// are byte-identical with it on or off.
#[derive(Debug)]
pub struct LiveObserver {
    stats: std::sync::Arc<LiveStats>,
    ring: std::sync::Arc<EventRing>,
}

impl LiveObserver {
    /// An observer with the [`DEFAULT_RING_CAPACITY`].
    pub fn new() -> LiveObserver {
        LiveObserver::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An observer whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> LiveObserver {
        LiveObserver {
            stats: std::sync::Arc::new(LiveStats::new()),
            ring: std::sync::Arc::new(EventRing::new(capacity)),
        }
    }

    /// Shared handle to the live counters.
    pub fn stats(&self) -> std::sync::Arc<LiveStats> {
        std::sync::Arc::clone(&self.stats)
    }

    /// Shared handle to the event ring.
    pub fn ring(&self) -> std::sync::Arc<EventRing> {
        std::sync::Arc::clone(&self.ring)
    }

    /// Marks the run finished: appends the terminal [`LiveEvent::End`]
    /// and flips [`LiveStats::is_finished`]. Idempotent — only the first
    /// call appends the event.
    pub fn finish(&self, reason: &str) {
        if self.stats.finished.swap(true, Ordering::Relaxed) {
            return;
        }
        self.ring.push(LiveEvent::End {
            reason: reason.to_string(),
        });
    }
}

impl Default for LiveObserver {
    fn default() -> Self {
        LiveObserver::new()
    }
}

impl ExploreObserver for LiveObserver {
    fn phase_started(&self, phase: SearchPhase) {
        self.stats
            .phase
            .store(phase_index(phase), Ordering::Relaxed);
        self.ring.push(LiveEvent::Phase { name: phase.name() });
    }

    fn evaluation_finished(
        &self,
        dist: &StorageDistribution,
        throughput: Rational,
        states: u64,
        nanos: u64,
    ) {
        self.stats.evaluations.fetch_add(1, Ordering::Relaxed);
        self.ring.push(LiveEvent::Evaluation {
            capacities: dist.as_slice().to_vec(),
            size: dist.size(),
            throughput,
            states,
            nanos,
        });
    }

    fn cache_hit(&self, dist: &StorageDistribution) {
        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.ring.push(LiveEvent::CacheHit {
            capacities: dist.as_slice().to_vec(),
        });
    }

    fn evaluation_failed(&self, dist: &StorageDistribution, message: &str) {
        self.stats.failures.fetch_add(1, Ordering::Relaxed);
        self.ring.push(LiveEvent::Failed {
            capacities: dist.as_slice().to_vec(),
            message: message.to_string(),
        });
    }

    fn pareto_accepted(&self, point: &ParetoPoint) {
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        {
            let mut front = self.stats.front.lock().unwrap_or_else(|e| e.into_inner());
            front.insert(point.clone());
        }
        self.ring.push(LiveEvent::Pareto {
            capacities: point.distribution.as_slice().to_vec(),
            size: point.size,
            throughput: point.throughput,
        });
    }

    fn distribution_pruned(&self, dist: &StorageDistribution, kind: PruneKind) {
        match kind {
            PruneKind::Static => self.stats.static_prunes.fetch_add(1, Ordering::Relaxed),
            PruneKind::Dominance => self.stats.dominance_prunes.fetch_add(1, Ordering::Relaxed),
        };
        self.ring.push(LiveEvent::Pruned {
            capacities: dist.as_slice().to_vec(),
            kind: kind.name(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[derive(Default)]
    struct CountingObserver {
        phases: Counter,
        evals: Counter,
    }

    impl ExploreObserver for CountingObserver {
        fn phase_started(&self, _phase: SearchPhase) {
            self.phases.fetch_add(1, Ordering::Relaxed);
        }
        fn evaluation_finished(
            &self,
            _dist: &StorageDistribution,
            _throughput: Rational,
            _states: u64,
            _nanos: u64,
        ) {
            self.evals.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dist(caps: &[u64]) -> StorageDistribution {
        StorageDistribution::from_capacities(caps.to_vec())
    }

    #[test]
    fn tee_fans_out_to_every_sink_in_order() {
        let a = CountingObserver::default();
        let b = CountingObserver::default();
        let mut tee = TeeObserver::pair(&a, &b);
        let c = CountingObserver::default();
        tee.push(&c);
        tee.phase_started(SearchPhase::Bounds);
        tee.evaluation_finished(&dist(&[1, 2]), Rational::new(1, 2), 3, 4);
        tee.evaluation_finished(&dist(&[2, 2]), Rational::new(1, 2), 3, 4);
        for obs in [&a, &b, &c] {
            assert_eq!(obs.phases.load(Ordering::Relaxed), 1);
            assert_eq!(obs.evals.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn live_observer_counts_and_buffers_events() {
        let live = LiveObserver::new();
        live.phase_started(SearchPhase::FrontSearch);
        live.evaluation_finished(&dist(&[1, 1]), Rational::new(1, 3), 5, 100);
        live.cache_hit(&dist(&[1, 1]));
        live.distribution_pruned(&dist(&[2, 1]), PruneKind::Static);
        live.distribution_pruned(&dist(&[2, 2]), PruneKind::Dominance);
        live.evaluation_failed(&dist(&[3, 1]), "boom");
        live.pareto_accepted(&ParetoPoint::new(dist(&[1, 1]), Rational::new(1, 3)));

        let stats = live.stats();
        assert_eq!(stats.phase_name(), Some("front-search"));
        assert_eq!(stats.evaluations(), 1);
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(stats.static_prunes(), 1);
        assert_eq!(stats.dominance_prunes(), 1);
        assert_eq!(stats.failures(), 1);
        assert_eq!(stats.pareto_accepted(), 1);
        assert_eq!(stats.front_size(), 1);
        assert!(!stats.is_finished());

        let events = live.ring().since(0);
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "phase",
                "evaluation",
                "cache-hit",
                "pruned",
                "pruned",
                "evaluation-failed",
                "pareto"
            ]
        );

        live.finish("exhausted");
        live.finish("exhausted"); // idempotent: only one end event
        assert!(stats.is_finished());
        let tail = live.ring().since(events.len() as u64);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].1.kind(), "end");
    }

    #[test]
    fn live_front_applies_dominance() {
        let live = LiveObserver::new();
        live.pareto_accepted(&ParetoPoint::new(dist(&[2, 2]), Rational::new(1, 4)));
        // Same throughput at smaller size dominates the first point.
        live.pareto_accepted(&ParetoPoint::new(dist(&[1, 2]), Rational::new(1, 4)));
        assert_eq!(live.stats().pareto_accepted(), 2);
        assert_eq!(live.stats().front_size(), 1);
        assert_eq!(live.stats().front()[0].size, 3);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let ring = EventRing::new(2);
        for i in 0..5 {
            ring.push(LiveEvent::Phase { name: "bounds" });
            assert_eq!(ring.next_seq(), i + 1);
        }
        assert_eq!(ring.dropped(), 3);
        let events = ring.since(0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, 3);
        assert_eq!(events[1].0, 4);
        assert!(ring.since(5).is_empty());
    }
}
