//! Minimal storage under a throughput constraint.
//!
//! The paper's headline question: *given a throughput constraint, what is
//! the smallest storage distribution under which the graph can be executed
//! with a schedule meeting it?* This module answers it directly — without
//! charting the whole Pareto space — by a binary search over the monotone
//! size dimension, deciding each size with an early-exit enumeration
//! (paper §9).

use crate::bounds::upper_bound_distribution_with;
use crate::enumerate::DistributionSpace;
use crate::error::ExploreError;
use crate::explore::{salvage, ExploreOptions, SKIP_COUNT_CAP};
use crate::pareto::ParetoPoint;
use crate::pipeline::EvalPipeline;
use crate::runtime::{
    Completeness, EvaluationFailure, ExplorationStats, ExploreObserver, NoopObserver, SearchPhase,
};
use buffy_analysis::{CancelReason, DataflowSemantics};
use buffy_graph::{Rational, SdfGraph};
use buffy_telemetry::{labeled, names};
use std::ops::ControlFlow;

/// Outcome of a constraint search ([`min_storage_for_throughput_observed`]).
#[derive(Debug, Clone)]
pub struct ConstraintResult {
    /// The witnessing point: distribution, size, exact throughput (which
    /// may exceed the constraint). For truncated runs this is the best
    /// *sound* witness found — it meets the constraint, but undecided
    /// smaller sizes might too.
    pub point: ParetoPoint,
    /// Whether the minimality proof ran to completion.
    pub completeness: Completeness,
    /// Evaluations that panicked and were degraded to zero-throughput
    /// entries.
    pub failures: Vec<EvaluationFailure>,
    /// Evaluation statistics of the search.
    pub stats: ExplorationStats,
}

/// Finds a smallest storage distribution whose throughput is at least
/// `constraint`.
///
/// Returns the witnessing [`ParetoPoint`] (distribution, size, exact
/// throughput achieved — which may exceed the constraint).
///
/// # Errors
///
/// - [`ExploreError::InfeasibleThroughput`] when the constraint exceeds
///   the maximal achievable throughput of the graph;
/// - analysis errors as in
///   [`explore_design_space`](crate::explore_design_space).
///
/// # Examples
///
/// ```
/// use buffy_core::{min_storage_for_throughput, ExploreOptions};
/// use buffy_graph::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
///
/// // Any positive throughput: the paper's ⟨4, 2⟩, size 6.
/// let p = min_storage_for_throughput(&g, Rational::new(1, 100), &ExploreOptions::default())?;
/// assert_eq!(p.size, 6);
/// // Throughput at least 1/6 needs size 8.
/// let p = min_storage_for_throughput(&g, Rational::new(1, 6), &ExploreOptions::default())?;
/// assert_eq!(p.size, 8);
/// # Ok(())
/// # }
/// ```
pub fn min_storage_for_throughput(
    graph: &SdfGraph,
    constraint: Rational,
    options: &ExploreOptions,
) -> Result<ParetoPoint, ExploreError> {
    min_storage_for_throughput_for(graph, constraint, options)
}

/// The generic form of [`min_storage_for_throughput`]: answers the same
/// question for any [`DataflowSemantics`] model through the unified kernel.
///
/// # Errors
///
/// See [`min_storage_for_throughput`].
pub fn min_storage_for_throughput_for<M: DataflowSemantics + Sync>(
    model: &M,
    constraint: Rational,
    options: &ExploreOptions,
) -> Result<ParetoPoint, ExploreError> {
    min_storage_for_throughput_observed(model, constraint, options, &NoopObserver).map(|r| r.point)
}

/// [`min_storage_for_throughput_for`] with a structured [`ExploreObserver`]
/// receiving evaluation, cache-hit and phase events; returns the full
/// [`ConstraintResult`] with statistics and completeness.
///
/// When a cancel token trips after a feasible witness is in hand, the
/// search stops and reports that witness with a truncated completeness
/// marker (sound, possibly not minimal). Cancellation before any witness
/// exists yields [`ExploreError::Cancelled`].
///
/// # Errors
///
/// See [`min_storage_for_throughput`].
pub fn min_storage_for_throughput_observed<M: DataflowSemantics + Sync>(
    model: &M,
    constraint: Rational,
    options: &ExploreOptions,
    observer: &dyn ExploreObserver,
) -> Result<ConstraintResult, ExploreError> {
    assert!(
        constraint > Rational::ZERO,
        "throughput constraint must be positive"
    );
    let observed = options
        .observed
        .unwrap_or_else(|| model.default_observed_actor());
    let mut space = DistributionSpace::for_model(model);
    if let Some(caps) = &options.max_channel_caps {
        space = space.with_max_capacities(caps);
    }
    let eval = EvalPipeline::new(model, observed, options, observer)?;
    let recorder = buffy_telemetry::active();
    let pruned_counter = recorder.as_ref().map(|r| {
        r.counter(
            &labeled(
                names::SIZES_PRUNED,
                "phase",
                SearchPhase::ConstraintSearch.name(),
            ),
            "Distribution sizes settled by interval collapse without any evaluation.",
        )
    });
    observer.phase_started(SearchPhase::Bounds);
    let bounds_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::Bounds.name()));
    let (ub_dist, thr_max) = upper_bound_distribution_with(model, observed, &|d| eval.eval(d))?;
    if constraint > thr_max {
        return Err(ExploreError::InfeasibleThroughput {
            requested: constraint.to_string(),
            maximal: thr_max.to_string(),
        });
    }
    observer.phase_started(SearchPhase::ConstraintSearch);
    drop(bounds_span);
    let _search_span = recorder
        .as_ref()
        .map(|r| r.phase_span(SearchPhase::ConstraintSearch.name()));

    // Decide "size S meets the constraint" with early exit; remember the
    // best witness per feasible size. Candidates the prune oracle proves
    // strictly below the constraint are skipped without simulation —
    // infeasibility-only pruning, so the first feasible candidate (and
    // with it the witness) is exactly the one the unpruned search finds:
    // a sound proof of `t < constraint` can never exist for it.
    let decide = |size: u64| -> Result<Option<ParetoPoint>, ExploreError> {
        let mut hit: Option<ParetoPoint> = None;
        let mut error: Option<ExploreError> = None;
        space.for_each_of_size(size, |d| {
            if eval.prunes_below(&d, &constraint) {
                return ControlFlow::Continue(());
            }
            match eval.eval(&d) {
                Ok(t) if t >= constraint => {
                    hit = Some(eval.point(d, t));
                    ControlFlow::Break(())
                }
                Ok(_) => ControlFlow::Continue(()),
                Err(e) => {
                    error = Some(e);
                    ControlFlow::Break(())
                }
            }
        });
        match error {
            Some(e) => Err(e),
            None => Ok(hit),
        }
    };

    // Binary search the smallest feasible size in [lb, ub]. Without
    // channel constraints, ub is feasible by construction (it realizes the
    // maximal throughput ≥ constraint); with constraints, feasibility of
    // the largest admissible size must be established first.
    let lo = space.min_size();
    let mut best = match (decide(lo)?, &options.max_channel_caps) {
        (Some(p), _) => {
            observer.pareto_accepted(&p);
            return Ok(ConstraintResult {
                point: p,
                completeness: Completeness::exact(),
                failures: eval.take_failures(),
                stats: eval.stats(),
            });
        }
        (None, None) => eval.point(ub_dist, thr_max),
        (None, Some(caps)) => {
            let top = ub_dist.size().max(lo).min(caps.size());
            match decide(top)? {
                Some(p) => p,
                None => {
                    return Err(ExploreError::InfeasibleThroughput {
                        requested: constraint.to_string(),
                        maximal: format!("(within the channel capacity constraints {caps})"),
                    })
                }
            }
        }
    };
    // Binary search the smallest feasible size strictly between the two
    // established bounds, probing realizable grid sizes only: a size in a
    // hole of the capacity grid holds no distributions, so `decide` would
    // report it infeasible and the search would wrongly discard every
    // smaller size with it.
    let sizes = space.sizes_in(lo + 1, best.size.saturating_sub(1));
    let (mut lo_i, mut hi_i) = (0, sizes.len());
    // Invariant: every realizable size below sizes[lo_i] is infeasible;
    // everything from sizes[hi_i] up is covered by `best`. With a feasible
    // witness in hand, cancellation degrades the run: `best` is returned
    // as-is, the still-undecided sizes are reported as skipped.
    let mut truncated: Option<CancelReason> = None;
    while lo_i < hi_i {
        let mid = lo_i + (hi_i - lo_i) / 2;
        match salvage(decide(sizes[mid]), &mut truncated)? {
            None => break,
            Some(Some(p)) => {
                best = p;
                // Each halving settles the discarded half without ever
                // enumerating it — that is the count worth observing.
                if let Some(c) = &pruned_counter {
                    c.add((hi_i - mid - 1) as u64);
                }
                hi_i = mid;
            }
            Some(None) => {
                if let Some(c) = &pruned_counter {
                    c.add((mid - lo_i) as u64);
                }
                lo_i = mid + 1;
            }
        }
    }
    let completeness = match truncated {
        None => Completeness::exact(),
        Some(reason) => {
            let mut total: u64 = 0;
            for &s in &sizes[lo_i..hi_i] {
                total = total.saturating_add(space.count_of_size_capped(s, SKIP_COUNT_CAP));
            }
            Completeness::truncated(reason, total)
        }
    };
    observer.pareto_accepted(&best);
    Ok(ConstraintResult {
        point: best,
        completeness,
        failures: eval.take_failures(),
        stats: eval.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn all_paper_levels() {
        let g = example();
        let opts = ExploreOptions::default();
        for (thr, size) in [
            (Rational::new(1, 7), 6),
            (Rational::new(1, 6), 8),
            (Rational::new(1, 5), 9),
            (Rational::new(1, 4), 10),
        ] {
            let p = min_storage_for_throughput(&g, thr, &opts).unwrap();
            assert_eq!(p.size, size, "constraint {thr}");
            assert!(p.throughput >= thr);
        }
        // A constraint strictly between two levels needs the higher level.
        let p = min_storage_for_throughput(&g, Rational::new(3, 20), &opts).unwrap();
        assert_eq!(p.size, 8);
    }

    #[test]
    fn pruning_preserves_the_witness_and_skips_work() {
        let g = example();
        for (thr, size) in [
            (Rational::new(1, 6), 8),
            (Rational::new(1, 4), 10),
            (Rational::new(3, 20), 8),
        ] {
            let pruned = min_storage_for_throughput_observed(
                &g,
                thr,
                &ExploreOptions::default(),
                &NoopObserver,
            )
            .unwrap();
            let unpruned = min_storage_for_throughput_observed(
                &g,
                thr,
                &ExploreOptions {
                    static_prune: false,
                    ..ExploreOptions::default()
                },
                &NoopObserver,
            )
            .unwrap();
            // Identical witness point — same distribution, same exact
            // throughput — with provably less work.
            assert_eq!(pruned.point, unpruned.point, "constraint {thr}");
            assert_eq!(pruned.point.size, size);
            assert_eq!(
                unpruned.stats.static_prunes + unpruned.stats.dominance_prunes,
                0
            );
            assert!(
                pruned.stats.static_prunes + pruned.stats.dominance_prunes > 0,
                "constraint {thr}: oracle never fired: {:?}",
                pruned.stats
            );
            assert!(
                pruned.stats.evaluations < unpruned.stats.evaluations,
                "constraint {thr}: {} vs {}",
                pruned.stats.evaluations,
                unpruned.stats.evaluations
            );
        }
    }

    #[test]
    fn infeasible_constraint_rejected() {
        let g = example();
        let err = min_storage_for_throughput(&g, Rational::new(1, 2), &ExploreOptions::default())
            .unwrap_err();
        assert!(matches!(err, ExploreError::InfeasibleThroughput { .. }));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_constraint_panics() {
        let g = example();
        let _ = min_storage_for_throughput(&g, Rational::ZERO, &ExploreOptions::default());
    }

    #[test]
    fn observed_variant_reports_stats() {
        let g = example();
        let r = min_storage_for_throughput_observed(
            &g,
            Rational::new(1, 6),
            &ExploreOptions::default(),
            &NoopObserver,
        )
        .unwrap();
        assert_eq!(r.point.size, 8);
        assert!(r.stats.evaluations > 0);
        assert!(r.stats.max_states > 0);
        assert!(r.completeness.exact);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn cancellation_degrades_to_a_sound_witness_or_a_clean_error() {
        use buffy_analysis::{CancelReason, CancelToken};
        use std::sync::Arc;

        let g = example();
        let constraint = Rational::new(1, 6);
        let exact = min_storage_for_throughput_observed(
            &g,
            constraint,
            &ExploreOptions::default(),
            &NoopObserver,
        )
        .unwrap();
        let mut saw_partial = false;
        for budget in 1..exact.stats.evaluations {
            let opts = ExploreOptions {
                cancel: Some(Arc::new(CancelToken::new().with_eval_budget(budget))),
                ..ExploreOptions::default()
            };
            match min_storage_for_throughput_observed(&g, constraint, &opts, &NoopObserver) {
                // No feasible witness yet: a clean error, not a bogus point.
                Err(ExploreError::Cancelled { reason }) => {
                    assert_eq!(reason, CancelReason::EvaluationBudget);
                }
                Err(e) => panic!("budget {budget}: unexpected error {e}"),
                Ok(r) => {
                    // Any returned witness meets the constraint; truncated
                    // runs may return a larger-than-minimal size.
                    assert!(r.point.throughput >= constraint, "budget {budget}");
                    if !r.completeness.exact {
                        saw_partial = true;
                        assert!(r.point.size >= exact.point.size, "budget {budget}");
                        assert_eq!(
                            r.completeness.truncated_by,
                            Some(CancelReason::EvaluationBudget)
                        );
                    } else {
                        assert_eq!(r.point.size, exact.point.size, "budget {budget}");
                    }
                }
            }
        }
        assert!(saw_partial, "no budget produced a truncated witness");
    }

    #[test]
    fn witness_meets_constraint_by_simulation() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let p = min_storage_for_throughput(&g, Rational::new(1, 5), &ExploreOptions::default())
            .unwrap();
        let r = buffy_analysis::throughput(&g, &p.distribution, c).unwrap();
        assert_eq!(r.throughput, p.throughput);
        assert!(r.throughput >= Rational::new(1, 5));
    }
}
