//! Enumeration of storage distributions of a given size.
//!
//! The paper's exploration must, for a given distribution size, search "all
//! possible storage distributions of the given size … till one is found"
//! meeting the desired throughput (§9). This module enumerates exactly the
//! distributions worth checking: every channel starts at its positive-
//! throughput lower bound and grows in steps of `gcd(production,
//! consumption)` — intermediate capacities are behaviourally equivalent
//! (see [`crate::channel_step`]).

use buffy_analysis::DataflowSemantics;
use buffy_graph::{ChannelId, SdfGraph, StorageDistribution};
use core::ops::ControlFlow;

/// The grid of meaningful storage distributions of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionSpace {
    mins: Vec<u64>,
    steps: Vec<u64>,
    maxs: Option<Vec<u64>>,
}

impl DistributionSpace {
    /// Builds the grid for `graph`: per-channel lower bounds and step
    /// sizes.
    pub fn of(graph: &SdfGraph) -> DistributionSpace {
        DistributionSpace::for_model(graph)
    }

    /// Builds the grid for any [`DataflowSemantics`] model from its
    /// declared per-channel lower bounds and step sizes (the generic form
    /// of [`DistributionSpace::of`]).
    pub fn for_model<M: DataflowSemantics>(model: &M) -> DistributionSpace {
        let channels = 0..model.num_channels();
        DistributionSpace {
            mins: channels
                .clone()
                .map(|i| model.channel_lower_bound(ChannelId::new(i)))
                .collect(),
            steps: channels
                .map(|i| model.channel_step(ChannelId::new(i)))
                .collect(),
            maxs: None,
        }
    }

    /// A space with explicit minimums and steps (for tests and custom
    /// constraints, e.g. pinning a channel's capacity).
    pub fn with_grid(mins: Vec<u64>, steps: Vec<u64>) -> DistributionSpace {
        assert_eq!(mins.len(), steps.len());
        assert!(steps.iter().all(|&s| s > 0), "steps must be positive");
        DistributionSpace {
            mins,
            steps,
            maxs: None,
        }
    }

    /// Restricts every channel to at most the capacity given by `caps`
    /// (the paper's §8: distributed memories impose "extra constraints on
    /// the channel capacities"). Capacities below a channel's lower bound
    /// make the space empty for that channel's sizes.
    pub fn with_max_capacities(mut self, caps: &StorageDistribution) -> DistributionSpace {
        assert_eq!(caps.len(), self.mins.len());
        self.maxs = Some(caps.as_slice().to_vec());
        self
    }

    /// The per-channel maximum capacity, if constrained.
    pub fn max_of(&self, channel: usize) -> Option<u64> {
        self.maxs.as_ref().map(|m| m[channel])
    }

    /// The smallest distribution size on the grid (every channel at its
    /// lower bound) — the combined lower bound `lb` of the paper's Fig. 7.
    pub fn min_size(&self) -> u64 {
        self.mins.iter().sum()
    }

    /// The distribution with every channel at its minimum.
    pub fn min_distribution(&self) -> StorageDistribution {
        self.mins.iter().copied().collect()
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// Whether the space covers no channels.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Calls `f` for every grid distribution of exactly `size` tokens.
    /// Stops early when `f` returns [`ControlFlow::Break`]; the return
    /// value tells whether enumeration ran to completion.
    ///
    /// Distributions are produced in lexicographic order of the extra
    /// capacity given to each channel.
    pub fn for_each_of_size(
        &self,
        size: u64,
        mut f: impl FnMut(StorageDistribution) -> ControlFlow<()>,
    ) -> bool {
        let n = self.len();
        if n == 0 || size < self.min_size() {
            return true;
        }
        let budget = size - self.min_size();
        // Depth-first over channels; channel i receives extra[i] = k·step.
        let mut caps = self.mins.clone();
        self.rec(0, budget, &mut caps, &mut f).is_continue()
    }

    fn rec(
        &self,
        i: usize,
        budget: u64,
        caps: &mut Vec<u64>,
        f: &mut impl FnMut(StorageDistribution) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let n = self.len();
        let cap_limit = |i: usize| self.max_of(i).unwrap_or(u64::MAX);
        if i == n - 1 {
            // Last channel absorbs the remaining budget, if on-grid and
            // within its capacity constraint.
            if budget.is_multiple_of(self.steps[i]) && self.mins[i] + budget <= cap_limit(i) {
                caps[i] = self.mins[i] + budget;
                let d = StorageDistribution::from_capacities(caps.clone());
                caps[i] = self.mins[i];
                return f(d);
            }
            return ControlFlow::Continue(());
        }
        let mut extra = 0;
        while extra <= budget && self.mins[i] + extra <= cap_limit(i) {
            caps[i] = self.mins[i] + extra;
            self.rec(i + 1, budget - extra, caps, f)?;
            extra += self.steps[i];
        }
        caps[i] = self.mins[i];
        ControlFlow::Continue(())
    }

    /// Whether at least one grid distribution has exactly `size` tokens.
    ///
    /// Not every size in `[min_size, ub]` is realizable: channel
    /// capacities move in per-channel steps, so e.g. with two channels of
    /// step 2 only every other size holds distributions. Size-dimension
    /// searches must probe realizable sizes only — a hole would make a
    /// monotone feasibility predicate appear false and cut off genuine
    /// Pareto points below it.
    pub fn contains_size(&self, size: u64) -> bool {
        let mut any = false;
        self.for_each_of_size(size, |_| {
            any = true;
            ControlFlow::Break(())
        });
        any
    }

    /// The realizable grid sizes in `lo..=hi`, ascending. Sizes whose
    /// budget over [`min_size`](Self::min_size) is not a multiple of the
    /// gcd of all channel steps are skipped without enumeration.
    pub fn sizes_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let min = self.min_size();
        let g = self
            .steps
            .iter()
            .fold(0u64, |acc, &s| buffy_graph::gcd_u64(acc, s))
            .max(1);
        (lo.max(min)..=hi)
            .filter(|&s| (s - min).is_multiple_of(g) && self.contains_size(s))
            .collect()
    }

    /// Collects every grid distribution of exactly `size` tokens.
    pub fn all_of_size(&self, size: u64) -> Vec<StorageDistribution> {
        let mut out = Vec::new();
        self.for_each_of_size(size, |d| {
            out.push(d);
            ControlFlow::Continue(())
        });
        out
    }

    /// Number of grid distributions of exactly `size` tokens.
    pub fn count_of_size(&self, size: u64) -> u64 {
        let mut count = 0;
        self.for_each_of_size(size, |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        count
    }

    /// Like [`count_of_size`](Self::count_of_size), but stops counting at
    /// `cap` — annotating the skipped part of a truncated search must not
    /// itself enumerate an exploding space.
    pub fn count_of_size_capped(&self, size: u64, cap: u64) -> u64 {
        let mut count = 0;
        self.for_each_of_size(size, |_| {
            count += 1;
            if count >= cap {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        count
    }

    /// Total number of grid distributions across every realizable size in
    /// `lo..=hi`, or `None` once the running total reaches `cap`.
    ///
    /// Progress reporting wants "percent of the realizable space covered",
    /// which needs the denominator exactly once up front; the cap keeps
    /// that pre-pass cheap on exploding spaces (a capped-out space simply
    /// reports no percentage).
    pub fn count_in_capped(&self, lo: u64, hi: u64, cap: u64) -> Option<u64> {
        let mut total: u64 = 0;
        for size in self.sizes_in(lo, hi) {
            total += self.count_of_size_capped(size, cap.saturating_sub(total));
            if total >= cap {
                return None;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_space() -> DistributionSpace {
        // The paper's example: mins ⟨4, 2⟩, steps ⟨1, 1⟩.
        DistributionSpace::with_grid(vec![4, 2], vec![1, 1])
    }

    #[test]
    fn from_graph_matches_bounds() {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let g = b.build().unwrap();
        let s = DistributionSpace::of(&g);
        assert_eq!(s, example_space());
        assert_eq!(s.min_size(), 6);
        assert_eq!(s.min_distribution().as_slice(), &[4, 2]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn enumerates_exact_size() {
        let s = example_space();
        let all = s.all_of_size(8);
        assert_eq!(all.len(), 3);
        let as_vecs: Vec<&[u64]> = all.iter().map(|d| d.as_slice()).collect();
        assert_eq!(as_vecs, vec![&[4, 4][..], &[5, 3][..], &[6, 2][..]]);
        assert!(all.iter().all(|d| d.size() == 8));
    }

    #[test]
    fn sizes_below_minimum_are_empty() {
        let s = example_space();
        assert_eq!(s.count_of_size(5), 0);
        assert_eq!(s.count_of_size(6), 1);
    }

    #[test]
    fn count_in_capped_totals_and_caps() {
        let s = example_space();
        // Sizes 6..=8 hold 1 + 2 + 3 distributions.
        assert_eq!(s.count_in_capped(6, 8, 1000), Some(6));
        // Range clamps to the realizable minimum.
        assert_eq!(s.count_in_capped(0, 6, 1000), Some(1));
        // Hitting the cap means "too many to count".
        assert_eq!(s.count_in_capped(6, 8, 6), None);
        assert_eq!(s.count_in_capped(6, 8, 3), None);
    }

    #[test]
    fn step_grids_respected() {
        // Channel 0: min 4, step 2; channel 1: min 1, step 3.
        let s = DistributionSpace::with_grid(vec![4, 1], vec![2, 3]);
        // size 9: budget 4 → (0,4)? 4 not mult of 3; (2,2)? no; (4,0) ✓.
        let all = s.all_of_size(9);
        let as_vecs: Vec<&[u64]> = all.iter().map(|d| d.as_slice()).collect();
        assert_eq!(as_vecs, vec![&[8, 1][..]]);
        // size 11: budget 6 → (0,6) ✓, (2,4)✗, (4,2)✗, (6,0) ✓.
        assert_eq!(s.count_of_size(11), 2);
    }

    #[test]
    fn early_exit_works() {
        let s = example_space();
        let mut seen = 0;
        let completed = s.for_each_of_size(10, |_| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(!completed);
        assert_eq!(seen, 2);
        // Without early exit, size 10 has 5 grid points (⟨4,6⟩…⟨8,2⟩).
        assert_eq!(s.count_of_size(10), 5);
    }

    #[test]
    fn counts_grow_with_size() {
        let s = example_space();
        for size in 6..12 {
            assert_eq!(s.count_of_size(size), size - 5);
        }
    }

    #[test]
    fn capped_counts_saturate_at_the_cap() {
        let s = example_space();
        // Size 10 has 5 grid points.
        assert_eq!(s.count_of_size_capped(10, 3), 3);
        assert_eq!(s.count_of_size_capped(10, 5), 5);
        assert_eq!(s.count_of_size_capped(10, 100), 5);
        assert_eq!(s.count_of_size_capped(5, 100), 0);
    }

    #[test]
    fn single_channel_space() {
        let s = DistributionSpace::with_grid(vec![3], vec![2]);
        assert_eq!(s.count_of_size(3), 1);
        assert_eq!(s.count_of_size(4), 0);
        assert_eq!(s.count_of_size(5), 1);
        assert_eq!(s.all_of_size(7)[0].as_slice(), &[7]);
    }

    #[test]
    fn contains_size_reflects_the_grid() {
        // Both channels step by 2: only even budgets are realizable.
        let s = DistributionSpace::with_grid(vec![4, 2], vec![2, 2]);
        assert!(!s.contains_size(5));
        assert!(s.contains_size(6));
        assert!(!s.contains_size(7));
        assert!(s.contains_size(8));
    }

    #[test]
    fn sizes_in_lists_only_realizable_sizes() {
        let s = DistributionSpace::with_grid(vec![4, 2], vec![2, 2]);
        assert_eq!(s.sizes_in(0, 12), vec![6, 8, 10, 12]);
        assert_eq!(s.sizes_in(7, 11), vec![8, 10]);
        assert_eq!(s.sizes_in(13, 5), Vec::<u64>::new());
        // Mixed steps gcd 1, but individual sizes can still be holes:
        // min 4 step 2 and min 1 step 3 → size 6 needs budget 1, which
        // neither (2k) nor (3m) nor a 2k+3m sum can reach.
        let t = DistributionSpace::with_grid(vec![4, 1], vec![2, 3]);
        assert_eq!(t.sizes_in(5, 10), vec![5, 7, 8, 9, 10]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let _ = DistributionSpace::with_grid(vec![1], vec![0]);
    }

    #[test]
    fn max_capacities_prune_enumeration() {
        let s = example_space()
            .with_max_capacities(&StorageDistribution::from_capacities(vec![5, 100]));
        // Size 8 normally has ⟨4,4⟩, ⟨5,3⟩, ⟨6,2⟩; the α ≤ 5 cap removes
        // the last one.
        let all = s.all_of_size(8);
        let as_vecs: Vec<&[u64]> = all.iter().map(|d| d.as_slice()).collect();
        assert_eq!(as_vecs, vec![&[4, 4][..], &[5, 3][..]]);
        assert_eq!(s.max_of(0), Some(5));
        assert_eq!(s.max_of(1), Some(100));
        assert_eq!(example_space().max_of(0), None);
    }

    #[test]
    fn cap_below_minimum_empties_the_space() {
        let s = example_space()
            .with_max_capacities(&StorageDistribution::from_capacities(vec![3, 100]));
        for size in 6..10 {
            assert_eq!(s.count_of_size(size), 0, "size {size}");
        }
    }

    #[test]
    fn cap_on_last_channel_respected() {
        let s = example_space()
            .with_max_capacities(&StorageDistribution::from_capacities(vec![100, 2]));
        // β pinned at its minimum: exactly one distribution per size.
        for size in 6..10 {
            let all = s.all_of_size(size);
            assert_eq!(all.len(), 1, "size {size}");
            assert_eq!(all[0].as_slice()[1], 2);
        }
    }

    use buffy_graph::SdfGraph;
}
