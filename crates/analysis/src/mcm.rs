//! Maximum cycle ratio analysis (maximal throughput, paper §9 / \[GG93\]).
//!
//! The maximal achievable throughput of a consistent SDF graph — the upper
//! bound of the paper's binary search in the throughput dimension — is
//! governed by the critical cycle of its homogeneous expansion: with
//! per-edge delay `w` (execution time of the producing firing) and token
//! count `t`, the iteration period equals the *maximum cycle ratio*
//! `λ* = max over cycles Σw / Σt`, and actor `a` then achieves throughput
//! `q(a) / λ*`.
//!
//! Two algorithms are provided: Howard's policy iteration
//! ([`max_cycle_ratio`]) for production use, and an exponential
//! simple-cycle enumeration ([`max_cycle_ratio_brute_force`]) used as a
//! test oracle.

use crate::error::AnalysisError;
use crate::hsdf::Hsdf;
use buffy_graph::{ActorId, Rational, RepetitionVector, SdfGraph};

/// An edge of a cycle-ratio problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioEdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Delay contributed by the edge.
    pub weight: u64,
    /// Tokens on the edge.
    pub tokens: u64,
}

/// A directed graph with delay/token annotated edges.
#[derive(Debug, Clone, Default)]
pub struct RatioGraph {
    /// Number of nodes (indices `0..num_nodes`).
    pub num_nodes: usize,
    /// The edges.
    pub edges: Vec<RatioEdge>,
}

impl RatioGraph {
    /// Builds the cycle-ratio instance of an HSDF graph: edge weight =
    /// execution time of the source node.
    pub fn from_hsdf(h: &Hsdf) -> RatioGraph {
        RatioGraph {
            num_nodes: h.num_nodes(),
            edges: h
                .edges
                .iter()
                .map(|e| RatioEdge {
                    from: e.from,
                    to: e.to,
                    weight: h.nodes[e.from].execution_time,
                    tokens: e.tokens,
                })
                .collect(),
        }
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.from].push(i);
        }
        adj
    }
}

impl From<&Hsdf> for RatioGraph {
    fn from(h: &Hsdf) -> Self {
        RatioGraph::from_hsdf(h)
    }
}

/// Strongly connected components of an adjacency-list digraph (iterative
/// Tarjan; local helper, the public SCC API for SDF graphs lives in
/// [`crate::graph_algos`]).
fn sccs(num_nodes: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; num_nodes];
    let mut lowlink = vec![0usize; num_nodes];
    let mut on_stack = vec![false; num_nodes];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut comps = Vec::new();

    for root in 0..num_nodes {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next;
                lowlink[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("non-empty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
            }
        }
    }
    comps
}

/// Checks that no cycle is token-free (a token-free cycle deadlocks: no
/// firing on it can ever start).
fn check_live(g: &RatioGraph) -> Result<(), AnalysisError> {
    // Kahn's algorithm on the zero-token subgraph.
    let mut indeg = vec![0usize; g.num_nodes];
    let mut succ = vec![Vec::new(); g.num_nodes];
    for e in &g.edges {
        if e.tokens == 0 {
            indeg[e.to] += 1;
            succ[e.from].push(e.to);
        }
    }
    let mut queue: Vec<usize> = (0..g.num_nodes).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in &succ[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    if seen == g.num_nodes {
        Ok(())
    } else {
        Err(AnalysisError::NotLive)
    }
}

/// Maximum cycle ratio `max over cycles Σweight / Σtokens` via Howard's
/// policy iteration, exact rational arithmetic.
///
/// Returns `Ok(None)` when the graph has no cycle at all.
///
/// # Errors
///
/// - [`AnalysisError::NotLive`] if some cycle carries no tokens;
/// - [`AnalysisError::McmDidNotConverge`] if policy iteration exceeds its
///   safety cap (indicates a bug or pathological input).
pub fn max_cycle_ratio(g: &RatioGraph) -> Result<Option<Rational>, AnalysisError> {
    check_live(g)?;
    let adj = g.adjacency();
    let comps = sccs(
        g.num_nodes,
        &adj.iter()
            .map(|es| es.iter().map(|&e| g.edges[e].to).collect())
            .collect::<Vec<_>>(),
    );

    let mut best: Option<Rational> = None;
    for comp in comps {
        if let Some(lambda) = howard_on_component(g, &adj, &comp)? {
            best = Some(match best {
                Some(b) => b.max(lambda),
                None => lambda,
            });
        }
    }
    Ok(best)
}

/// Runs Howard's algorithm on one strongly connected component; returns
/// `None` when the component contains no cycle (single node, no
/// self-edge).
fn howard_on_component(
    g: &RatioGraph,
    adj: &[Vec<usize>],
    comp: &[usize],
) -> Result<Option<Rational>, AnalysisError> {
    let mut in_comp = vec![false; g.num_nodes];
    for &v in comp {
        in_comp[v] = true;
    }
    // Out-edges staying inside the component.
    let out: Vec<(usize, Vec<usize>)> = comp
        .iter()
        .map(|&v| {
            (
                v,
                adj[v]
                    .iter()
                    .copied()
                    .filter(|&e| in_comp[g.edges[e].to])
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    if comp.len() == 1 && out[0].1.is_empty() {
        return Ok(None); // trivial component, no cycle
    }
    // Inside a non-trivial SCC every node has an out-edge within the SCC.
    debug_assert!(out.iter().all(|(_, es)| !es.is_empty()));

    // Dense local numbering.
    let mut local = vec![usize::MAX; g.num_nodes];
    for (i, &v) in comp.iter().enumerate() {
        local[v] = i;
    }
    let n = comp.len();
    let mut policy: Vec<usize> = out.iter().map(|(_, es)| es[0]).collect();
    let mut lambda: Vec<Rational> = vec![Rational::ZERO; n];
    let mut value: Vec<Rational> = vec![Rational::ZERO; n];

    let cap = 1000 + 20 * n * n.max(4);
    for _round in 0..cap {
        evaluate_policy(g, comp, &local, &policy, &mut lambda, &mut value);

        // Phase 1: improve the cycle ratio.
        let mut improved = false;
        for (i, (_, es)) in out.iter().enumerate() {
            for &e in es {
                let x = local[g.edges[e].to];
                if lambda[x] > lambda[i] && policy[i] != e {
                    policy[i] = e;
                    improved = true;
                    break;
                }
            }
        }
        if improved {
            continue;
        }
        // Phase 2: improve the value function at equal ratio. Compare
        // candidate edges against the candidate of the *current policy
        // edge* (not against `value[i]`): at a cycle root the normalized
        // value is 0 by convention and comparing against it would cause
        // spurious switches.
        for (i, (_, es)) in out.iter().enumerate() {
            let cand_of = |e: usize| {
                let edge = g.edges[e];
                let x = local[edge.to];
                Rational::from(edge.weight) - lambda[i] * Rational::from(edge.tokens) + value[x]
            };
            let current = cand_of(policy[i]);
            for &e in es {
                let x = local[g.edges[e].to];
                if lambda[x] != lambda[i] || policy[i] == e {
                    continue;
                }
                if cand_of(e) > current {
                    policy[i] = e;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            let best = lambda.iter().copied().max().expect("non-empty");
            return Ok(Some(best));
        }
    }
    Err(AnalysisError::McmDidNotConverge)
}

/// Computes per-node cycle ratio and value under the current policy (a
/// functional graph: each node has exactly one successor).
fn evaluate_policy(
    g: &RatioGraph,
    comp: &[usize],
    local: &[usize],
    policy: &[usize],
    lambda: &mut [Rational],
    value: &mut [Rational],
) {
    let n = comp.len();
    // 0 = unvisited, 1 = in current path, 2 = done.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Follow the policy path.
        let mut path = Vec::new();
        let mut u = start;
        while color[u] == 0 {
            color[u] = 1;
            path.push(u);
            u = local[g.edges[policy[u]].to];
        }
        if color[u] == 1 {
            // Found a new cycle; u is its entry within `path`.
            let pos = path.iter().position(|&x| x == u).expect("on path");
            let cycle = &path[pos..];
            let mut w_sum = Rational::ZERO;
            let mut t_sum = Rational::ZERO;
            for &v in cycle {
                let e = g.edges[policy[v]];
                w_sum += Rational::from(e.weight);
                t_sum += Rational::from(e.tokens);
            }
            debug_assert!(t_sum > Rational::ZERO, "liveness was checked");
            let lam = w_sum / t_sum;
            // Root value 0 at the cycle entry, then walk the cycle
            // backwards: v(u_i) = w - λt + v(u_{i+1}).
            lambda[cycle[0]] = lam;
            value[cycle[0]] = Rational::ZERO;
            for i in (1..cycle.len()).rev() {
                let v = cycle[i];
                let e = g.edges[policy[v]];
                let succ = cycle[(i + 1) % cycle.len()];
                lambda[v] = lam;
                value[v] = Rational::from(e.weight) - lam * Rational::from(e.tokens) + value[succ];
            }
            for &v in cycle {
                color[v] = 2;
            }
        }
        // Unwind the tree part of the path in reverse, propagating from
        // the (now evaluated) successor.
        for &v in path.iter().rev() {
            if color[v] == 2 {
                continue;
            }
            let e = g.edges[policy[v]];
            let succ = local[e.to];
            debug_assert_eq!(color[succ], 2);
            lambda[v] = lambda[succ];
            value[v] =
                Rational::from(e.weight) - lambda[v] * Rational::from(e.tokens) + value[succ];
            color[v] = 2;
        }
    }
}

/// Exponential-time oracle: enumerates all simple cycles by DFS and takes
/// the maximum ratio. Use only on small graphs (tests, cross-validation).
///
/// # Errors
///
/// [`AnalysisError::NotLive`] if some cycle carries no tokens.
pub fn max_cycle_ratio_brute_force(g: &RatioGraph) -> Result<Option<Rational>, AnalysisError> {
    check_live(g)?;
    let adj = g.adjacency();
    let mut best: Option<Rational> = None;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &RatioGraph,
        adj: &[Vec<usize>],
        start: usize,
        v: usize,
        on_path: &mut Vec<bool>,
        w_sum: u64,
        t_sum: u64,
        best: &mut Option<Rational>,
    ) {
        for &e in &adj[v] {
            let edge = g.edges[e];
            let w = edge.to;
            if w < start {
                continue; // canonical: cycles rooted at their min node
            }
            if w == start {
                let ratio =
                    Rational::new((w_sum + edge.weight) as i128, (t_sum + edge.tokens) as i128);
                *best = Some(match *best {
                    Some(b) => b.max(ratio),
                    None => ratio,
                });
            } else if !on_path[w] {
                on_path[w] = true;
                dfs(
                    g,
                    adj,
                    start,
                    w,
                    on_path,
                    w_sum + edge.weight,
                    t_sum + edge.tokens,
                    best,
                );
                on_path[w] = false;
            }
        }
    }

    for start in 0..g.num_nodes {
        let mut on_path = vec![false; g.num_nodes];
        on_path[start] = true;
        dfs(g, &adj, start, start, &mut on_path, 0, 0, &mut best);
    }
    Ok(best)
}

/// The maximal achievable throughput of `observed` over all storage
/// distributions: `q(observed) / λ*` with `λ*` the maximum cycle ratio of
/// the homogeneous expansion (paper §9, \[GG93\]).
///
/// # Errors
///
/// - graph inconsistency ([`AnalysisError::Graph`]);
/// - [`AnalysisError::NotLive`] for token-free cycles;
/// - [`AnalysisError::ZeroPeriod`] when every critical cycle has zero
///   delay (throughput would be unbounded).
///
/// # Examples
///
/// The paper states the running example's throughput "can never go above
/// 0.25":
///
/// ```
/// use buffy_analysis::maximal_throughput;
/// use buffy_graph::{Rational, SdfGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// assert_eq!(maximal_throughput(&g, c)?, Rational::new(1, 4));
/// # Ok(())
/// # }
/// ```
pub fn maximal_throughput(graph: &SdfGraph, observed: ActorId) -> Result<Rational, AnalysisError> {
    let q = RepetitionVector::compute(graph)?;
    let h = Hsdf::expand(graph, &q);
    let rg = RatioGraph::from_hsdf(&h);
    // The firing-order rings guarantee at least one cycle per actor.
    let lambda = max_cycle_ratio(&rg)?.expect("ordering rings create cycles");
    if lambda.is_zero() {
        return Err(AnalysisError::ZeroPeriod);
    }
    Ok(Rational::from(q[observed]) / lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example_maximal_throughput_is_quarter() {
        let g = example();
        for (name, expect) in [
            ("a", Rational::new(3, 4)),
            ("b", Rational::new(1, 2)),
            ("c", Rational::new(1, 4)),
        ] {
            let actor = g.actor_by_name(name).unwrap();
            assert_eq!(
                maximal_throughput(&g, actor).unwrap(),
                expect,
                "actor {name}"
            );
        }
    }

    #[test]
    fn single_cycle_ratio() {
        // Triangle with weights 2,3,4 and tokens 0,1,1: cycles: the
        // triangle (9/2) only.
        let g = RatioGraph {
            num_nodes: 3,
            edges: vec![
                RatioEdge {
                    from: 0,
                    to: 1,
                    weight: 2,
                    tokens: 0,
                },
                RatioEdge {
                    from: 1,
                    to: 2,
                    weight: 3,
                    tokens: 1,
                },
                RatioEdge {
                    from: 2,
                    to: 0,
                    weight: 4,
                    tokens: 1,
                },
            ],
        };
        assert_eq!(max_cycle_ratio(&g).unwrap(), Some(Rational::new(9, 2)));
        assert_eq!(
            max_cycle_ratio_brute_force(&g).unwrap(),
            Some(Rational::new(9, 2))
        );
    }

    #[test]
    fn picks_the_critical_cycle() {
        // Two cycles sharing node 0: 0→1→0 ratio (1+1)/1 = 2 and
        // 0→2→0 ratio (5+1)/2 = 3.
        let g = RatioGraph {
            num_nodes: 3,
            edges: vec![
                RatioEdge {
                    from: 0,
                    to: 1,
                    weight: 1,
                    tokens: 0,
                },
                RatioEdge {
                    from: 1,
                    to: 0,
                    weight: 1,
                    tokens: 1,
                },
                RatioEdge {
                    from: 0,
                    to: 2,
                    weight: 5,
                    tokens: 1,
                },
                RatioEdge {
                    from: 2,
                    to: 0,
                    weight: 1,
                    tokens: 1,
                },
            ],
        };
        assert_eq!(
            max_cycle_ratio(&g).unwrap(),
            Some(Rational::from_integer(3))
        );
    }

    #[test]
    fn acyclic_graph_has_no_ratio() {
        let g = RatioGraph {
            num_nodes: 3,
            edges: vec![
                RatioEdge {
                    from: 0,
                    to: 1,
                    weight: 1,
                    tokens: 1,
                },
                RatioEdge {
                    from: 1,
                    to: 2,
                    weight: 1,
                    tokens: 0,
                },
            ],
        };
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
        assert_eq!(max_cycle_ratio_brute_force(&g).unwrap(), None);
    }

    #[test]
    fn token_free_cycle_is_not_live() {
        let g = RatioGraph {
            num_nodes: 2,
            edges: vec![
                RatioEdge {
                    from: 0,
                    to: 1,
                    weight: 1,
                    tokens: 0,
                },
                RatioEdge {
                    from: 1,
                    to: 0,
                    weight: 1,
                    tokens: 0,
                },
            ],
        };
        assert_eq!(max_cycle_ratio(&g).unwrap_err(), AnalysisError::NotLive);
        let mut b = SdfGraph::builder("dead");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel("r", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(
            maximal_throughput(&g, x).unwrap_err(),
            AnalysisError::NotLive
        );
    }

    #[test]
    fn self_loop_ratio() {
        let g = RatioGraph {
            num_nodes: 1,
            edges: vec![RatioEdge {
                from: 0,
                to: 0,
                weight: 7,
                tokens: 2,
            }],
        };
        assert_eq!(max_cycle_ratio(&g).unwrap(), Some(Rational::new(7, 2)));
    }

    #[test]
    fn howard_matches_brute_force_on_dense_graphs() {
        // Deterministic pseudo-random small graphs.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..60 {
            let n = 2 + (rng() % 5) as usize;
            let m = n + (rng() % (2 * n as u64)) as usize;
            let mut edges = Vec::new();
            for _ in 0..m {
                edges.push(RatioEdge {
                    from: (rng() % n as u64) as usize,
                    to: (rng() % n as u64) as usize,
                    weight: rng() % 10,
                    tokens: 1 + rng() % 3, // ≥1 token keeps every cycle live
                });
            }
            let g = RatioGraph {
                num_nodes: n,
                edges,
            };
            let howard = max_cycle_ratio(&g).unwrap();
            let brute = max_cycle_ratio_brute_force(&g).unwrap();
            assert_eq!(howard, brute, "case {case}: {g:?}");
        }
    }

    #[test]
    fn zero_execution_time_everywhere_is_zero_period() {
        let mut b = SdfGraph::builder("zero");
        let x = b.actor("x", 0);
        b.channel_with_tokens("s", x, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(
            maximal_throughput(&g, x).unwrap_err(),
            AnalysisError::ZeroPeriod
        );
    }

    #[test]
    fn cd2dat_maximal_throughput() {
        // Chain: no feedback cycles, so the bound comes from the
        // firing-order rings: λ* = max_a q(a)·t(a) = 160 (dat, exec 1) vs
        // 147 (cd/fir1) … = 160; thr(dat) = 160/160 = 1.
        let mut b = SdfGraph::builder("cd2dat");
        let cd = b.actor("cd", 1);
        let f1 = b.actor("fir1", 1);
        let f2 = b.actor("fir2", 1);
        let f3 = b.actor("fir3", 1);
        let f4 = b.actor("fir4", 1);
        let dat = b.actor("dat", 1);
        b.channel("c1", cd, 1, f1, 1).unwrap();
        b.channel("c2", f1, 2, f2, 3).unwrap();
        b.channel("c3", f2, 2, f3, 7).unwrap();
        b.channel("c4", f3, 8, f4, 7).unwrap();
        b.channel("c5", f4, 5, dat, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(maximal_throughput(&g, dat).unwrap(), Rational::ONE);
        assert_eq!(maximal_throughput(&g, cd).unwrap(), Rational::new(147, 160));
    }
}
