//! Storage-dependency detection.
//!
//! A channel carries a *storage dependency* when, during the periodic phase
//! of the self-timed execution (or in the deadlock state), some actor is
//! idle and has all its input tokens but cannot start because that
//! channel's free space is insufficient. Growing any other channel cannot
//! raise the throughput; growing a dependent channel might. This is the
//! signal that drives the dependency-guided design-space exploration in
//! `buffy-core` — the pruning direction the paper's conclusions call for
//! (§11–12) and the refinement the authors later shipped in SDF3.

use crate::engine::{Capacities, DataflowEngine, FiringOutcome};
use crate::error::AnalysisError;
use crate::semantics::DataflowSemantics;
use crate::throughput::{throughput_for, ExplorationLimits, ThroughputReport};
use buffy_graph::{ActorId, ChannelId, SdfGraph, StorageDistribution};

/// A throughput report extended with the channels limiting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyReport {
    /// The plain throughput analysis result.
    pub report: ThroughputReport,
    /// Channels with a storage dependency: `true` at index `i` iff channel
    /// `i` blocked some token-ready actor during the periodic phase (or in
    /// the deadlock state).
    pub dependent: Vec<bool>,
}

impl DependencyReport {
    /// The dependent channels as ids.
    pub fn dependent_channels(&self) -> Vec<ChannelId> {
        self.dependent
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(ChannelId::new(i)))
            .collect()
    }
}

/// Channels whose lack of space currently blocks a token-ready, idle actor
/// (at its current phase's rates).
fn space_blocked_channels<M: DataflowSemantics>(engine: &DataflowEngine<'_, M>, out: &mut [bool]) {
    let model = engine.model();
    let state = engine.state();
    'actors: for i in 0..model.num_actors() {
        let actor = ActorId::new(i);
        if state.act_clk[i] > 0 {
            continue;
        }
        let phase = state.phase[i];
        for &cid in model.input_channels(actor) {
            if state.tokens[cid.index()] < model.consumption(cid, phase) {
                continue 'actors; // token-starved, not a storage dependency
            }
        }
        for &cid in model.output_channels(actor) {
            if let Some(cap) = engine.capacities().get(cid) {
                let free = cap.saturating_sub(state.tokens[cid.index()]);
                if free < model.production(cid, phase) {
                    out[cid.index()] = true;
                }
            }
        }
    }
}

/// Computes the throughput of `observed` under `dist` and the set of
/// storage-dependent channels.
///
/// For a periodic execution the dependencies are collected over one full
/// period; for a deadlocked execution they are collected in the final
/// (stable) state.
///
/// # Errors
///
/// Same as [`crate::throughput_with_limits`].
pub fn throughput_with_dependencies(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<DependencyReport, AnalysisError> {
    throughput_with_dependencies_for(graph, dist, observed, limits)
}

/// The generic form of [`throughput_with_dependencies`]: works for any
/// [`DataflowSemantics`] model through the unified kernel.
///
/// # Errors
///
/// Same as [`crate::throughput_with_limits`].
pub fn throughput_with_dependencies_for<M: DataflowSemantics>(
    model: &M,
    dist: &StorageDistribution,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<DependencyReport, AnalysisError> {
    let report = throughput_for(model, Capacities::from_distribution(dist), observed, limits)?;
    let dependent = dependencies_from_run_for(
        model,
        dist,
        report.deadlocked,
        report.cycle_entry_time,
        report.period,
    )?;
    Ok(DependencyReport { report, dependent })
}

/// Replays one self-timed execution to collect the storage-dependent
/// channels, reusing an already-computed throughput result (its
/// `deadlocked` flag, `cycle_entry_time` and `period`) instead of
/// re-running the state-space analysis. This is what lets a memoized
/// evaluator answer dependency queries from its cache.
///
/// # Errors
///
/// Engine errors (e.g. arithmetic overflow) during the replay.
pub fn dependencies_from_run_for<M: DataflowSemantics>(
    model: &M,
    dist: &StorageDistribution,
    deadlocked: bool,
    cycle_entry_time: u64,
    period: u64,
) -> Result<Vec<bool>, AnalysisError> {
    let mut dependent = vec![false; model.num_channels()];
    let mut engine = DataflowEngine::new(model, Capacities::from_distribution(dist));
    engine.start_initial()?;

    if deadlocked {
        // Run to the deadlock and inspect the stable state.
        loop {
            match engine.step()? {
                FiringOutcome::Deadlock => break,
                FiringOutcome::Progress(_) => {}
            }
        }
        space_blocked_channels(&engine, &mut dependent);
    } else {
        // Replay one full period and union the blocked sets.
        let end = cycle_entry_time + period;
        while engine.time() < cycle_entry_time {
            engine.step()?;
        }
        space_blocked_channels(&engine, &mut dependent);
        while engine.time() < end {
            engine.step()?;
            space_blocked_channels(&engine, &mut dependent);
        }
    }
    Ok(dependent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::{Rational, SdfGraph};

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn deps(g: &SdfGraph, caps: &[u64]) -> DependencyReport {
        throughput_with_dependencies(
            g,
            &StorageDistribution::from_capacities(caps.to_vec()),
            g.actor_by_name("c").unwrap(),
            ExplorationLimits::default(),
        )
        .unwrap()
    }

    #[test]
    fn saturated_distribution_has_dependencies() {
        let g = example();
        let r = deps(&g, &[4, 2]);
        assert_eq!(r.report.throughput, Rational::new(1, 7));
        // a is repeatedly blocked on α's space: α must be dependent.
        assert!(r.dependent[0], "α should carry a storage dependency");
        assert!(!r.dependent_channels().is_empty());
    }

    #[test]
    fn maximal_distribution_blocks_only_the_source() {
        // Even at maximal throughput the source a (rate 2 per step) outruns
        // b (rate 1.5 per step), so α eventually back-pressures a: the
        // dependency notion deliberately reports it. β, in balance, never
        // fills and must not be reported.
        let g = example();
        let r = deps(&g, &[20, 20]);
        assert_eq!(r.report.throughput, Rational::new(1, 4));
        assert_eq!(r.dependent, vec![true, false]);
    }

    #[test]
    fn deadlock_reports_blocking_channel() {
        let g = example();
        // α capacity 3 < production needs: a (token-free inputs) is blocked
        // on α forever.
        let r = deps(&g, &[3, 2]);
        assert!(r.report.deadlocked);
        assert!(r.dependent[0]);
    }

    #[test]
    fn growing_dependent_channels_reaches_the_maximum() {
        // From ⟨4,2⟩ the throughput 1/7 can be improved; below the maximal
        // throughput the dependent set is never empty, and growing every
        // dependent channel must eventually reach the maximum (this is the
        // soundness property the dependency-guided exploration relies on).
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let mut d = StorageDistribution::from_capacities(vec![4, 2]);
        let mut best = Rational::new(1, 7);
        for _ in 0..30 {
            let r = throughput_with_dependencies(&g, &d, c, ExplorationLimits::default()).unwrap();
            best = best.max(r.report.throughput);
            if best == Rational::new(1, 4) {
                break;
            }
            let deps = r.dependent_channels();
            assert!(!deps.is_empty(), "no dependencies but below max at {d}");
            for ch in deps {
                d = d.grown(ch, 1);
            }
        }
        assert_eq!(best, Rational::new(1, 4));
    }
}
