//! Directed-graph algorithms on the actor topology.
//!
//! Strongly connected components (Tarjan) and topological ordering are
//! used by the HSDF/MCM analyses: only actors inside a strongly connected
//! component lie on cycles, and the maximal achievable throughput of the
//! graph is governed by its cycles (paper §9, \[GG93\]).

use buffy_graph::{ActorId, SdfGraph};

/// The strongly connected components of the actor graph, each a list of
/// actor ids. Components are returned in reverse topological order
/// (Tarjan's natural output order: a component is emitted only after all
/// components it reaches).
pub fn strongly_connected_components(graph: &SdfGraph) -> Vec<Vec<ActorId>> {
    struct Tarjan<'g> {
        graph: &'g SdfGraph,
        index: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        components: Vec<Vec<ActorId>>,
    }

    impl Tarjan<'_> {
        /// Iterative Tarjan (explicit stack) to survive deep graphs.
        fn visit(&mut self, root: usize) {
            // (node, next child position in its successor list)
            let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
                if *child_pos == 0 {
                    self.index[v] = Some(self.next_index);
                    self.lowlink[v] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v] = true;
                }
                let succs = self.graph.output_channels(ActorId::new(v));
                if *child_pos < succs.len() {
                    let w = self.graph.channel(succs[*child_pos]).target().index();
                    *child_pos += 1;
                    match self.index[w] {
                        None => call_stack.push((w, 0)),
                        Some(wi) => {
                            if self.on_stack[w] {
                                self.lowlink[v] = self.lowlink[v].min(wi);
                            }
                        }
                    }
                } else {
                    // Post-visit.
                    if self.lowlink[v] == self.index[v].expect("visited") {
                        let mut comp = Vec::new();
                        loop {
                            let w = self.stack.pop().expect("stack non-empty");
                            self.on_stack[w] = false;
                            comp.push(ActorId::new(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        self.components.push(comp);
                    }
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                    }
                }
            }
        }
    }

    let n = graph.num_actors();
    let mut t = Tarjan {
        graph,
        index: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    t.components
}

/// Whether the actor graph is strongly connected.
pub fn is_strongly_connected(graph: &SdfGraph) -> bool {
    strongly_connected_components(graph).len() == 1
}

/// A topological order of the actors, ignoring channels that carry enough
/// initial tokens to fully decouple an iteration (`tokens ≥ consumption ×
/// q(target)` would be the precise notion; here: ignoring *no* channels).
///
/// Returns `None` if the graph (viewed with all channels) is cyclic.
pub fn topological_order(graph: &SdfGraph) -> Option<Vec<ActorId>> {
    let n = graph.num_actors();
    let mut indegree = vec![0usize; n];
    for (_, ch) in graph.channels() {
        indegree[ch.target().index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(ActorId::new(v));
        for &cid in graph.output_channels(ActorId::new(v)) {
            let w = graph.channel(cid).target().index();
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn chain() -> SdfGraph {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel("c1", x, 1, y, 1).unwrap();
        b.channel("c2", y, 1, z, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_has_singleton_components() {
        let g = chain();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(!is_strongly_connected(&g));
        // Reverse topological order: z's component first.
        assert_eq!(sccs[0], vec![g.actor_by_name("z").unwrap()]);
        assert_eq!(sccs[2], vec![g.actor_by_name("x").unwrap()]);
    }

    #[test]
    fn ring_is_one_component() {
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel("c1", x, 1, y, 1).unwrap();
        b.channel("c2", y, 1, z, 1).unwrap();
        b.channel_with_tokens("c3", z, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 3);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn mixed_components() {
        // ring(x,y) -> z
        let mut b = SdfGraph::builder("mix");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel("c1", x, 1, y, 1).unwrap();
        b.channel_with_tokens("c2", y, 1, x, 1, 1).unwrap();
        b.channel("c3", y, 1, z, 1).unwrap();
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0], vec![z]);
        let mut ring = sccs[1].clone();
        ring.sort();
        assert_eq!(ring, vec![x, y]);
    }

    #[test]
    fn topological_order_of_chain() {
        let g = chain();
        let order = topological_order(&g).unwrap();
        let pos = |n: &str| {
            order
                .iter()
                .position(|&a| a == g.actor_by_name(n).unwrap())
                .unwrap()
        };
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
    }

    #[test]
    fn cyclic_graph_has_no_topological_order() {
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c1", x, 1, y, 1).unwrap();
        b.channel_with_tokens("c2", y, 1, x, 1, 1).unwrap();
        assert!(topological_order(&b.build().unwrap()).is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut b = SdfGraph::builder("deep");
        let mut prev = b.actor("a0", 1);
        for i in 1..50_000 {
            let next = b.actor(format!("a{i}"), 1);
            b.channel(format!("c{i}"), prev, 1, next, 1).unwrap();
            prev = next;
        }
        let g = b.build().unwrap();
        assert_eq!(strongly_connected_components(&g).len(), 50_000);
    }
}
