//! Graph transformations.
//!
//! [`capacities_as_channels`] encodes finite channel capacities as
//! ordinary backward channels — the classical modelling trick: a channel
//! `a → b` with capacity `γ` becomes the original channel plus a reverse
//! channel `b → a` whose tokens represent free space (initially
//! `γ − initial tokens`, returned by `b` when it consumes and claimed by
//! `a` when it produces). Under the paper's firing semantics
//! (claim space at start = check the reverse channel's tokens at start,
//! consume at the end) the transformed graph executed with *unbounded*
//! buffers behaves exactly like the original under the bounded
//! distribution; the test suite exploits this as an independent
//! cross-check of the engine's capacity handling.

use crate::error::AnalysisError;
use buffy_graph::{GraphError, SdfGraph, StorageDistribution};

/// Builds a graph whose unbounded execution equals `graph`'s execution
/// under the storage distribution `dist`.
///
/// Every channel `c: a → b` (rates `p : q`, `d` initial tokens) gains a
/// reverse channel `__space_c: b → a` with rates `q : p` and `γ(c) − d`
/// initial tokens.
///
/// # Errors
///
/// [`AnalysisError::Graph`] when some capacity is smaller than the
/// channel's initial tokens (the space channel would need negative
/// tokens), reported as an inconsistency on that channel.
pub fn capacities_as_channels(
    graph: &SdfGraph,
    dist: &StorageDistribution,
) -> Result<SdfGraph, AnalysisError> {
    assert_eq!(
        dist.len(),
        graph.num_channels(),
        "distribution must cover every channel"
    );
    let mut b = SdfGraph::builder(format!("{}-bounded", graph.name()));
    let ids: Vec<_> = graph
        .actors()
        .map(|(_, a)| b.actor(a.name(), a.execution_time()))
        .collect();
    for (cid, ch) in graph.channels() {
        let cap = dist.get(cid);
        if cap < ch.initial_tokens() {
            return Err(AnalysisError::Graph(GraphError::Inconsistent {
                channel: ch.name().to_string(),
            }));
        }
        b.channel_with_tokens(
            ch.name(),
            ids[ch.source().index()],
            ch.production(),
            ids[ch.target().index()],
            ch.consumption(),
            ch.initial_tokens(),
        )?;
        b.channel_with_tokens(
            format!("__space_{}", ch.name()),
            ids[ch.target().index()],
            ch.consumption(),
            ids[ch.source().index()],
            ch.production(),
            cap - ch.initial_tokens(),
        )?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Capacities;
    use crate::throughput::{throughput, throughput_with_capacities, ExplorationLimits};
    use buffy_graph::{is_consistent, Rational};

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn structure_of_transformed_graph() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let t = capacities_as_channels(&g, &d).unwrap();
        assert_eq!(t.num_actors(), 3);
        assert_eq!(t.num_channels(), 4);
        let space = t.channel_by_name("__space_alpha").unwrap();
        let ch = t.channel(space);
        assert_eq!(ch.production(), 3);
        assert_eq!(ch.consumption(), 2);
        assert_eq!(ch.initial_tokens(), 4);
        assert!(is_consistent(&t));
    }

    #[test]
    fn transformed_unbounded_equals_original_bounded() {
        let g = example();
        let c_name = "c";
        for caps in [[4u64, 2], [5, 2], [6, 2], [6, 3], [7, 3], [4, 1], [10, 10]] {
            let d = StorageDistribution::from_capacities(caps.to_vec());
            let original = throughput(&g, &d, g.actor_by_name(c_name).unwrap()).unwrap();
            let t = capacities_as_channels(&g, &d).unwrap();
            let transformed = throughput_with_capacities(
                &t,
                Capacities::unbounded(t.num_channels()),
                t.actor_by_name(c_name).unwrap(),
                ExplorationLimits::default(),
            )
            .unwrap();
            assert_eq!(
                original.throughput, transformed.throughput,
                "γ = {d}: {} vs {}",
                original.throughput, transformed.throughput
            );
            assert_eq!(original.deadlocked, transformed.deadlocked, "γ = {d}");
        }
    }

    #[test]
    fn initial_tokens_reduce_space_tokens() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 1, y, 1, 3).unwrap();
        let g = b.build().unwrap();
        let t = capacities_as_channels(&g, &StorageDistribution::from_capacities(vec![5])).unwrap();
        let space = t.channel(t.channel_by_name("__space_c").unwrap());
        assert_eq!(space.initial_tokens(), 2);
    }

    #[test]
    fn capacity_below_initial_tokens_rejected() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 1, y, 1, 3).unwrap();
        let g = b.build().unwrap();
        let err =
            capacities_as_channels(&g, &StorageDistribution::from_capacities(vec![2])).unwrap_err();
        assert!(matches!(err, AnalysisError::Graph(_)));
    }

    #[test]
    fn transformed_graph_throughput_value() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let t = capacities_as_channels(&g, &d).unwrap();
        let r = throughput_with_capacities(
            &t,
            Capacities::unbounded(t.num_channels()),
            t.actor_by_name("c").unwrap(),
            ExplorationLimits::default(),
        )
        .unwrap();
        assert_eq!(r.throughput, Rational::new(1, 7));
    }
}
