//! Full timed state-space exploration (paper §6, Fig. 3).
//!
//! Stores one state per time instant. This is the didactic, unreduced view
//! of the execution: it makes Theorem 1 (periodicity) and Property 1
//! (exactly one cycle) directly observable, and serves as an oracle for the
//! reduced analysis of [`crate::throughput`]. Production code should prefer
//! the reduced analysis, which stores dramatically fewer states (the
//! comparison is one of this repository's ablation benchmarks).
//!
//! Like the rest of the kernel the recorder is generic over
//! [`DataflowSemantics`] ([`explore_for`]); [`explore`] is the SDF-typed
//! entry point.

use crate::engine::{Capacities, DataflowEngine, DataflowState, FiringEvents, FiringOutcome};
use crate::error::AnalysisError;
use crate::interner::{fx_hash, Interned, StateStore};
use crate::semantics::DataflowSemantics;
use crate::throughput::ExplorationLimits;
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};

/// The explored timed state space of a dataflow model under a storage
/// distribution.
#[derive(Debug, Clone)]
pub struct StateSpace {
    /// Visited states in order; `states[0]` is the state after the initial
    /// start phase (time 0).
    pub states: Vec<DataflowState>,
    /// Step events leading *into* each state (`events[0]` is the initial
    /// start phase).
    pub events: Vec<FiringEvents>,
    /// Index of the first state of the cycle; `None` if the execution
    /// deadlocks.
    pub cycle_start: Option<usize>,
    /// Events of the transition that closes the cycle (from the last
    /// stored state back to `states[cycle_start]`); `None` on deadlock.
    pub closing_events: Option<FiringEvents>,
}

impl StateSpace {
    /// Whether the execution deadlocks (paper: a deadlocked state forms a
    /// self-loop; we report it as `cycle_start == None`).
    pub fn deadlocked(&self) -> bool {
        self.cycle_start.is_none()
    }

    /// Number of states on the cycle (the cycle's duration in time steps).
    pub fn cycle_len(&self) -> usize {
        match self.cycle_start {
            Some(k) => self.states.len() - k,
            None => 0,
        }
    }

    /// Throughput of `actor` per Property 2: firings on the cycle divided
    /// by the cycle duration; zero on deadlock.
    pub fn throughput_of(&self, actor: ActorId) -> Rational {
        let Some(k) = self.cycle_start else {
            return Rational::ZERO;
        };
        let count = |ev: &FiringEvents| ev.completed.iter().filter(|&&(a, _)| a == actor).count();
        // Transitions within the cycle: those leading into states
        // k+1..len-1, plus the closing transition back to state k.
        let firings: usize = self.events[k + 1..].iter().map(count).sum::<usize>()
            + self.closing_events.as_ref().map(count).unwrap_or(0);
        Rational::new(firings as i128, self.cycle_len() as i128)
    }
}

/// Explores the full timed state space under `dist`.
///
/// # Errors
///
/// - [`AnalysisError::StateLimitExceeded`] when `limits` are hit;
/// - [`AnalysisError::ZeroTimeLivelock`] for unbounded zero-time firing.
///
/// # Examples
///
/// ```
/// use buffy_analysis::{explore, ExplorationLimits};
/// use buffy_graph::{SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let d = StorageDistribution::from_capacities(vec![4, 2]);
/// let ss = explore(&g, &d, ExplorationLimits::default())?;
/// assert_eq!(ss.cycle_len(), 7); // the paper's period of 7 time steps
/// # Ok(())
/// # }
/// ```
pub fn explore(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    limits: ExplorationLimits,
) -> Result<StateSpace, AnalysisError> {
    explore_for(graph, Capacities::from_distribution(dist), limits)
}

/// The generic form of [`explore`]: records the full timed state space of
/// any [`DataflowSemantics`] model.
///
/// # Errors
///
/// See [`explore`].
pub fn explore_for<M: DataflowSemantics>(
    model: &M,
    caps: Capacities,
    limits: ExplorationLimits,
) -> Result<StateSpace, AnalysisError> {
    let mut engine = DataflowEngine::new(model, caps);
    let initial = engine.start_initial()?;

    // The interning store *is* the state vector: arena order is visit
    // order, and each state is hashed and cloned exactly once.
    let mut store: StateStore<DataflowState> = StateStore::new();
    let mut events: Vec<FiringEvents> = Vec::new();

    store.intern_with(
        fx_hash(engine.state()),
        |s| s == engine.state(),
        || engine.state().clone(),
    );
    events.push(initial);

    loop {
        if store.len() > limits.max_states {
            return Err(limits.exceeded(crate::error::LimitKind::States, engine.capacities()));
        }
        if engine.time() >= limits.max_steps {
            return Err(limits.exceeded(crate::error::LimitKind::Steps, engine.capacities()));
        }
        match engine.step()? {
            FiringOutcome::Deadlock => {
                return Ok(StateSpace {
                    states: store.into_items(),
                    events,
                    cycle_start: None,
                    closing_events: None,
                });
            }
            FiringOutcome::Progress(ev) => {
                match store.intern_with(
                    fx_hash(engine.state()),
                    |s| s == engine.state(),
                    || engine.state().clone(),
                ) {
                    Interned::Existing(k) => {
                        return Ok(StateSpace {
                            states: store.into_items(),
                            events,
                            cycle_start: Some(k),
                            closing_events: Some(ev),
                        });
                    }
                    Interned::Inserted(_) => events.push(ev),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example_cycle_has_period_seven() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let ss = explore(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(!ss.deadlocked());
        // States t=0..t=8 stored (9 states); the t=9 state equals the t=2
        // state, so the cycle spans 7 time steps (paper §4).
        assert_eq!(ss.states.len(), 9);
        assert_eq!(ss.cycle_start, Some(2));
        assert_eq!(ss.cycle_len(), 7);
        assert!(ss.closing_events.is_some());
        // Property 2: throughput of c from the full space = 1/7.
        let c = g.actor_by_name("c").unwrap();
        assert_eq!(ss.throughput_of(c), Rational::new(1, 7));
        // And of a: 3 firings per cycle.
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(ss.throughput_of(a), Rational::new(3, 7));
        let b = g.actor_by_name("b").unwrap();
        assert_eq!(ss.throughput_of(b), Rational::new(2, 7));
    }

    #[test]
    fn deadlock_space_is_finite_prefix() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![2, 2]);
        let ss = explore(&g, &d, ExplorationLimits::default()).unwrap();
        assert!(ss.deadlocked());
        assert_eq!(ss.cycle_len(), 0);
        assert!(ss.closing_events.is_none());
        assert_eq!(
            ss.throughput_of(g.actor_by_name("c").unwrap()),
            Rational::ZERO
        );
    }

    #[test]
    fn matches_reduced_analysis_on_sweep() {
        use crate::throughput::throughput;
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        for ca in 2..=9u64 {
            for cb in 1..=5u64 {
                let d = StorageDistribution::from_capacities(vec![ca, cb]);
                let full = explore(&g, &d, ExplorationLimits::default()).unwrap();
                let red = throughput(&g, &d, c).unwrap();
                assert_eq!(
                    full.throughput_of(c),
                    red.throughput,
                    "mismatch at <{ca}, {cb}>"
                );
            }
        }
    }

    #[test]
    fn limit_respected() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![8, 4]);
        let err = explore(
            &g,
            &d,
            ExplorationLimits {
                max_states: 2,
                max_steps: u64::MAX,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::StateLimitExceeded { .. }));
    }
}
