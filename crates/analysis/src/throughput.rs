//! Throughput analysis via the reduced state space (paper §7).
//!
//! The self-timed execution of a consistent SDF graph under finite channel
//! capacities is deterministic and visits finitely many states, so it is
//! either periodic or deadlocks (paper Theorem 1). The throughput of an
//! actor is the number of its firings on the cycle of the state space
//! divided by the cycle's duration (Property 2).
//!
//! Storing every time instant is wasteful; the paper's *reduced state
//! space* keeps only the states at which the observed actor completes a
//! firing, extended with a `dist` component recording the time elapsed
//! since the previous completion (Fig. 4). This module implements exactly
//! that, generically over any [`DataflowSemantics`] model via
//! [`throughput_for`]; the SDF-typed entry points wrap it.

use crate::budget::CancelToken;
use crate::engine::{Capacities, DataflowEngine, DataflowState, FiringOutcome};
use crate::error::{AnalysisError, LimitKind};
use crate::interner::{fx_hash, Interned, StateStore, PROBE_BINS};
use crate::semantics::DataflowSemantics;
use buffy_graph::{ActorId, Rational, SdfGraph, StorageDistribution};
use buffy_telemetry::{names, Gauge, Histogram, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// How many engine steps between cancellation polls in
/// [`throughput_for_with_cancel`]: the token is checked when
/// `steps & CANCEL_STRIDE_MASK == 0`, i.e. every 1024 steps, so the poll
/// (one relaxed load, occasionally an `Instant::now`) never shows up on
/// the per-state hot path.
const CANCEL_STRIDE_MASK: u64 = 0x3FF;

/// Tunable limits for state-space searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationLimits {
    /// Maximum number of (reduced) states stored before giving up.
    pub max_states: usize,
    /// Maximum number of time steps simulated before giving up.
    pub max_steps: u64,
}

impl Default for ExplorationLimits {
    fn default() -> Self {
        ExplorationLimits {
            max_states: 1 << 22,
            max_steps: u64::MAX,
        }
    }
}

impl ExplorationLimits {
    /// The error for running into the limit of `kind` while analysing a
    /// model under `caps`: carries the limit value and the capacities so
    /// the offending distribution is identifiable from logs.
    pub fn exceeded(&self, kind: LimitKind, caps: &Capacities) -> AnalysisError {
        AnalysisError::StateLimitExceeded {
            limit: match kind {
                LimitKind::States => self.max_states as u64,
                LimitKind::Steps => self.max_steps,
            },
            kind,
            capacities: caps.as_slice().to_vec(),
        }
    }
}

/// A state of the reduced state space: the timed state at the instant
/// the observed actor completes a firing, plus the `dist` dimension
/// (time since the previous completion) and the number of completions at
/// this instant (more than one only for zero-execution-time actors).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReducedState {
    /// The full timed state after the step.
    pub state: DataflowState,
    /// Time instants since the previous completion of the observed actor.
    pub dist: u64,
    /// Completions of the observed actor at this instant.
    pub firings: u32,
}

/// Result of a throughput analysis for one storage distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputReport {
    /// Throughput of the observed actor: average firings per time step in
    /// the periodic phase; zero iff the execution deadlocks. For phased
    /// models every phase firing counts (divide by the phase count for
    /// whole cycles).
    pub throughput: Rational,
    /// Whether the execution deadlocked (paper §3).
    pub deadlocked: bool,
    /// Number of reduced states stored during the search (the paper's
    /// "maximum #states" metric of Table 2 counts these).
    pub states_stored: usize,
    /// Number of reduced states on the cycle (0 on deadlock).
    pub cycle_states: usize,
    /// Firings of the observed actor per period (0 on deadlock).
    pub firings_per_period: u64,
    /// Duration of the periodic phase in time steps (0 on deadlock).
    pub period: u64,
    /// Time at which the cyclic phase was first entered (time of the first
    /// recurrent reduced state; 0 on deadlock).
    pub cycle_entry_time: u64,
}

impl ThroughputReport {
    fn deadlock(states_stored: usize) -> ThroughputReport {
        ThroughputReport {
            throughput: Rational::ZERO,
            deadlocked: true,
            states_stored,
            cycle_states: 0,
            firings_per_period: 0,
            period: 0,
            cycle_entry_time: 0,
        }
    }
}

/// Computes the throughput of `observed` when `graph` executes self-timed
/// under the storage distribution `dist`.
///
/// This is the paper's core single-point analysis: the generated program of
/// Fig. 8, with the reduced state space of §7.
///
/// # Errors
///
/// - [`AnalysisError::StateLimitExceeded`] if the limits are hit;
/// - [`AnalysisError::ZeroTimeLivelock`] for unbounded zero-time firing;
/// - [`AnalysisError::ZeroPeriod`] if a period of zero duration is found
///   (only possible when the observed actor has execution time 0).
///
/// # Examples
///
/// The paper's ground truth for the running example (§5, §8): γ = ⟨4, 2⟩
/// yields throughput 1/7 for actor `c`, γ = ⟨6, 2⟩ yields 1/6.
///
/// ```
/// use buffy_analysis::throughput;
/// use buffy_graph::{Rational, SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
///
/// let r = throughput(&g, &StorageDistribution::from_capacities(vec![4, 2]), c)?;
/// assert_eq!(r.throughput, Rational::new(1, 7));
/// let r = throughput(&g, &StorageDistribution::from_capacities(vec![6, 2]), c)?;
/// assert_eq!(r.throughput, Rational::new(1, 6));
/// # Ok(())
/// # }
/// ```
pub fn throughput(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    observed: ActorId,
) -> Result<ThroughputReport, AnalysisError> {
    throughput_with_limits(graph, dist, observed, ExplorationLimits::default())
}

/// Like [`throughput`], with explicit exploration limits.
///
/// # Errors
///
/// See [`throughput`].
pub fn throughput_with_limits(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<ThroughputReport, AnalysisError> {
    let caps = Capacities::from_distribution(dist);
    throughput_with_capacities(graph, caps, observed, limits)
}

/// Like [`throughput`], but accepting raw [`Capacities`] (which may mark
/// channels as unbounded). With unbounded channels the state space need not
/// be finite; the limits then bound the search.
///
/// # Errors
///
/// See [`throughput`].
pub fn throughput_with_capacities(
    graph: &SdfGraph,
    caps: Capacities,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<ThroughputReport, AnalysisError> {
    throughput_for(graph, caps, observed, limits)
}

/// The generic reduced-state-space throughput analysis: works for any
/// [`DataflowSemantics`] model (SDF, CSDF, …). For phased models every
/// phase completion of the observed actor counts as a firing.
///
/// # Errors
///
/// See [`throughput`].
pub fn throughput_for<M: DataflowSemantics>(
    model: &M,
    caps: Capacities,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<ThroughputReport, AnalysisError> {
    static NEVER: CancelToken = CancelToken::new();
    throughput_for_with_cancel(model, caps, observed, limits, &NEVER)
}

/// [`throughput_for`] with cooperative cancellation: polls `cancel` every
/// 1024 engine steps (a coarse stride, not per-state) and returns
/// [`AnalysisError::Cancelled`] when the token has tripped. This is the
/// entry point the exploration drivers' resilience layer uses.
///
/// # Errors
///
/// See [`throughput`]; additionally [`AnalysisError::Cancelled`] when
/// `cancel` trips mid-analysis.
pub fn throughput_for_with_cancel<M: DataflowSemantics>(
    model: &M,
    caps: Capacities,
    observed: ActorId,
    limits: ExplorationLimits,
    cancel: &CancelToken,
) -> Result<ThroughputReport, AnalysisError> {
    let mut workspace = AnalysisWorkspace::new();
    throughput_for_reusing(model, caps, observed, limits, cancel, &mut workspace, 0)
}

/// Reusable per-analysis allocations: the reduced-state interner plus the
/// time/firing bookkeeping vectors of the cycle search.
///
/// One workspace serves one analysis at a time; between analyses it is
/// *reset, not reallocated*, so a worker that evaluates thousands of
/// distributions pays the arena's allocation (and the interner's grow/
/// rehash ladder) once instead of per distribution. A workspace never
/// changes any computed value — the self-timed execution is fully
/// determined by the model and the capacities; the workspace only decides
/// where the intermediate states live.
#[derive(Debug, Default)]
pub struct AnalysisWorkspace {
    store: StateStore<ReducedState>,
    times: Vec<u64>,
    firing_counts: Vec<u32>,
}

impl AnalysisWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> AnalysisWorkspace {
        AnalysisWorkspace::default()
    }

    /// Readies the workspace for one analysis expected to store about
    /// `state_hint` reduced states (0 = no expectation): everything is
    /// cleared, allocations are kept, and the interner table is pre-sized
    /// so the hinted analysis never grows it mid-search.
    fn prepare(&mut self, state_hint: usize) {
        self.store.reset_with_capacity(state_hint);
        self.times.clear();
        self.firing_counts.clear();
        if state_hint > self.times.capacity() {
            self.times.reserve(state_hint);
            self.firing_counts.reserve(state_hint);
        }
    }
}

/// [`throughput_for_with_cancel`] over a caller-owned
/// [`AnalysisWorkspace`], the warm-start entry point of the evaluation
/// pipeline: `state_hint` carries a neighbouring distribution's recorded
/// state count (0 when no neighbour is known) so the interner starts at
/// the right size instead of growing through the power-of-two ladder.
///
/// The report is byte-identical to [`throughput_for_with_cancel`]'s for
/// every workspace state and every hint — the hint is a memory-layout
/// seed, never a behavioural one.
///
/// # Errors
///
/// See [`throughput_for_with_cancel`].
#[allow(clippy::too_many_arguments)]
pub fn throughput_for_reusing<M: DataflowSemantics>(
    model: &M,
    caps: Capacities,
    observed: ActorId,
    limits: ExplorationLimits,
    cancel: &CancelToken,
    workspace: &mut AnalysisWorkspace,
    state_hint: usize,
) -> Result<ThroughputReport, AnalysisError> {
    workspace.prepare(state_hint);
    // Telemetry is observation-only and fetched once per analysis: when no
    // recorder is installed this is a single relaxed load and a branch.
    let telemetry = buffy_telemetry::active().map(AnalysisTelemetry::new);
    if telemetry.is_none() {
        return cycle_search(model, caps, observed, limits, cancel, workspace);
    }
    let started = Instant::now();
    let result = cycle_search(model, caps, observed, limits, cancel, workspace);
    if let Some(tel) = &telemetry {
        tel.record(&workspace.store, started.elapsed().as_nanos() as u64);
    }
    result
}

/// Per-analysis telemetry handles, fetched once per call so the state
/// loop itself records nothing.
struct AnalysisTelemetry {
    states: Arc<Histogram>,
    wall: Arc<Histogram>,
    probe_len: Arc<Histogram>,
    occupancy: Arc<Gauge>,
}

impl AnalysisTelemetry {
    fn new(recorder: Arc<Recorder>) -> AnalysisTelemetry {
        AnalysisTelemetry {
            states: recorder.histogram(
                names::ANALYSIS_STATES,
                "Reduced states stored per throughput analysis.",
            ),
            wall: recorder.histogram(
                names::ANALYSIS_WALL_NS,
                "Cycle-detection wall time per throughput analysis, in nanoseconds.",
            ),
            probe_len: recorder.histogram(
                names::INTERNER_PROBE_LEN,
                "State-interner probe lengths (slots inspected; 1 = direct hit).",
            ),
            occupancy: recorder.gauge(
                names::INTERNER_OCCUPANCY_MAX,
                "Largest state-interner occupancy (entries) seen in any analysis.",
            ),
        }
    }

    /// Folds the store's always-on scratch tallies into the shared
    /// histograms — once per analysis, never per state.
    fn record(&self, store: &StateStore<ReducedState>, wall_ns: u64) {
        self.states.record(store.len() as u64);
        self.wall.record(wall_ns);
        self.occupancy.record_max(store.len() as u64);
        let probes = store.probe_stats();
        for (i, &count) in probes.tally.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // The last bin aggregates lengths >= PROBE_BINS; report those
            // at the observed maximum.
            let len = if i + 1 < PROBE_BINS {
                (i + 1) as u64
            } else {
                probes.max_probe
            };
            self.probe_len.record_n(len, count);
        }
    }
}

/// The cycle search proper; the workspace is owned by the caller (and
/// already prepared) so telemetry can read its statistics on every exit
/// path and the allocations outlive the analysis.
fn cycle_search<M: DataflowSemantics>(
    model: &M,
    caps: Capacities,
    observed: ActorId,
    limits: ExplorationLimits,
    cancel: &CancelToken,
    workspace: &mut AnalysisWorkspace,
) -> Result<ThroughputReport, AnalysisError> {
    let AnalysisWorkspace {
        store,
        times, // time of each reduced state
        firing_counts,
    } = workspace;
    let mut engine = DataflowEngine::new(model, caps);
    let initial = engine.start_initial()?;
    let mut last_completion: u64 = 0;

    // The observed actor may complete during the initial start phase when
    // its execution time is 0.
    let mut pending = initial
        .completed
        .iter()
        .filter(|&&(a, _)| a == observed)
        .count() as u32;
    if pending > 0 {
        let hash = fx_hash(&(engine.state(), 0u64, pending));
        store.intern_with(
            hash,
            |rs| rs.dist == 0 && rs.firings == pending && rs.state == *engine.state(),
            || ReducedState {
                state: engine.state().clone(),
                dist: 0,
                firings: pending,
            },
        );
        times.push(0);
        firing_counts.push(pending);
    }

    loop {
        if engine.time() & CANCEL_STRIDE_MASK == 0 {
            if let Some(reason) = cancel.check() {
                return Err(AnalysisError::Cancelled { reason });
            }
        }
        if engine.time() >= limits.max_steps {
            return Err(limits.exceeded(LimitKind::Steps, engine.capacities()));
        }
        let outcome = engine.step()?;
        let events = match outcome {
            FiringOutcome::Deadlock => {
                return Ok(ThroughputReport::deadlock(store.len()));
            }
            FiringOutcome::Progress(ev) => ev,
        };
        pending = events
            .completed
            .iter()
            .filter(|&&(a, _)| a == observed)
            .count() as u32;
        if pending == 0 {
            continue;
        }
        let dist = engine.time() - last_completion;
        last_completion = engine.time();
        let hash = fx_hash(&(engine.state(), dist, pending));
        let next_index = times.len();
        match store.intern_with(
            hash,
            |rs| rs.dist == dist && rs.firings == pending && rs.state == *engine.state(),
            || ReducedState {
                state: engine.state().clone(),
                dist,
                firings: pending,
            },
        ) {
            Interned::Inserted(_) => {
                times.push(engine.time());
                firing_counts.push(pending);
                if times.len() > limits.max_states {
                    return Err(limits.exceeded(LimitKind::States, engine.capacities()));
                }
            }
            Interned::Existing(k) => {
                // Cycle found: states k..next_index repeat forever.
                let period = engine.time() - times[k];
                let firings: u64 = firing_counts[k..].iter().map(|&f| f as u64).sum();
                if period == 0 {
                    return Err(AnalysisError::ZeroPeriod);
                }
                return Ok(ThroughputReport {
                    throughput: Rational::new(firings as i128, period as i128),
                    deadlocked: false,
                    states_stored: store.len(),
                    cycle_states: next_index - k,
                    firings_per_period: firings,
                    period,
                    cycle_entry_time: times[k],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn thr(g: &SdfGraph, caps: &[u64], actor: &str) -> Rational {
        let d = StorageDistribution::from_capacities(caps.to_vec());
        throughput(g, &d, g.actor_by_name(actor).unwrap())
            .unwrap()
            .throughput
    }

    /// Every concrete number the paper states for the running example.
    #[test]
    fn paper_oracle_values() {
        let g = example();
        // §5/§8: ⟨4,2⟩ → 1/7; ⟨6,2⟩ → 1/6.
        assert_eq!(thr(&g, &[4, 2], "c"), Rational::new(1, 7));
        assert_eq!(thr(&g, &[6, 2], "c"), Rational::new(1, 6));
        // §8: ⟨5,2⟩ is *not* minimal: same throughput as ⟨4,2⟩.
        assert_eq!(thr(&g, &[5, 2], "c"), Rational::new(1, 7));
        // §8: throughput can never exceed 1/4 and a distribution of size 10
        // reaches it (⟨7,3⟩; ⟨8,2⟩ starves c through the small β buffer).
        assert_eq!(thr(&g, &[7, 3], "c"), Rational::new(1, 4));
        assert_eq!(thr(&g, &[8, 2], "c"), Rational::new(1, 6));
        // Larger distributions do not improve beyond the maximum.
        assert_eq!(thr(&g, &[20, 20], "c"), Rational::new(1, 4));
    }

    #[test]
    fn throughputs_relate_via_repetition_vector() {
        let g = example();
        // q = (3, 2, 1): thr(a) = 3·thr(c), thr(b) = 2·thr(c).
        assert_eq!(thr(&g, &[4, 2], "a"), Rational::new(3, 7));
        assert_eq!(thr(&g, &[4, 2], "b"), Rational::new(2, 7));
    }

    #[test]
    fn deadlock_reports_zero() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 1]);
        let r = throughput(&g, &d, g.actor_by_name("c").unwrap()).unwrap();
        assert!(r.deadlocked);
        assert_eq!(r.throughput, Rational::ZERO);
        assert_eq!(r.cycle_states, 0);
    }

    #[test]
    fn smallest_positive_distribution_is_4_2() {
        // The paper: ⟨4,2⟩ is the smallest distribution with positive
        // throughput (size 6). Check all smaller distributions deadlock.
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        for a in 0..=5u64 {
            for b in 0..=5u64 {
                if a + b < 6 {
                    let d = StorageDistribution::from_capacities(vec![a, b]);
                    let r = throughput(&g, &d, c).unwrap();
                    assert!(
                        r.deadlocked,
                        "distribution <{a}, {b}> should deadlock but has throughput {}",
                        r.throughput
                    );
                }
            }
        }
    }

    #[test]
    fn report_metadata_for_4_2() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let r = throughput(&g, &d, g.actor_by_name("c").unwrap()).unwrap();
        assert_eq!(r.throughput, Rational::new(1, 7));
        assert_eq!(r.period, 7);
        assert_eq!(r.firings_per_period, 1);
        assert_eq!(r.cycle_states, 1);
        assert!(!r.deadlocked);
        // c completes its first firing at t=9 with dist=9; the next
        // completion (t=16) has dist=7, and that reduced state recurs at
        // t=23 — exactly the structure of the paper's Fig. 4.
        assert_eq!(r.cycle_entry_time, 16);
        assert!(r.states_stored >= 1);
    }

    #[test]
    fn state_limit_enforced() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![8, 2]);
        let limits = ExplorationLimits {
            max_states: 1,
            max_steps: 3, // give up before c ever completes
        };
        let err =
            throughput_with_limits(&g, &d, g.actor_by_name("c").unwrap(), limits).unwrap_err();
        // The steps cap fires here, and the error says so — including the
        // offending capacities.
        assert_eq!(
            err,
            AnalysisError::StateLimitExceeded {
                limit: 3,
                kind: crate::error::LimitKind::Steps,
                capacities: vec![Some(8), Some(2)],
            },
            "{err}"
        );
    }

    #[test]
    fn states_limit_reports_states_kind() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![8, 2]);
        let limits = ExplorationLimits {
            max_states: 1,
            max_steps: u64::MAX,
        };
        let err =
            throughput_with_limits(&g, &d, g.actor_by_name("c").unwrap(), limits).unwrap_err();
        assert!(
            matches!(
                err,
                AnalysisError::StateLimitExceeded {
                    limit: 1,
                    kind: crate::error::LimitKind::States,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn cancelled_token_stops_the_analysis() {
        use crate::budget::{CancelReason, CancelToken};
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupt);
        let err = throughput_for_with_cancel(
            &g,
            Capacities::from_distribution(&d),
            g.actor_by_name("c").unwrap(),
            ExplorationLimits::default(),
            &token,
        )
        .unwrap_err();
        assert_eq!(
            err,
            AnalysisError::Cancelled {
                reason: CancelReason::Interrupt
            }
        );
    }

    #[test]
    fn live_token_changes_nothing() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let token = CancelToken::new();
        let r = throughput_for_with_cancel(
            &g,
            Capacities::from_distribution(&d),
            g.actor_by_name("c").unwrap(),
            ExplorationLimits::default(),
            &token,
        )
        .unwrap();
        assert_eq!(r.throughput, Rational::new(1, 7));
    }

    #[test]
    fn homogeneous_ring_throughput() {
        // Two actors in a ring with one token: they alternate; each fires
        // once per 2 time units (execution times 1, 1).
        let mut b = SdfGraph::builder("ring");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(thr(&g, &[1, 1], "x"), Rational::new(1, 2));
        assert_eq!(thr(&g, &[1, 1], "y"), Rational::new(1, 2));
        // With 2 tokens of slack the two still serialize through the single
        // token in the ring: 1/2 each.
        assert_eq!(thr(&g, &[2, 2], "x"), Rational::new(1, 2));
    }

    #[test]
    fn pipelined_ring_reaches_half() {
        // Two tokens in the ring allow full pipelining: each actor busy
        // every step... bounded by its own execution time 1 → throughput 1? No:
        // with 2 tokens and capacities 2, x and y fire concurrently each
        // step: throughput 1 each.
        let mut b = SdfGraph::builder("ring2");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("f", x, 1, y, 1).unwrap();
        b.channel_with_tokens("r", y, 1, x, 1, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(thr(&g, &[2, 2], "x"), Rational::ONE);
    }

    #[test]
    fn zero_execution_time_observed_actor() {
        // src (exec 2) feeds a zero-time sink through capacity 1: the sink
        // fires instantly every 2 steps.
        let mut b = SdfGraph::builder("z");
        let s = b.actor("s", 2);
        let z = b.actor("z", 0);
        b.channel("c", s, 1, z, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(thr(&g, &[1], "z"), Rational::new(1, 2));
    }

    #[test]
    fn multirate_burst_counted_correctly() {
        // src produces 3 tokens per firing (exec 3); sink consumes 1 with
        // exec 1. With capacity 3 the source blocks while the sink drains
        // the burst: 3 sink firings per 6 time units.
        let mut b = SdfGraph::builder("burst");
        let s = b.actor("s", 3);
        let t = b.actor("t", 1);
        b.channel("c", s, 3, t, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(thr(&g, &[3], "t"), Rational::new(1, 2));
        // Capacity 6 lets source and sink overlap fully: the sink still
        // only receives 3 tokens per 3 time units → throughput 1... the
        // source fires back-to-back, so the sink fires once per step.
        assert_eq!(thr(&g, &[6], "t"), Rational::ONE);
    }

    // The `workspace` tests double as the Miri target for the arena
    // (`cargo miri test -p buffy-analysis --lib throughput::tests::workspace`).

    #[test]
    fn workspace_reuse_reproduces_reports() {
        // One workspace serving many analyses (including a deadlocked one
        // in the middle) must produce reports identical to fresh calls.
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        static NEVER: CancelToken = CancelToken::new();
        let mut ws = AnalysisWorkspace::new();
        for caps in [
            vec![4u64, 2],
            vec![20, 20],
            vec![4, 1], // deadlocks
            vec![7, 3],
            vec![4, 2], // repeat after larger runs
        ] {
            let fresh = throughput(&g, &StorageDistribution::from_capacities(caps.clone()), c);
            let reused = throughput_for_reusing(
                &g,
                Capacities::from_distribution(&StorageDistribution::from_capacities(caps)),
                c,
                ExplorationLimits::default(),
                &NEVER,
                &mut ws,
                0,
            );
            assert_eq!(fresh.unwrap(), reused.unwrap());
        }
    }

    #[test]
    fn workspace_state_hint_never_changes_the_report() {
        // The hint is a layout seed only: wildly wrong hints in both
        // directions still reproduce the unhinted report byte-for-byte.
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        static NEVER: CancelToken = CancelToken::new();
        let dist = StorageDistribution::from_capacities(vec![7, 3]);
        let baseline = throughput(&g, &dist, c).unwrap();
        for hint in [0usize, 1, baseline.states_stored, 10_000] {
            let mut ws = AnalysisWorkspace::new();
            let hinted = throughput_for_reusing(
                &g,
                Capacities::from_distribution(&dist),
                c,
                ExplorationLimits::default(),
                &NEVER,
                &mut ws,
                hint,
            )
            .unwrap();
            assert_eq!(baseline, hinted, "hint {hint} changed the report");
        }
    }

    #[test]
    fn workspace_errors_leave_it_reusable() {
        // A limit error mid-analysis must not poison the workspace for
        // the next analysis.
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        static NEVER: CancelToken = CancelToken::new();
        let mut ws = AnalysisWorkspace::new();
        let tight = ExplorationLimits {
            max_steps: 2,
            ..ExplorationLimits::default()
        };
        let dist = StorageDistribution::from_capacities(vec![7, 3]);
        let err = throughput_for_reusing(
            &g,
            Capacities::from_distribution(&dist),
            c,
            ExplorationLimits::default(),
            &NEVER,
            &mut ws,
            0,
        )
        .map(|_| ());
        assert!(err.is_ok());
        assert!(throughput_for_reusing(
            &g,
            Capacities::from_distribution(&dist),
            c,
            tight,
            &NEVER,
            &mut ws,
            0,
        )
        .is_err());
        let after = throughput_for_reusing(
            &g,
            Capacities::from_distribution(&dist),
            c,
            ExplorationLimits::default(),
            &NEVER,
            &mut ws,
            0,
        )
        .unwrap();
        assert_eq!(after, throughput(&g, &dist, c).unwrap());
    }
}
