//! SDF → HSDF (homogeneous SDF) expansion.
//!
//! Every consistent SDF graph has an equivalent *homogeneous* graph in
//! which all rates are 1: actor `a` is replaced by `q(a)` copies (one per
//! firing in an iteration), and token-level dependency edges connect
//! producing to consuming firings. The expansion is the classical
//! construction (Bhattacharyya–Murthy–Lee); it feeds the maximum-cycle-mean
//! analysis used to obtain the maximal achievable throughput of the graph
//! (paper §9, \[GG93\]).
//!
//! The expansion also adds, for every actor, a *firing-order ring*
//! `a_0 → a_1 → … → a_{q(a)-1} → a_0` whose closing edge carries one
//! token: it serializes the firings of one actor, modelling the paper's
//! exclusion of auto-concurrency.

use buffy_graph::{ActorId, RepetitionVector, SdfGraph};
use std::collections::HashMap;

/// A node of the expanded graph: the `copy`-th firing of `actor` within an
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HsdfNode {
    /// The original actor.
    pub actor: ActorId,
    /// Firing index within the iteration (`0..q(actor)`).
    pub copy: u64,
    /// Execution time, inherited from the actor.
    pub execution_time: u64,
}

/// A dependency edge of the expanded graph.
///
/// `tokens` is the iteration distance: firing `(m + tokens)` of the target
/// node depends on firing `m` of the source node. The edge *weight* for
/// cycle-ratio analyses is the execution time of the source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HsdfEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Initial tokens (iteration distance).
    pub tokens: u64,
}

/// The homogeneous expansion of an SDF graph.
#[derive(Debug, Clone)]
pub struct Hsdf {
    /// Nodes, grouped by actor: copies of actor `a` occupy a contiguous
    /// range (see [`node_of`](Self::node_of)).
    pub nodes: Vec<HsdfNode>,
    /// Dependency edges, deduplicated to the strongest constraint (minimum
    /// token count) per node pair.
    pub edges: Vec<HsdfEdge>,
    base: Vec<usize>,
}

impl Hsdf {
    /// Expands `graph` with repetition vector `q`.
    ///
    /// # Examples
    ///
    /// ```
    /// use buffy_analysis::Hsdf;
    /// use buffy_graph::{RepetitionVector, SdfGraph};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = SdfGraph::builder("example");
    /// let a = b.actor("a", 1);
    /// let bb = b.actor("b", 2);
    /// let c = b.actor("c", 2);
    /// b.channel("alpha", a, 2, bb, 3)?;
    /// b.channel("beta", bb, 1, c, 2)?;
    /// let g = b.build()?;
    /// let q = RepetitionVector::compute(&g)?;
    /// let h = Hsdf::expand(&g, &q);
    /// assert_eq!(h.nodes.len(), 6); // 3 + 2 + 1 copies
    /// # Ok(())
    /// # }
    /// ```
    pub fn expand(graph: &SdfGraph, q: &RepetitionVector) -> Hsdf {
        let mut nodes = Vec::new();
        let mut base = vec![0usize; graph.num_actors()];
        for (aid, actor) in graph.actors() {
            base[aid.index()] = nodes.len();
            for copy in 0..q[aid] {
                nodes.push(HsdfNode {
                    actor: aid,
                    copy,
                    execution_time: actor.execution_time(),
                });
            }
        }

        // Deduplicate parallel edges keeping the minimum token count (the
        // strongest precedence constraint).
        let mut edge_map: HashMap<(usize, usize), u64> = HashMap::new();
        let mut add_edge = |from: usize, to: usize, tokens: u64| {
            edge_map
                .entry((from, to))
                .and_modify(|t| *t = (*t).min(tokens))
                .or_insert(tokens);
        };

        // Firing-order rings (no auto-concurrency).
        for aid in graph.actor_ids() {
            let qa = q[aid];
            let b = base[aid.index()];
            for l in 0..qa {
                let next = (l + 1) % qa;
                let tokens = u64::from(next == 0);
                add_edge(b + l as usize, b + next as usize, tokens);
            }
        }

        // Token-level dependencies per channel.
        for (_, ch) in graph.channels() {
            let (p, c, d) = (ch.production(), ch.consumption(), ch.initial_tokens());
            let qa = q[ch.source()];
            let qb = q[ch.target()];
            let src_base = base[ch.source().index()];
            let dst_base = base[ch.target().index()];
            for l in 0..qa {
                for k in 1..=p {
                    // The (l·p + k)-th token produced in iteration 0 is the
                    // (d + l·p + k)-th token consumed overall.
                    let t = d + l * p + k;
                    let f0 = (t - 1) / c; // 0-based global consuming firing
                    let j = f0 % qb;
                    let delta = f0 / qb;
                    add_edge(src_base + l as usize, dst_base + j as usize, delta);
                }
            }
        }

        let mut edges: Vec<HsdfEdge> = edge_map
            .into_iter()
            .map(|((from, to), tokens)| HsdfEdge { from, to, tokens })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));
        Hsdf { nodes, edges, base }
    }

    /// Node index of copy `copy` of `actor`.
    pub fn node_of(&self, actor: ActorId, copy: u64) -> usize {
        self.base[actor.index()] + copy as usize
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Outgoing edges of every node, as an adjacency list of edge indices.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.from].push(i);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> (SdfGraph, RepetitionVector) {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        (g, q)
    }

    #[test]
    fn expansion_counts() {
        let (g, q) = example();
        let h = Hsdf::expand(&g, &q);
        assert_eq!(h.num_nodes(), 6);
        // Every node keeps its actor's execution time.
        let a = g.actor_by_name("a").unwrap();
        for copy in 0..3 {
            let n = h.nodes[h.node_of(a, copy)];
            assert_eq!(n.execution_time, 1);
            assert_eq!(n.actor, a);
            assert_eq!(n.copy, copy);
        }
    }

    #[test]
    fn ordering_rings_present() {
        let (g, q) = example();
        let h = Hsdf::expand(&g, &q);
        let a = g.actor_by_name("a").unwrap();
        let c = g.actor_by_name("c").unwrap();
        // a's ring: a0->a1 (0), a1->a2 (0), a2->a0 (1).
        let find = |from, to| h.edges.iter().find(|e| e.from == from && e.to == to);
        assert_eq!(find(h.node_of(a, 0), h.node_of(a, 1)).unwrap().tokens, 0);
        assert_eq!(find(h.node_of(a, 2), h.node_of(a, 0)).unwrap().tokens, 1);
        // Single-copy actor gets a 1-token self-loop.
        assert_eq!(find(h.node_of(c, 0), h.node_of(c, 0)).unwrap().tokens, 1);
    }

    #[test]
    fn channel_dependencies_example_alpha() {
        // α: a --2:3--> b, no initial tokens, q_a=3, q_b=2.
        // Tokens 1..=6; consuming firings (0-based): ⌈t/3⌉-1 → tokens 1-3
        // by b0, 4-6 by b1; all in iteration 0.
        let (g, q) = example();
        let h = Hsdf::expand(&g, &q);
        let a = g.actor_by_name("a").unwrap();
        let b = g.actor_by_name("b").unwrap();
        let find = |from, to| h.edges.iter().find(|e| e.from == from && e.to == to);
        // a0 produces tokens 1,2 → b0; a1 produces 3 → b0 and 4 → b1;
        // a2 produces 5,6 → b1.
        assert_eq!(find(h.node_of(a, 0), h.node_of(b, 0)).unwrap().tokens, 0);
        assert_eq!(find(h.node_of(a, 1), h.node_of(b, 0)).unwrap().tokens, 0);
        assert_eq!(find(h.node_of(a, 1), h.node_of(b, 1)).unwrap().tokens, 0);
        assert_eq!(find(h.node_of(a, 2), h.node_of(b, 1)).unwrap().tokens, 0);
        assert!(find(h.node_of(a, 0), h.node_of(b, 1)).is_none());
    }

    #[test]
    fn initial_tokens_shift_dependencies() {
        // x --1:1--> y with 1 initial token, q = (1, 1): the token produced
        // by x in iteration m is consumed by y in iteration m+1.
        let mut b = SdfGraph::builder("shift");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("c", x, 1, y, 1, 1).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        let h = Hsdf::expand(&g, &q);
        let e = h
            .edges
            .iter()
            .find(|e| e.from == h.node_of(x, 0) && e.to == h.node_of(y, 0))
            .unwrap();
        assert_eq!(e.tokens, 1);
    }

    #[test]
    fn homogeneous_graph_expands_to_itself_plus_rings() {
        let mut b = SdfGraph::builder("homog");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let q = RepetitionVector::compute(&g).unwrap();
        let h = Hsdf::expand(&g, &q);
        assert_eq!(h.num_nodes(), 2);
        // Edges: x self-ring, y self-ring, x->y with 0 tokens.
        assert_eq!(h.edges.len(), 3);
        let e = h
            .edges
            .iter()
            .find(|e| e.from == h.node_of(x, 0) && e.to == h.node_of(y, 0))
            .unwrap();
        assert_eq!(e.tokens, 0);
    }

    #[test]
    fn adjacency_covers_all_edges() {
        let (g, q) = example();
        let h = Hsdf::expand(&g, &q);
        let adj = h.adjacency();
        let total: usize = adj.iter().map(|v| v.len()).sum();
        assert_eq!(total, h.edges.len());
    }
}
