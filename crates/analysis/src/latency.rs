//! Latency analysis.
//!
//! The paper motivates its work with timing constraints "expressed as
//! throughput or latency constraints" (§1). This module measures the
//! latency side of a storage distribution: the time until the observed
//! actor produces its first result, and the spacing of its outputs in the
//! steady state (relevant for jitter-sensitive consumers such as the
//! display refresh of the paper's television example).

use crate::engine::{Capacities, Engine, FiringOutcome};
use crate::error::AnalysisError;
use crate::throughput::ExplorationLimits;
use buffy_graph::{ActorId, SdfGraph, StorageDistribution};

/// Latency metrics of the self-timed execution under one storage
/// distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReport {
    /// Time at which the observed actor completes its first firing
    /// (`None` when the execution deadlocks before it ever fires).
    pub initial_latency: Option<u64>,
    /// Shortest gap between consecutive completions in the periodic phase
    /// (`None` on deadlock or when the actor fires at most once per
    /// period).
    pub min_output_interval: Option<u64>,
    /// Longest gap between consecutive completions in the periodic phase.
    pub max_output_interval: Option<u64>,
    /// Whether the execution deadlocks.
    pub deadlocked: bool,
}

impl LatencyReport {
    /// Output jitter: the difference between the longest and shortest
    /// inter-output gaps of the periodic phase (0 for perfectly regular
    /// output, `None` on deadlock).
    pub fn jitter(&self) -> Option<u64> {
        Some(self.max_output_interval? - self.min_output_interval?)
    }
}

/// Measures [`LatencyReport`] for `observed` under `dist`.
///
/// The periodic phase is identified exactly as in the throughput analysis
/// (first recurrence of the timed state); the output intervals are
/// measured over one full period.
///
/// # Errors
///
/// Same as [`crate::throughput::throughput`].
///
/// # Examples
///
/// ```
/// use buffy_analysis::{latency, ExplorationLimits};
/// use buffy_graph::{SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
/// let r = latency(&g, &StorageDistribution::from_capacities(vec![4, 2]), c,
///                 ExplorationLimits::default())?;
/// assert_eq!(r.initial_latency, Some(9)); // c's first output at t = 9
/// assert_eq!(r.max_output_interval, Some(7)); // one output per period
/// # Ok(())
/// # }
/// ```
pub fn latency(
    graph: &SdfGraph,
    dist: &StorageDistribution,
    observed: ActorId,
    limits: ExplorationLimits,
) -> Result<LatencyReport, AnalysisError> {
    let mut engine = Engine::new(graph, Capacities::from_distribution(dist));
    let initial = engine.start_initial()?;

    let mut completions: Vec<u64> = Vec::new();
    let record = |completions: &mut Vec<u64>, events: &crate::engine::FiringEvents, time: u64| {
        for _ in events.completed.iter().filter(|&&(a, _)| a == observed) {
            completions.push(time);
        }
    };
    record(&mut completions, &initial, 0);

    // Track state recurrence to delimit the periodic phase.
    let mut index: std::collections::HashMap<crate::engine::SdfState, u64> =
        std::collections::HashMap::new();
    index.insert(engine.state().clone(), 0);

    let (entry, end) = loop {
        if engine.time() >= limits.max_steps || index.len() > limits.max_states {
            let kind = if engine.time() >= limits.max_steps {
                crate::error::LimitKind::Steps
            } else {
                crate::error::LimitKind::States
            };
            return Err(limits.exceeded(kind, engine.capacities()));
        }
        match engine.step()? {
            FiringOutcome::Deadlock => {
                return Ok(LatencyReport {
                    initial_latency: completions.first().copied(),
                    min_output_interval: None,
                    max_output_interval: None,
                    deadlocked: true,
                });
            }
            FiringOutcome::Progress(ev) => {
                record(&mut completions, &ev, engine.time());
                if let Some(&entry) = index.get(engine.state()) {
                    break (entry, engine.time());
                }
                index.insert(engine.state().clone(), engine.time());
            }
        }
    };

    // Completions within [entry, end) repeat with period end − entry.
    let period = end - entry;
    let periodic: Vec<u64> = completions
        .iter()
        .copied()
        .filter(|&t| t > entry && t <= end)
        .collect();
    let (mut min_gap, mut max_gap) = (None, None);
    if !periodic.is_empty() {
        // Wrap around the cycle: the gap from the last completion of one
        // period to the first of the next.
        let mut gaps = Vec::with_capacity(periodic.len());
        for w in periodic.windows(2) {
            gaps.push(w[1] - w[0]);
        }
        gaps.push(periodic[0] + period - periodic[periodic.len() - 1]);
        min_gap = gaps.iter().copied().min();
        max_gap = gaps.iter().copied().max();
    }

    Ok(LatencyReport {
        initial_latency: completions.first().copied(),
        min_output_interval: min_gap,
        max_output_interval: max_gap,
        deadlocked: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example_latency_matches_trace() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let r = latency(
            &g,
            &StorageDistribution::from_capacities(vec![4, 2]),
            c,
            ExplorationLimits::default(),
        )
        .unwrap();
        assert_eq!(r.initial_latency, Some(9));
        assert_eq!(r.min_output_interval, Some(7));
        assert_eq!(r.max_output_interval, Some(7));
        assert_eq!(r.jitter(), Some(0));
        assert!(!r.deadlocked);
    }

    #[test]
    fn bigger_buffers_do_not_hurt_initial_latency_here() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let tight = latency(
            &g,
            &StorageDistribution::from_capacities(vec![4, 2]),
            c,
            ExplorationLimits::default(),
        )
        .unwrap();
        let roomy = latency(
            &g,
            &StorageDistribution::from_capacities(vec![7, 3]),
            c,
            ExplorationLimits::default(),
        )
        .unwrap();
        assert!(roomy.initial_latency <= tight.initial_latency);
    }

    #[test]
    fn deadlock_reported() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let r = latency(
            &g,
            &StorageDistribution::from_capacities(vec![4, 1]),
            c,
            ExplorationLimits::default(),
        )
        .unwrap();
        assert!(r.deadlocked);
        assert_eq!(r.initial_latency, None);
        assert_eq!(r.jitter(), None);
    }

    #[test]
    fn irregular_output_has_jitter() {
        // a (exec 1) produces 2 per firing; sink consumes 1 (exec 1) —
        // with capacity 2 the sink drains in bursts: intervals alternate.
        let mut b = SdfGraph::builder("burst");
        let s = b.actor("s", 2);
        let t = b.actor("t", 1);
        b.channel("ch", s, 2, t, 1).unwrap();
        let g = b.build().unwrap();
        let t_id = g.actor_by_name("t").unwrap();
        let r = latency(
            &g,
            &StorageDistribution::from_capacities(vec![2]),
            t_id,
            ExplorationLimits::default(),
        )
        .unwrap();
        assert!(!r.deadlocked);
        // Two outputs per period, back to back, then a refill gap.
        assert_eq!(r.min_output_interval, Some(1));
        assert!(r.max_output_interval.unwrap() > 1);
        assert!(r.jitter().unwrap() > 0);
    }

    #[test]
    fn multi_output_period_intervals_sum_to_period() {
        let g = example();
        let a = g.actor_by_name("a").unwrap();
        // a fires 3 times per 7-step period.
        let r = latency(
            &g,
            &StorageDistribution::from_capacities(vec![4, 2]),
            a,
            ExplorationLimits::default(),
        )
        .unwrap();
        assert!(r.min_output_interval.unwrap() >= 1);
        assert!(r.max_output_interval.unwrap() <= 7);
    }
}
