//! The generic dataflow model interface behind the unified kernel.
//!
//! The paper's method — timed self-timed execution, reduced state-space
//! cycle detection, storage-distribution exploration — never looks inside
//! a model beyond a small set of questions: which actors and channels
//! exist, how many tokens one firing consumes and produces, how long a
//! firing takes, how firings repeat, and what the analytical bounds are.
//! [`DataflowSemantics`] captures exactly those questions so that the
//! execution engine ([`DataflowEngine`](crate::DataflowEngine)), the
//! throughput analysis and the exploration drivers in `buffy-core` can be
//! written once and instantiated for SDF, CSDF, or any future model class.
//!
//! A model presents each actor as a cyclic sequence of *phases*
//! (`0 .. num_phases`): every firing executes the actor's current phase
//! and advances it by one, wrapping around. Plain SDF is the single-phase
//! special case, which is why the unified kernel reproduces the SDF
//! analyses bit for bit (see the cross-model property tests).

use crate::error::AnalysisError;
use buffy_graph::{gcd_u64, ActorId, ChannelId, Rational, RepetitionVector, SdfGraph};

/// What a dataflow model must provide for the unified analysis kernel.
///
/// Channel and actor identifiers index dense arrays
/// (`0 .. num_channels`, `0 .. num_actors`), exactly as in
/// [`SdfGraph`]. Production rates are indexed by the *source* actor's
/// phase, consumption rates by the *target* actor's phase.
pub trait DataflowSemantics {
    /// Number of actors in the model.
    fn num_actors(&self) -> usize;

    /// Number of channels in the model.
    fn num_channels(&self) -> usize;

    /// Display name of `actor`.
    fn actor_name(&self, actor: ActorId) -> &str;

    /// Display name of `channel`.
    fn channel_name(&self, channel: ChannelId) -> &str;

    /// Producing actor of `channel`.
    fn channel_source(&self, channel: ChannelId) -> ActorId;

    /// Consuming actor of `channel`.
    fn channel_target(&self, channel: ChannelId) -> ActorId;

    /// Tokens stored on `channel` before execution starts.
    fn initial_tokens(&self, channel: ChannelId) -> u64;

    /// Channels consumed by `actor`.
    fn input_channels(&self, actor: ActorId) -> &[ChannelId];

    /// Channels produced by `actor`.
    fn output_channels(&self, actor: ActorId) -> &[ChannelId];

    /// Number of firing phases of `actor` (1 for plain SDF).
    fn num_phases(&self, actor: ActorId) -> u32;

    /// Execution time of `actor` in `phase`.
    fn execution_time(&self, actor: ActorId, phase: u32) -> u64;

    /// Tokens produced on `channel` by one firing of its source in
    /// `phase` (the source actor's phase).
    fn production(&self, channel: ChannelId, phase: u32) -> u64;

    /// Tokens consumed from `channel` by one firing of its target in
    /// `phase` (the target actor's phase).
    fn consumption(&self, channel: ChannelId, phase: u32) -> u64;

    /// Tokens produced on `channel` over one full phase cycle of its
    /// source.
    fn cycle_production(&self, channel: ChannelId) -> u64 {
        let n = self.num_phases(self.channel_source(channel));
        (0..n).map(|p| self.production(channel, p)).sum()
    }

    /// Tokens consumed from `channel` over one full phase cycle of its
    /// target.
    fn cycle_consumption(&self, channel: ChannelId) -> u64 {
        let n = self.num_phases(self.channel_target(channel));
        (0..n).map(|p| self.consumption(channel, p)).sum()
    }

    /// The default actor whose firings define the throughput.
    fn default_observed_actor(&self) -> ActorId;

    /// Repetition counts in *phase cycles* per actor: the minimal
    /// non-trivial solution of the balance equations at cycle
    /// granularity (for SDF this is the ordinary repetition vector).
    ///
    /// # Errors
    ///
    /// An error when the model is inconsistent.
    fn repetition_cycles(&self) -> Result<Vec<u64>, AnalysisError>;

    /// The maximal achievable throughput of `observed` under unbounded
    /// storage (MCM analysis on the homogeneous expansion).
    ///
    /// # Errors
    ///
    /// An error when the model is inconsistent or not live.
    fn maximal_throughput(&self, observed: ActorId) -> Result<Rational, AnalysisError>;

    /// A per-channel capacity below which the model certainly deadlocks
    /// (the exploration never tries smaller capacities).
    fn channel_lower_bound(&self, channel: ChannelId) -> u64;

    /// The granularity at which growing `channel` can change behaviour;
    /// the exploration only tries capacities `lower_bound + k * step`.
    fn channel_step(&self, channel: ChannelId) -> u64;

    /// Power drawn per time step while `actor` is firing.
    ///
    /// Zero (the default) means the model carries no power annotation;
    /// the energy objective of such a model is identically zero.
    fn active_power(&self, _actor: ActorId) -> u64 {
        0
    }

    /// Power drawn per time step while `actor` sits idle between firings.
    ///
    /// Never exceeds [`active_power`](Self::active_power) for models
    /// built through the validated constructors.
    fn idle_power(&self, _actor: ActorId) -> u64 {
        0
    }
}

/// The buffer minimal for a live channel (\[ALP97\]/\[Mur96\], paper §8):
/// `prd + cns − gcd(prd, cns) + tokens mod gcd(prd, cns)`, and never
/// below the initial tokens already stored.
///
/// ```
/// assert_eq!(buffy_analysis::bmlb(2, 3, 0), 4);
/// assert_eq!(buffy_analysis::bmlb(1, 2, 0), 2);
/// ```
pub fn bmlb(production: u64, consumption: u64, initial_tokens: u64) -> u64 {
    let g = gcd_u64(production, consumption);
    let bound = production + consumption - g + initial_tokens % g;
    bound.max(initial_tokens)
}

/// The capacity granularity of a channel with scalar rates: `gcd(prd,
/// cns)` — capacities between multiples behave like the next multiple
/// down (paper §8).
pub fn rate_step(production: u64, consumption: u64) -> u64 {
    gcd_u64(production, consumption)
}

impl DataflowSemantics for SdfGraph {
    fn num_actors(&self) -> usize {
        SdfGraph::num_actors(self)
    }

    fn num_channels(&self) -> usize {
        SdfGraph::num_channels(self)
    }

    fn actor_name(&self, actor: ActorId) -> &str {
        self.actor(actor).name()
    }

    fn channel_name(&self, channel: ChannelId) -> &str {
        self.channel(channel).name()
    }

    fn channel_source(&self, channel: ChannelId) -> ActorId {
        self.channel(channel).source()
    }

    fn channel_target(&self, channel: ChannelId) -> ActorId {
        self.channel(channel).target()
    }

    fn initial_tokens(&self, channel: ChannelId) -> u64 {
        self.channel(channel).initial_tokens()
    }

    fn input_channels(&self, actor: ActorId) -> &[ChannelId] {
        SdfGraph::input_channels(self, actor)
    }

    fn output_channels(&self, actor: ActorId) -> &[ChannelId] {
        SdfGraph::output_channels(self, actor)
    }

    fn num_phases(&self, _actor: ActorId) -> u32 {
        1
    }

    fn execution_time(&self, actor: ActorId, _phase: u32) -> u64 {
        self.actor(actor).execution_time()
    }

    fn production(&self, channel: ChannelId, _phase: u32) -> u64 {
        self.channel(channel).production()
    }

    fn consumption(&self, channel: ChannelId, _phase: u32) -> u64 {
        self.channel(channel).consumption()
    }

    fn default_observed_actor(&self) -> ActorId {
        SdfGraph::default_observed_actor(self)
    }

    fn repetition_cycles(&self) -> Result<Vec<u64>, AnalysisError> {
        let q = RepetitionVector::compute(self)?;
        Ok(q.as_slice().to_vec())
    }

    fn maximal_throughput(&self, observed: ActorId) -> Result<Rational, AnalysisError> {
        crate::mcm::maximal_throughput(self, observed)
    }

    fn channel_lower_bound(&self, channel: ChannelId) -> u64 {
        let ch = self.channel(channel);
        bmlb(ch.production(), ch.consumption(), ch.initial_tokens())
    }

    fn channel_step(&self, channel: ChannelId) -> u64 {
        let ch = self.channel(channel);
        rate_step(ch.production(), ch.consumption())
    }

    fn active_power(&self, actor: ActorId) -> u64 {
        self.actor(actor).active_power()
    }

    fn idle_power(&self, actor: ActorId) -> u64 {
        self.actor(actor).idle_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sdf_is_the_single_phase_case() {
        let g = example();
        let a = g.actor_by_name("a").unwrap();
        let alpha = g.channel_by_name("alpha").unwrap();
        let m: &dyn DataflowSemantics = &g;
        assert_eq!(m.num_phases(a), 1);
        assert_eq!(m.execution_time(a, 0), 1);
        assert_eq!(m.production(alpha, 0), 2);
        assert_eq!(m.consumption(alpha, 0), 3);
        assert_eq!(m.cycle_production(alpha), 2);
        assert_eq!(m.cycle_consumption(alpha), 3);
        assert_eq!(m.channel_lower_bound(alpha), 4);
        assert_eq!(m.channel_step(alpha), 1);
    }

    #[test]
    fn sdf_repetition_cycles_match_the_repetition_vector() {
        let g = example();
        assert_eq!(g.repetition_cycles().unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn bmlb_respects_initial_tokens() {
        // 4 + 2 − 2 + 9 mod 2 = 5, but 9 tokens are already stored.
        assert_eq!(bmlb(4, 2, 9), 9);
        assert_eq!(bmlb(4, 2, 1), 5);
        assert_eq!(rate_step(4, 2), 2);
    }
}
