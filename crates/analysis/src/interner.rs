//! State interning for the cycle-detection state stores.
//!
//! The reduced-state-space analyses (paper §7) detect periodicity by
//! looking every visited state up in a hash index. With an owned-key
//! `HashMap` that means cloning the full state (token, clock and phase
//! vectors) for *every* lookup key and re-hashing it with SipHash — pure
//! overhead on the evaluator hot path, where millions of states flow
//! through long executions.
//!
//! [`StateStore`] replaces that pattern with an *arena + hash index*:
//! states live once in an insertion-ordered arena, the index is an
//! open-addressed table of `(hash, arena index)` pairs, and lookups probe
//! with a caller-computed hash and an equality closure over the arena
//! entry — so a state is hashed once and cloned only when it is actually
//! inserted. Arena indices double as the discovery order the analyses
//! already use for cycle arithmetic.
//!
//! Hashing uses [`FxHasher`], a hand-rolled Fx-style multiply-rotate
//! hasher (the FNV-lineage hash used by rustc): deterministic across
//! runs and threads, no external dependency, and much cheaper than
//! SipHash on the short `u64`/`u32` vectors that make up a
//! [`DataflowState`](crate::DataflowState).

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier of the Fx hash (the 64-bit golden-ratio constant used
/// by rustc's `FxHasher`).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher in the FNV/Fx lineage.
///
/// Word-at-a-time multiply-rotate hashing; identical results on every
/// run, platform and thread (no random keys), which the exploration
/// runtime relies on for reproducible sharding decisions.
///
/// Not DoS-resistant — only use for interned analysis state and memo
/// caches over trusted, internally generated keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s, for plugging the
/// Fx hash into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes any `Hash` value with the [`FxHasher`].
///
/// ```
/// use buffy_analysis::fx_hash;
/// assert_eq!(fx_hash(&[4u64, 2]), fx_hash(&[4u64, 2]));
/// assert_ne!(fx_hash(&[4u64, 2]), fx_hash(&[2u64, 4]));
/// ```
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Outcome of [`StateStore::intern_with`]: the arena index of the state,
/// and whether this call inserted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interned {
    /// The state was already stored at this arena index.
    Existing(usize),
    /// The state was inserted fresh at this arena index.
    Inserted(usize),
}

impl Interned {
    /// The arena index, regardless of whether the call inserted.
    pub fn index(&self) -> usize {
        match *self {
            Interned::Existing(i) | Interned::Inserted(i) => i,
        }
    }
}

/// Number of probe-length tally bins kept by [`ProbeStats`]: bin `i`
/// counts probes that inspected `i + 1` slots; the last bin aggregates
/// everything longer.
pub const PROBE_BINS: usize = 32;

/// Flat probe statistics of a [`StateStore`]'s interning path.
///
/// Counted with plain (non-atomic) integer adds on every
/// [`StateStore::intern_with`] call — cheap enough to stay always on,
/// deterministic, and folded into telemetry histograms only at the end
/// of an analysis (when a recorder is installed).
#[derive(Debug, Clone, Copy)]
pub struct ProbeStats {
    /// Number of interning lookups performed.
    pub lookups: u64,
    /// Total slots inspected across all lookups (1 per direct hit).
    pub probes: u64,
    /// Longest single probe sequence seen.
    pub max_probe: u64,
    /// Probe-length tally; see [`PROBE_BINS`] for the binning.
    pub tally: [u64; PROBE_BINS],
}

impl Default for ProbeStats {
    fn default() -> Self {
        ProbeStats {
            lookups: 0,
            probes: 0,
            max_probe: 0,
            tally: [0; PROBE_BINS],
        }
    }
}

impl ProbeStats {
    #[inline]
    fn record(&mut self, len: u64) {
        self.lookups += 1;
        self.probes += len;
        if len > self.max_probe {
            self.max_probe = len;
        }
        self.tally[(len as usize).min(PROBE_BINS) - 1] += 1;
    }
}

/// One slot of the open-addressed index: the key's full hash and the
/// arena index plus one (0 marks an empty slot).
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    index_plus_one: usize,
}

const EMPTY: Slot = Slot {
    hash: 0,
    index_plus_one: 0,
};

/// An insertion-ordered arena of states with an open-addressed hash
/// index.
///
/// Lookups take a caller-computed hash and an equality closure, so a
/// probe never constructs (or clones) the stored type; full hashes are
/// cached in the table, so stored states are never re-hashed — not even
/// when the table grows.
///
/// ```
/// use buffy_analysis::{fx_hash, Interned, StateStore};
///
/// let mut store: StateStore<Vec<u64>> = StateStore::new();
/// let probe = vec![1u64, 2, 3];
/// let h = fx_hash(&probe);
/// assert_eq!(
///     store.intern_with(h, |s| *s == probe, || probe.clone()),
///     Interned::Inserted(0)
/// );
/// assert_eq!(
///     store.intern_with(h, |s| *s == probe, || probe.clone()),
///     Interned::Existing(0)
/// );
/// assert_eq!(store.items(), &[vec![1u64, 2, 3]]);
/// ```
#[derive(Debug, Clone)]
pub struct StateStore<T> {
    items: Vec<T>,
    table: Vec<Slot>,
    /// `table.len() - 1`; the table length is always a power of two.
    mask: usize,
    probes: ProbeStats,
}

impl<T> Default for StateStore<T> {
    fn default() -> Self {
        StateStore::new()
    }
}

impl<T> StateStore<T> {
    /// Creates an empty store.
    pub fn new() -> StateStore<T> {
        StateStore::with_capacity(0)
    }

    /// Creates an empty store sized for roughly `capacity` states.
    pub fn with_capacity(capacity: usize) -> StateStore<T> {
        let table_len = (capacity * 8 / 7 + 1).next_power_of_two().max(16);
        StateStore {
            items: Vec::with_capacity(capacity),
            table: vec![EMPTY; table_len],
            mask: table_len - 1,
            probes: ProbeStats::default(),
        }
    }

    /// Probe statistics of every [`Self::intern_with`] call so far.
    pub fn probe_stats(&self) -> &ProbeStats {
        &self.probes
    }

    /// Empties the store for reuse, keeping its allocations: the arena is
    /// cleared, the table is zeroed in place, and the probe statistics
    /// restart. The next analysis pays no allocation until it outgrows
    /// whatever this store already holds.
    pub fn reset(&mut self) {
        self.reset_with_capacity(0);
    }

    /// [`Self::reset`] plus a capacity hint: after the call the table can
    /// absorb roughly `capacity` states without growing (and rehashing).
    /// The hint only pre-sizes memory — interning results are identical
    /// for any hint, including zero.
    pub fn reset_with_capacity(&mut self, capacity: usize) {
        self.items.clear();
        self.probes = ProbeStats::default();
        let needed = (capacity * 8 / 7 + 1).next_power_of_two().max(16);
        if needed > self.table.len() {
            self.table = vec![EMPTY; needed];
            self.mask = needed - 1;
        } else {
            self.table.fill(EMPTY);
        }
        if capacity > self.items.capacity() {
            self.items.reserve(capacity);
        }
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The interned states in insertion (discovery) order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the store, returning the arena in insertion order.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Looks up a state by `hash` and equality closure without inserting.
    pub fn get(&self, hash: u64, mut matches: impl FnMut(&T) -> bool) -> Option<usize> {
        let mut pos = (hash as usize) & self.mask;
        loop {
            let slot = self.table[pos];
            if slot.index_plus_one == 0 {
                return None;
            }
            let idx = slot.index_plus_one - 1;
            if slot.hash == hash && matches(&self.items[idx]) {
                return Some(idx);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Looks the state up by `hash` and the equality closure; if absent,
    /// materializes it with `make` and inserts it. Returns the arena
    /// index and whether this call inserted.
    ///
    /// `matches` must implement the same equivalence the hash was
    /// computed under: equal states must have equal hashes.
    pub fn intern_with(
        &mut self,
        hash: u64,
        mut matches: impl FnMut(&T) -> bool,
        make: impl FnOnce() -> T,
    ) -> Interned {
        let mut pos = (hash as usize) & self.mask;
        let mut probe_len = 1u64;
        loop {
            let slot = self.table[pos];
            if slot.index_plus_one == 0 {
                break;
            }
            let idx = slot.index_plus_one - 1;
            if slot.hash == hash && matches(&self.items[idx]) {
                self.probes.record(probe_len);
                return Interned::Existing(idx);
            }
            pos = (pos + 1) & self.mask;
            probe_len += 1;
        }
        self.probes.record(probe_len);
        let idx = self.items.len();
        self.items.push(make());
        self.table[pos] = Slot {
            hash,
            index_plus_one: idx + 1,
        };
        // Keep the load factor below 7/8 so probe chains stay short.
        if (self.items.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        Interned::Inserted(idx)
    }

    /// Doubles the table, re-placing entries from their cached hashes
    /// (stored states are not re-hashed).
    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![EMPTY; new_len]);
        self.mask = new_len - 1;
        for slot in old {
            if slot.index_plus_one == 0 {
                continue;
            }
            let mut pos = (slot.hash as usize) & self.mask;
            while self.table[pos].index_plus_one != 0 {
                pos = (pos + 1) & self.mask;
            }
            self.table[pos] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let a = fx_hash(&vec![1u64, 2, 3]);
        let b = fx_hash(&vec![1u64, 2, 3]);
        assert_eq!(a, b);
        // Distinct short vectors should essentially never collide.
        let mut seen = std::collections::HashSet::new();
        for x in 0..64u64 {
            for y in 0..64u64 {
                seen.insert(fx_hash(&vec![x, y]));
            }
        }
        assert_eq!(seen.len(), 64 * 64);
    }

    #[test]
    fn intern_assigns_dense_indices_in_discovery_order() {
        let mut store: StateStore<u64> = StateStore::new();
        for v in [10u64, 20, 30, 20, 10, 40] {
            store.intern_with(fx_hash(&v), |s| *s == v, || v);
        }
        assert_eq!(store.items(), &[10, 20, 30, 40]);
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(fx_hash(&30u64), |s| *s == 30), Some(2));
        assert_eq!(store.get(fx_hash(&99u64), |s| *s == 99), None);
    }

    #[test]
    fn grows_past_many_entries_and_matches_a_hashmap() {
        let mut store: StateStore<(u64, u64)> = StateStore::new();
        let mut oracle: HashMap<(u64, u64), usize> = HashMap::new();
        // Insert with repeats in a fixed pseudo-random order.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x % 512, (x >> 32) % 7);
            let h = fx_hash(&key);
            let next = oracle.len();
            let expected = *oracle.entry(key).or_insert(next);
            let got = store.intern_with(h, |s| *s == key, || key);
            assert_eq!(got.index(), expected);
        }
        assert_eq!(store.len(), oracle.len());
        for (key, &idx) in &oracle {
            assert_eq!(store.items()[idx], *key);
        }
    }

    #[test]
    fn probe_stats_count_every_intern() {
        let mut store: StateStore<u64> = StateStore::new();
        // Two direct-hit inserts at non-adjacent slots, then a re-lookup.
        store.intern_with(1, |s| *s == 1, || 1);
        store.intern_with(5, |s| *s == 5, || 5);
        store.intern_with(1, |s| *s == 1, || 1);
        // Forced collision: hash 1 again with a different key probes past
        // the occupied slot.
        store.intern_with(1, |s| *s == 9, || 9);
        let stats = store.probe_stats();
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.max_probe, 2);
        assert_eq!(stats.probes, 1 + 1 + 1 + 2);
        assert_eq!(stats.tally[0], 3);
        assert_eq!(stats.tally[1], 1);
    }

    #[test]
    fn reset_reuses_allocations_and_reproduces_results() {
        let mut store: StateStore<u64> = StateStore::new();
        for v in 0..100u64 {
            store.intern_with(fx_hash(&v), |s| *s == v, || v);
        }
        let grown_table = store.table.len();
        assert!(grown_table > 16, "store never grew");
        store.reset();
        assert!(store.is_empty());
        assert_eq!(store.probe_stats().lookups, 0);
        // The table keeps its grown size; re-interning reproduces the same
        // indices as a fresh store would.
        assert_eq!(store.table.len(), grown_table);
        for v in [7u64, 3, 7] {
            store.intern_with(fx_hash(&v), |s| *s == v, || v);
        }
        assert_eq!(store.items(), &[7, 3]);
        assert_eq!(store.get(fx_hash(&3u64), |s| *s == 3), Some(1));
        assert_eq!(store.get(fx_hash(&99u64), |s| *s == 99), None);
    }

    #[test]
    fn reset_capacity_hint_presizes_without_changing_results() {
        let mut fresh: StateStore<u64> = StateStore::new();
        let mut hinted: StateStore<u64> = StateStore::new();
        hinted.reset_with_capacity(1000);
        let table_before = hinted.table.len();
        assert!(table_before >= 1024);
        for v in 0..500u64 {
            fresh.intern_with(fx_hash(&v), |s| *s == v, || v);
            hinted.intern_with(fx_hash(&v), |s| *s == v, || v);
        }
        // Identical arenas and lookups; the hinted store never grew.
        assert_eq!(fresh.items(), hinted.items());
        assert_eq!(hinted.table.len(), table_before);
        // A smaller hint never shrinks an already-grown table.
        hinted.reset_with_capacity(1);
        assert_eq!(hinted.table.len(), table_before);
        assert!(hinted.is_empty());
    }

    #[test]
    fn colliding_hashes_are_separated_by_equality() {
        // Force both keys into the same slot by lying about the hash;
        // the equality closure must still distinguish them.
        let mut store: StateStore<u64> = StateStore::new();
        assert_eq!(
            store.intern_with(7, |s| *s == 1, || 1),
            Interned::Inserted(0)
        );
        assert_eq!(
            store.intern_with(7, |s| *s == 2, || 2),
            Interned::Inserted(1)
        );
        assert_eq!(
            store.intern_with(7, |s| *s == 1, || 1),
            Interned::Existing(0)
        );
        assert_eq!(
            store.intern_with(7, |s| *s == 2, || 2),
            Interned::Existing(1)
        );
    }
}
