//! Exact energy-per-iteration analysis over the periodic schedule.
//!
//! Following Karim, Falk & Teich ("Exploration of Energy and Throughput
//! Tradeoffs for Dataflow Networks"), each actor draws `active_power` per
//! time step while firing and `idle_power` per time step in between. With
//! self-timed execution and no auto-concurrency the busy time of an actor
//! over one graph iteration is fixed by the repetition vector — it does
//! not depend on the storage distribution — so the energy of one iteration
//! splits into a constant work term and an idle term proportional to the
//! iteration period:
//!
//! ```text
//! E_iter(t) = Σ_a busy_a·(active_a − idle_a)  +  (Σ_a idle_a) · T_iter(t)
//! T_iter(t) = obs_firings / t
//! ```
//!
//! where `busy_a = q_a · Σ_phase exec(a, phase)` (repetition count times
//! the phase-cycle execution time), `obs_firings` is the number of firings
//! of the observed actor per iteration and `t` the observed throughput.
//! Since `T_iter ≥ busy_a` for every actor of a feasible schedule, the
//! energy is nonnegative, and it is *monotone non-increasing in
//! throughput*: faster schedules waste less idle energy. That monotonicity
//! is what keeps throughput-only pruning sound when energy joins the
//! objective space (see `buffy-core`'s prune module).
//!
//! [`EnergyModel::from_semantics`] precomputes the three sums once per
//! exploration; [`EnergyModel::energy_per_iteration`] then maps any
//! evaluated throughput to an exact rational energy without touching the
//! state space again. [`schedule_energy_per_iteration`] computes the same
//! quantity directly from an extracted [`Schedule`](crate::Schedule) and
//! serves as the independent cross-check oracle in the test suite.

use crate::error::AnalysisError;
use crate::schedule::Schedule;
use crate::semantics::DataflowSemantics;
use buffy_graph::{ActorId, GraphError, Rational, SdfGraph};

/// Precomputed energy coefficients of a dataflow model (see the module
/// documentation for the closed form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyModel {
    /// `Σ_a busy_a · active_a` — energy spent actually firing, per iteration.
    work_energy: i128,
    /// `Σ_a busy_a · idle_a` — idle energy double-counted by the period
    /// term, subtracted back out.
    idle_busy: i128,
    /// `Σ_a idle_a` — idle power of the whole graph per time step.
    idle_total: i128,
    /// Firings of the observed actor per graph iteration.
    obs_firings: i128,
}

impl EnergyModel {
    /// Builds the model's energy coefficients from its power annotations
    /// and repetition vector, observing `observed`.
    ///
    /// # Errors
    ///
    /// Propagates the balance-equation error of an inconsistent model;
    /// adversarial power/execution-time annotations whose coefficient
    /// sums exceed `i128` surface as
    /// [`GraphError::ArithmeticOverflow`] instead of wrapping.
    pub fn from_semantics<M: DataflowSemantics + ?Sized>(
        model: &M,
        observed: ActorId,
    ) -> Result<EnergyModel, AnalysisError> {
        let overflow = || {
            AnalysisError::Graph(GraphError::ArithmeticOverflow {
                operation: "energy coefficient accumulation".to_string(),
            })
        };
        let cycles = model.repetition_cycles()?;
        let mut work_energy: i128 = 0;
        let mut idle_busy: i128 = 0;
        let mut idle_total: i128 = 0;
        for (index, &cycle_count) in cycles.iter().enumerate() {
            let actor = ActorId::new(index);
            let mut cycle_time: i128 = 0;
            for p in 0..model.num_phases(actor) {
                cycle_time = cycle_time
                    .checked_add(model.execution_time(actor, p) as i128)
                    .ok_or_else(overflow)?;
            }
            let busy = (cycle_count as i128)
                .checked_mul(cycle_time)
                .ok_or_else(overflow)?;
            work_energy = busy
                .checked_mul(model.active_power(actor) as i128)
                .and_then(|e| work_energy.checked_add(e))
                .ok_or_else(overflow)?;
            idle_busy = busy
                .checked_mul(model.idle_power(actor) as i128)
                .and_then(|e| idle_busy.checked_add(e))
                .ok_or_else(overflow)?;
            idle_total = idle_total
                .checked_add(model.idle_power(actor) as i128)
                .ok_or_else(overflow)?;
        }
        let obs_firings = (cycles[observed.index()] as i128)
            .checked_mul(model.num_phases(observed) as i128)
            .ok_or_else(overflow)?;
        Ok(EnergyModel {
            work_energy,
            idle_busy,
            idle_total,
            obs_firings,
        })
    }

    /// Whether every actor carries zero power: the energy objective of
    /// such a model is identically zero.
    pub fn is_trivial(&self) -> bool {
        self.work_energy == 0 && self.idle_busy == 0 && self.idle_total == 0
    }

    /// Exact energy of one graph iteration at observed throughput
    /// `throughput`; zero for deadlocked (zero-throughput) executions,
    /// whose iterations never complete.
    ///
    /// # Panics
    ///
    /// Panics when the exact rational arithmetic overflows `i128`; use
    /// [`checked_energy_per_iteration`](Self::checked_energy_per_iteration)
    /// where a panic must not escape.
    pub fn energy_per_iteration(&self, throughput: Rational) -> Rational {
        if throughput <= Rational::ZERO {
            return Rational::ZERO;
        }
        let period = Rational::new(self.obs_firings, 1) / throughput;
        Rational::new(self.work_energy - self.idle_busy, 1)
            + Rational::new(self.idle_total, 1) * period
    }

    /// [`energy_per_iteration`](Self::energy_per_iteration) through the
    /// checked [`Rational`] paths: `None` instead of a panic when the
    /// exact arithmetic overflows `i128`.
    pub fn checked_energy_per_iteration(&self, throughput: Rational) -> Option<Rational> {
        if throughput <= Rational::ZERO {
            return Some(Rational::ZERO);
        }
        let period = Rational::from_integer(self.obs_firings).checked_mul(&throughput.recip())?;
        let constant = self.work_energy.checked_sub(self.idle_busy)?;
        Rational::from_integer(self.idle_total)
            .checked_mul(&period)?
            .checked_add(&Rational::from_integer(constant))
    }
}

/// Energy of one graph iteration computed directly from an extracted
/// schedule: active energy over the periodic firings plus idle energy
/// over the remainder of the period, scaled down to a single iteration
/// by the observed actor's firing count. `None` when the schedule
/// deadlocks.
///
/// This walks the recorded firings rather than the repetition vector and
/// is the independent oracle [`EnergyModel`] is validated against.
pub fn schedule_energy_per_iteration(
    graph: &SdfGraph,
    schedule: &Schedule,
    observed: ActorId,
) -> Option<Rational> {
    let period = schedule.period()? as i128;
    let mut busy = vec![0i128; graph.num_actors()];
    for f in schedule.periodic_firings() {
        busy[f.actor.index()] += (f.end - f.start) as i128;
    }
    let mut energy = Rational::ZERO;
    for (aid, actor) in graph.actors() {
        let b = busy[aid.index()];
        energy += Rational::new(b, 1) * Rational::new(actor.active_power() as i128, 1);
        energy += Rational::new(period - b, 1) * Rational::new(actor.idle_power() as i128, 1);
    }
    // The periodic phase may span several graph iterations; one iteration
    // fires the observed actor exactly `q[observed]` times.
    let obs_in_period = schedule
        .periodic_firings()
        .filter(|f| f.actor == observed)
        .count() as i128;
    let q = buffy_graph::RepetitionVector::compute(graph).ok()?;
    let obs_per_iteration = q.get(observed) as i128;
    if obs_in_period == 0 || obs_per_iteration == 0 {
        return None;
    }
    Some(energy * Rational::new(obs_per_iteration, obs_in_period))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{throughput, ExplorationLimits};
    use buffy_graph::{SdfGraph, StorageDistribution};

    fn powered_example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor_with_power("a", 1, 10, 2).unwrap();
        let bb = b.actor_with_power("b", 2, 6, 1).unwrap();
        let c = b.actor_with_power("c", 2, 4, 0).unwrap();
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn closed_form_matches_hand_computation() {
        let g = powered_example();
        let c = g.actor_by_name("c").unwrap();
        let m = EnergyModel::from_semantics(&g, c).unwrap();
        assert!(!m.is_trivial());
        // q = (3, 2, 1); busy = (3·1, 2·2, 1·2) = (3, 4, 2).
        // work = 3·10 + 4·6 + 2·4 = 62; idle_busy = 3·2 + 4·1 = 10;
        // idle_total = 3; obs_firings = 1.
        // At t = 1/7: T_iter = 7, E = 62 − 10 + 3·7 = 73.
        assert_eq!(
            m.energy_per_iteration(Rational::new(1, 7)),
            Rational::new(73, 1)
        );
        // At the maximal throughput 1/4: E = 52 + 12 = 64.
        assert_eq!(
            m.energy_per_iteration(Rational::new(1, 4)),
            Rational::new(64, 1)
        );
        // Deadlock draws nothing (no iteration ever completes).
        assert_eq!(m.energy_per_iteration(Rational::ZERO), Rational::ZERO);
    }

    #[test]
    fn energy_is_monotone_non_increasing_in_throughput() {
        let g = powered_example();
        let c = g.actor_by_name("c").unwrap();
        let m = EnergyModel::from_semantics(&g, c).unwrap();
        let mut last = None;
        // Descending denominators: throughput rises, so energy must fall.
        for den in (4..=12).rev() {
            let e = m.energy_per_iteration(Rational::new(1, den));
            if let Some(prev) = last {
                assert!(e <= prev, "energy must not increase with throughput");
            }
            last = Some(e);
        }
    }

    #[test]
    fn closed_form_matches_schedule_energy() {
        let g = powered_example();
        let c = g.actor_by_name("c").unwrap();
        let m = EnergyModel::from_semantics(&g, c).unwrap();
        for caps in [[4u64, 2], [5, 2], [6, 2], [6, 4], [8, 2], [10, 10]] {
            let d = StorageDistribution::from_capacities(caps.to_vec());
            let s = Schedule::extract(&g, &d, ExplorationLimits::default()).unwrap();
            let oracle = schedule_energy_per_iteration(&g, &s, c).unwrap();
            let t = throughput(&g, &d, c).unwrap().throughput;
            assert_eq!(m.energy_per_iteration(t), oracle, "caps {caps:?}");
        }
    }

    #[test]
    fn adversarial_annotations_surface_overflow_not_panic() {
        // u64::MAX execution time × u64::MAX active power ≈ 2^128 blows
        // past i128: the coefficients must error, never wrap.
        let mut b = SdfGraph::builder("adversarial");
        let x = b.actor_with_power("x", u64::MAX, u64::MAX, 0).unwrap();
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        match EnergyModel::from_semantics(&g, y) {
            Err(AnalysisError::Graph(GraphError::ArithmeticOverflow { .. })) => {}
            other => panic!("expected ArithmeticOverflow, got {other:?}"),
        }
    }

    #[test]
    fn checked_energy_matches_and_catches_overflow() {
        let g = powered_example();
        let c = g.actor_by_name("c").unwrap();
        let m = EnergyModel::from_semantics(&g, c).unwrap();
        for den in 4..=12 {
            let t = Rational::new(1, den);
            assert_eq!(
                m.checked_energy_per_iteration(t),
                Some(m.energy_per_iteration(t))
            );
        }
        assert_eq!(
            m.checked_energy_per_iteration(Rational::ZERO),
            Some(Rational::ZERO)
        );
        // Coefficients near the i128 edge overflow the checked path
        // cleanly instead of panicking.
        let edge = EnergyModel {
            work_energy: i128::MAX,
            idle_busy: -1,
            idle_total: i128::MAX,
            obs_firings: i128::MAX,
        };
        assert_eq!(edge.checked_energy_per_iteration(Rational::new(1, 3)), None);
    }

    #[test]
    fn unannotated_model_is_trivial() {
        let mut b = SdfGraph::builder("plain");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel("c", x, 1, y, 1).unwrap();
        let g = b.build().unwrap();
        let m = EnergyModel::from_semantics(&g, y).unwrap();
        assert!(m.is_trivial());
        assert_eq!(m.energy_per_iteration(Rational::new(1, 2)), Rational::ZERO);
    }
}
