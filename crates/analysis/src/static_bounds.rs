//! Static per-distribution throughput certificates (paper §9 extended).
//!
//! The exploration in `buffy-core` pays for a full state-space traversal
//! per storage distribution, yet a *sound upper bound* on the throughput
//! of one concrete distribution is available statically: modelling each
//! channel capacity as a reverse dependency carrying `capacity − tokens`
//! initial space turns the question into a maximum-cycle-ratio problem on
//! the homogeneous expansion — the same machinery behind
//! [`maximal_throughput`](crate::maximal_throughput), with extra
//! *back-edges* encoding the engine's claim-space-at-start /
//! release-at-end buffer protocol.
//!
//! [`StaticBounds`] precomputes everything distribution-independent (node
//! numbering, firing-order rings, token-level data edges, per-channel
//! back-edge templates) once per graph; [`StaticBounds::certificate`]
//! then instantiates the back-edges for a concrete
//! [`StorageDistribution`] and runs Howard's algorithm
//! ([`max_cycle_ratio`]) in exact rational arithmetic.
//!
//! # Soundness
//!
//! Every edge of the capacity-augmented ratio graph is an event-causal
//! necessity of the self-timed execution:
//!
//! - *ring edges* — an actor never auto-concurs, so firing `i+1` starts
//!   after firing `i` ends;
//! - *data edges* — a firing starts only when its input tokens exist,
//!   i.e. after the producing firing ends;
//! - *back-edges* — a firing claims its full output space when it
//!   *starts*: with `free₀ = capacity − initial_tokens`, the cumulative
//!   claim `n·C + t` of the producer's firing in iteration `n` needs
//!   `n·C + t − free₀` consumption events completed, which is a specific
//!   consumer firing of iteration `n − k` (the edge's `k` tokens).
//!
//! The maximum cycle ratio over necessary precedences lower-bounds the
//! iteration period, so `q(observed) / λ*` upper-bounds the exact
//! throughput; a token-free cycle is a circular same-iteration wait that
//! the engine can never resolve, so [`AnalysisError::NotLive`] proves a
//! genuine deadlock (throughput exactly zero). Both directions require a
//! *connected* graph: on a disconnected graph the global `λ*` may be set
//! by a component the observed actor never waits for, which would
//! *under*-bound it — [`StaticBounds`] therefore refuses to certify
//! disconnected models ([`StaticBounds::is_usable`] is `false`).

use crate::error::AnalysisError;
use crate::mcm::{max_cycle_ratio, RatioEdge, RatioGraph};
use crate::semantics::DataflowSemantics;
use buffy_graph::{ActorId, ChannelId, Rational, StorageDistribution};
use std::collections::HashMap;

/// A sound static throughput certificate for one storage distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundCertificate {
    /// Upper bound on the exact throughput of the observed actor under
    /// the certified distribution (firings per time unit).
    pub bound: Rational,
    /// The critical cycle ratio `λ*` of the capacity-augmented
    /// expansion; `None` when the distribution statically deadlocks.
    pub lambda: Option<Rational>,
    /// Whether the distribution is statically *proven* to deadlock (a
    /// token-free cycle in the augmented expansion); then `bound` is the
    /// exact throughput, zero.
    pub deadlocked: bool,
}

/// The distribution-independent part of one channel's back-edges.
#[derive(Debug, Clone)]
struct ChannelPlan {
    /// Tokens initially stored on the channel.
    initial_tokens: u64,
    /// Tokens transferred per graph iteration (`C`); zero means the
    /// channel is never written and needs no space.
    per_iter: u64,
    /// Per producer firing with non-zero production: its node index and
    /// the cumulative claim `t` after that firing (within one iteration).
    producers: Vec<(usize, u64)>,
    /// Cumulative consumption prefix over the consumer's firings
    /// (`cum_c[0] = 0`, length `firings + 1`).
    cum_c: Vec<u64>,
    /// Node index of each consumer firing.
    consumer_nodes: Vec<usize>,
    /// Execution time of each consumer firing (the back-edge weight).
    consumer_weights: Vec<u64>,
}

/// Precomputed capacity-augmented ratio-graph templates for one model.
///
/// Build once with [`StaticBounds::new`], then query
/// [`certificate`](StaticBounds::certificate) per distribution — the
/// per-call cost is one Howard run, no state-space simulation.
///
/// # Examples
///
/// ```
/// use buffy_analysis::StaticBounds;
/// use buffy_graph::{Rational, SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
///
/// let bounds = StaticBounds::new(&g, c)?;
/// let cert = bounds
///     .certificate(&StorageDistribution::from_capacities(vec![4, 2]))
///     .expect("connected graph");
/// assert!(cert.bound >= Rational::new(1, 7)); // never below the exact value
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaticBounds {
    num_nodes: usize,
    fixed: Vec<RatioEdge>,
    plans: Vec<ChannelPlan>,
    observed_firings: u64,
    usable: bool,
}

impl StaticBounds {
    /// Precomputes the ratio-graph templates of `model`, observing
    /// `observed`.
    ///
    /// # Errors
    ///
    /// An error when the model is inconsistent (no repetition vector).
    pub fn new<M: DataflowSemantics + ?Sized>(
        model: &M,
        observed: ActorId,
    ) -> Result<StaticBounds, AnalysisError> {
        let cycles = model.repetition_cycles()?;
        let na = model.num_actors();

        // Node numbering: firings of an actor occupy a contiguous block.
        let mut base = vec![0usize; na];
        let mut firings = vec![0u64; na];
        let mut num_nodes = 0usize;
        for a in 0..na {
            let aid = ActorId::new(a);
            let f = cycles[a] * model.num_phases(aid) as u64;
            base[a] = num_nodes;
            firings[a] = f;
            num_nodes += f as usize;
        }
        let phase_time = |a: ActorId, firing: u64| {
            let p = model.num_phases(a) as u64;
            model.execution_time(a, (firing % p) as u32)
        };

        let mut edges: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
        let mut add = |from: usize, to: usize, weight: u64, tokens: u64| {
            edges
                .entry((from, to))
                .and_modify(|e| {
                    if tokens < e.1 {
                        *e = (weight, tokens);
                    }
                })
                .or_insert((weight, tokens));
        };

        // Firing-order rings.
        for a in 0..na {
            let aid = ActorId::new(a);
            let f = firings[a];
            let b = base[a];
            for i in 0..f {
                let next = (i + 1) % f;
                add(
                    b + i as usize,
                    b + next as usize,
                    phase_time(aid, i),
                    u64::from(next == 0),
                );
            }
        }

        // Token-level data dependencies and per-channel back-edge plans.
        let mut plans = Vec::with_capacity(model.num_channels());
        for c in 0..model.num_channels() {
            let cid = ChannelId::new(c);
            let src = model.channel_source(cid);
            let dst = model.channel_target(cid);
            let fa = firings[src.index()];
            let fb = firings[dst.index()];
            let pa = model.num_phases(src) as u64;
            let pb = model.num_phases(dst) as u64;
            let d = model.initial_tokens(cid);

            let mut cum_c = Vec::with_capacity(fb as usize + 1);
            cum_c.push(0u64);
            for m in 0..fb {
                cum_c.push(cum_c[m as usize] + model.consumption(cid, (m % pb) as u32));
            }
            let per_iter = cum_c[fb as usize];

            let mut producers = Vec::new();
            let mut produced_before = 0u64;
            for i in 0..fa {
                let produced = model.production(cid, (i % pa) as u32);
                for k in 1..=produced {
                    let t = d + produced_before + k; // 1-based token index
                    let Some(full_iters) = (t - 1).checked_div(per_iter) else {
                        break; // nothing ever consumed: no consumption edges
                    };
                    let rem = t - full_iters * per_iter;
                    let m = cum_c.partition_point(|&x| x < rem) - 1;
                    add(
                        base[src.index()] + i as usize,
                        base[dst.index()] + m,
                        phase_time(src, i),
                        full_iters,
                    );
                }
                if produced > 0 {
                    producers.push((base[src.index()] + i as usize, produced_before + produced));
                }
                produced_before += produced;
            }
            debug_assert!(
                per_iter == produced_before,
                "consistent models balance every channel"
            );

            plans.push(ChannelPlan {
                initial_tokens: d,
                per_iter,
                producers,
                cum_c,
                consumer_nodes: (0..fb).map(|m| base[dst.index()] + m as usize).collect(),
                consumer_weights: (0..fb).map(|m| phase_time(dst, m)).collect(),
            });
        }

        // Connectivity (undirected, over channels): the global λ* is only
        // a sound per-actor bound when every actor shares the critical
        // cycle's component.
        let usable = is_connected(na, model);

        Ok(StaticBounds {
            num_nodes,
            fixed: edges
                .into_iter()
                .map(|((from, to), (weight, tokens))| RatioEdge {
                    from,
                    to,
                    weight,
                    tokens,
                })
                .collect(),
            plans,
            observed_firings: firings[observed.index()],
            usable,
        })
    }

    /// Whether certificates can be issued at all (the model is
    /// connected); when `false`, [`certificate`](StaticBounds::certificate)
    /// always returns `None`.
    pub fn is_usable(&self) -> bool {
        self.usable
    }

    /// Firings of the observed actor per graph iteration.
    pub fn observed_firings(&self) -> u64 {
        self.observed_firings
    }

    /// The sound throughput certificate of `dist`, or `None` when no
    /// finite certificate exists (disconnected model, a capacity below
    /// the channel's initial tokens, a zero-delay critical cycle, or a
    /// non-converging analysis).
    pub fn certificate(&self, dist: &StorageDistribution) -> Option<BoundCertificate> {
        if !self.usable || dist.len() != self.plans.len() {
            return None;
        }
        let mut edges = self.fixed.clone();
        for (idx, _) in self.plans.iter().enumerate() {
            if !self.append_back_edges(&mut edges, idx, dist.get(ChannelId::new(idx))) {
                return None;
            }
        }
        self.solve(edges)
    }

    /// The relaxed certificate keeping only `channel`'s capacity
    /// constraint (all other channels unbounded). A relaxation of the
    /// full problem, so still a sound upper bound — if it already falls
    /// below a required throughput, `channel` alone is a culprit.
    pub fn channel_bound(&self, channel: ChannelId, capacity: u64) -> Option<BoundCertificate> {
        if !self.usable || channel.index() >= self.plans.len() {
            return None;
        }
        let mut edges = self.fixed.clone();
        if !self.append_back_edges(&mut edges, channel.index(), capacity) {
            return None;
        }
        self.solve(edges)
    }

    /// Appends `channel`'s back-edges under `capacity`; `false` when the
    /// capacity cannot even hold the initial tokens (unsupported — the
    /// channel could never be written).
    fn append_back_edges(&self, edges: &mut Vec<RatioEdge>, channel: usize, capacity: u64) -> bool {
        let plan = &self.plans[channel];
        if plan.per_iter == 0 {
            return true; // never written: no space constraint
        }
        if capacity < plan.initial_tokens {
            return false;
        }
        let free0 = (capacity - plan.initial_tokens) as i128;
        let c = plan.per_iter as i128;
        for &(node, t) in &plan.producers {
            // The claim `n·C + t` needs consumption event `n·C + t − free₀`
            // done: consumer firing `j` of iteration `n − shift` with
            // `σ = s − shift·C ∈ [1, C]` its in-iteration event index.
            let s = t as i128 - free0;
            let shift = (s - 1).div_euclid(c); // ≤ 0 since t ≤ C
            let sigma = (s - shift * c) as u64;
            let j = plan.cum_c.partition_point(|&x| x < sigma) - 1;
            edges.push(RatioEdge {
                from: plan.consumer_nodes[j],
                to: node,
                weight: plan.consumer_weights[j],
                tokens: (-shift) as u64,
            });
        }
        true
    }

    fn solve(&self, edges: Vec<RatioEdge>) -> Option<BoundCertificate> {
        let rg = RatioGraph {
            num_nodes: self.num_nodes,
            edges,
        };
        match max_cycle_ratio(&rg) {
            Ok(Some(lambda)) if !lambda.is_zero() => Some(BoundCertificate {
                bound: Rational::from(self.observed_firings) / lambda,
                lambda: Some(lambda),
                deadlocked: false,
            }),
            // Zero-delay critical cycle: the bound would be infinite —
            // nothing worth certifying. (`None` cycles cannot happen: the
            // firing-order rings always close a cycle.)
            Ok(_) => None,
            Err(AnalysisError::NotLive) => Some(BoundCertificate {
                bound: Rational::ZERO,
                lambda: None,
                deadlocked: true,
            }),
            Err(_) => None,
        }
    }
}

/// Whether the undirected channel graph connects every actor.
fn is_connected<M: DataflowSemantics + ?Sized>(num_actors: usize, model: &M) -> bool {
    if num_actors <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..num_actors).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for c in 0..model.num_channels() {
        let cid = ChannelId::new(c);
        let a = find(&mut parent, model.channel_source(cid).index());
        let b = find(&mut parent, model.channel_target(cid).index());
        parent[a] = b;
    }
    let root = find(&mut parent, 0);
    (1..num_actors).all(|a| find(&mut parent, a) == root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{throughput_for, ExplorationLimits};
    use crate::Capacities;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn exact(g: &SdfGraph, caps: &[u64]) -> Rational {
        let c = g.actor_by_name("c").unwrap();
        throughput_for(
            g,
            Capacities::from_distribution(&StorageDistribution::from_capacities(caps.to_vec())),
            c,
            ExplorationLimits::default(),
        )
        .unwrap()
        .throughput
    }

    #[test]
    fn certificate_never_undercuts_the_exact_engine() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        assert!(bounds.is_usable());
        for a in 3..10u64 {
            for b in 1..6u64 {
                let dist = StorageDistribution::from_capacities(vec![a, b]);
                let cert = bounds.certificate(&dist).expect("certifiable");
                assert!(
                    cert.bound >= exact(&g, &[a, b]),
                    "<{a}, {b}>: bound {} < exact {}",
                    cert.bound,
                    exact(&g, &[a, b])
                );
            }
        }
    }

    #[test]
    fn certificates_are_tight_on_the_example() {
        // For SDF the capacity-augmented expansion models the engine's
        // buffer protocol exactly, so on live distributions of the
        // running example the certificate *equals* the exact throughput
        // (the paper's ⟨4, 2⟩ level 1/7 among them).
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        let cert = bounds
            .certificate(&StorageDistribution::from_capacities(vec![4, 2]))
            .unwrap();
        assert_eq!(cert.bound, Rational::new(1, 7));
        assert!(!cert.deadlocked);
        assert!(cert.lambda.is_some());
        for a in 4..10u64 {
            for b in 2..6u64 {
                let cert = bounds
                    .certificate(&StorageDistribution::from_capacities(vec![a, b]))
                    .unwrap();
                assert_eq!(cert.bound, exact(&g, &[a, b]), "<{a}, {b}>");
            }
        }
    }

    #[test]
    fn undersized_channel_is_proven_deadlocked() {
        // α capacity 3 < bmlb 4: the engine deadlocks; so does the
        // augmented expansion (a token-free cycle).
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        let cert = bounds
            .certificate(&StorageDistribution::from_capacities(vec![3, 2]))
            .unwrap();
        assert!(cert.deadlocked);
        assert_eq!(cert.bound, Rational::ZERO);
        assert_eq!(cert.lambda, None);
    }

    #[test]
    fn capacity_below_initial_tokens_is_uncertifiable() {
        let mut b = SdfGraph::builder("tok");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel_with_tokens("f", x, 1, y, 1, 3).unwrap();
        b.channel("r", y, 1, x, 1).unwrap();
        let g = b.build().unwrap();
        let bounds = StaticBounds::new(&g, y).unwrap();
        assert!(bounds
            .certificate(&StorageDistribution::from_capacities(vec![2, 1]))
            .is_none());
        assert!(bounds
            .certificate(&StorageDistribution::from_capacities(vec![3, 1]))
            .is_some());
    }

    #[test]
    fn disconnected_models_are_refused() {
        let mut b = SdfGraph::builder("two");
        let x = b.actor("x", 1);
        b.channel_with_tokens("sx", x, 1, x, 1, 1).unwrap();
        let y = b.actor("y", 5);
        b.channel_with_tokens("sy", y, 1, y, 1, 1).unwrap();
        let g = b.build().unwrap();
        let bounds = StaticBounds::new(&g, x).unwrap();
        assert!(!bounds.is_usable());
        assert!(bounds
            .certificate(&StorageDistribution::from_capacities(vec![4, 4]))
            .is_none());
        assert!(bounds.channel_bound(ChannelId::new(0), 4).is_none());
    }

    #[test]
    fn single_channel_bound_is_a_relaxation() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        let dist = StorageDistribution::from_capacities(vec![4, 2]);
        let full = bounds.certificate(&dist).unwrap();
        for ch in 0..2 {
            let cid = ChannelId::new(ch);
            let relaxed = bounds.channel_bound(cid, dist.get(cid)).unwrap();
            assert!(
                relaxed.bound >= full.bound,
                "channel {ch}: {} < {}",
                relaxed.bound,
                full.bound
            );
        }
    }

    #[test]
    fn generous_capacities_recover_the_maximal_throughput() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        let cert = bounds
            .certificate(&StorageDistribution::from_capacities(vec![100, 100]))
            .unwrap();
        assert_eq!(cert.bound, crate::mcm::maximal_throughput(&g, c).unwrap());
    }

    #[test]
    fn monotone_in_pointwise_capacity() {
        let g = example();
        let c = g.actor_by_name("c").unwrap();
        let bounds = StaticBounds::new(&g, c).unwrap();
        let mut prev = Rational::ZERO;
        for cap in 4..12u64 {
            let cert = bounds
                .certificate(&StorageDistribution::from_capacities(vec![cap, 4]))
                .unwrap();
            assert!(cert.bound >= prev, "cap {cap}");
            prev = cert.bound;
        }
    }
}
