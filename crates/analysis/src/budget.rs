//! Cooperative cancellation and evaluation budgets for long analyses.
//!
//! [`CancelToken`] is the resilience layer's shared budget object: an
//! atomic cancellation flag, an optional wall-clock deadline and an
//! optional evaluation-count budget. One token is created per run (the
//! CLI arms it from `--timeout`/`--max-evals` and its SIGINT handler) and
//! shared — behind an `Arc` — by every worker of an exploration. The
//! per-distribution analysis polls it on a coarse stride
//! ([`throughput_for_with_cancel`](crate::throughput_for_with_cancel)),
//! so cancellation is cooperative: a set flag stops the run at the next
//! stride boundary, never mid-state.
//!
//! Cancellation is *sticky* and first-wins: once a reason is recorded,
//! later `cancel` calls do not overwrite it. This keeps the reported
//! reason stable when, say, a deadline and a SIGINT race.

use core::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CancelReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The user interrupted the run (SIGINT or an explicit cancel).
    Interrupt,
    /// The evaluation-count budget was exhausted.
    EvaluationBudget,
    /// The memory watchdog tripped: the cumulative reduced-state count
    /// (the run's dominant allocation) exceeded the configured budget.
    MemoryBudget,
}

impl CancelReason {
    /// Stable machine-readable name, used in JSON output and traces.
    pub fn name(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Interrupt => "interrupt",
            CancelReason::EvaluationBudget => "eval-budget",
            CancelReason::MemoryBudget => "memory-budget",
        }
    }

    fn flag(self) -> u8 {
        match self {
            CancelReason::Deadline => 1,
            CancelReason::Interrupt => 2,
            CancelReason::EvaluationBudget => 3,
            CancelReason::MemoryBudget => 4,
        }
    }

    fn from_flag(v: u8) -> Option<CancelReason> {
        match v {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Interrupt),
            3 => Some(CancelReason::EvaluationBudget),
            4 => Some(CancelReason::MemoryBudget),
            _ => None,
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            CancelReason::Interrupt => write!(f, "interrupted"),
            CancelReason::EvaluationBudget => write!(f, "evaluation budget exhausted"),
            CancelReason::MemoryBudget => write!(f, "memory budget exhausted"),
        }
    }
}

/// A shared, cooperative cancellation token with optional budgets.
///
/// The flag is a single `AtomicU8` (0 = live, otherwise the
/// [`CancelReason`] discriminant), so polling it is one relaxed load.
/// Deadline expiry is detected lazily by [`check`](CancelToken::check)
/// and cached into the flag; the evaluation budget trips inside
/// [`note_evaluation`](CancelToken::note_evaluation).
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicU8,
    deadline: Option<Instant>,
    eval_budget: Option<u64>,
    evals: AtomicU64,
    state_budget: Option<u64>,
    states: AtomicU64,
}

impl CancelToken {
    /// A live token with no deadline and no budget (never trips on its
    /// own; only [`cancel`](CancelToken::cancel) can stop it).
    pub const fn new() -> CancelToken {
        CancelToken {
            flag: AtomicU8::new(0),
            deadline: None,
            eval_budget: None,
            evals: AtomicU64::new(0),
            state_budget: None,
            states: AtomicU64::new(0),
        }
    }

    /// Arms a wall-clock deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> CancelToken {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Arms an evaluation-count budget: the token cancels itself with
    /// [`CancelReason::EvaluationBudget`] once `budget` evaluations have
    /// been [noted](CancelToken::note_evaluation). A budget of 0 trips on
    /// the first check.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: u64) -> CancelToken {
        self.eval_budget = Some(budget);
        if budget == 0 {
            self.flag = AtomicU8::new(CancelReason::EvaluationBudget.flag());
        }
        self
    }

    /// Arms the memory watchdog: the token cancels itself with
    /// [`CancelReason::MemoryBudget`] once `budget` reduced states have
    /// been [noted](CancelToken::note_states) across the run. States are
    /// the exploration's dominant allocation, so the count is a faithful,
    /// deterministic proxy for arena pressure. A budget of 0 trips on the
    /// first check.
    #[must_use]
    pub fn with_state_budget(mut self, budget: u64) -> CancelToken {
        self.state_budget = Some(budget);
        if budget == 0 {
            self.flag = AtomicU8::new(CancelReason::MemoryBudget.flag());
        }
        self
    }

    /// Requests cancellation. The first recorded reason wins; later calls
    /// are no-ops.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self
            .flag
            .compare_exchange(0, reason.flag(), Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Polls the token: returns the cancellation reason if the run should
    /// stop, checking (and caching) deadline expiry.
    pub fn check(&self) -> Option<CancelReason> {
        let v = self.flag.load(Ordering::Relaxed);
        if v != 0 {
            return CancelReason::from_flag(v);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel(CancelReason::Deadline);
                return CancelReason::from_flag(self.flag.load(Ordering::Relaxed));
            }
        }
        None
    }

    /// Whether cancellation has been requested (or a deadline passed).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_some()
    }

    /// Records one completed evaluation, tripping the evaluation budget
    /// when it is exhausted.
    pub fn note_evaluation(&self) {
        let n = self.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(budget) = self.eval_budget {
            if n >= budget {
                self.cancel(CancelReason::EvaluationBudget);
            }
        }
    }

    /// Number of evaluations noted so far.
    pub fn evaluations(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Records `n` reduced states stored by an analysis, tripping the
    /// memory watchdog when the cumulative total reaches the budget.
    pub fn note_states(&self, n: u64) {
        let total = self.states.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(budget) = self.state_budget {
            if total >= budget {
                self.cancel(CancelReason::MemoryBudget);
            }
        }
    }

    /// Cumulative reduced-state count noted so far.
    pub fn states_noted(&self) -> u64 {
        self.states.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert_eq!(t.check(), None);
        assert!(!t.is_cancelled());
        assert_eq!(t.evaluations(), 0);
    }

    #[test]
    fn first_cancel_reason_sticks() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Interrupt);
        t.cancel(CancelReason::Deadline);
        assert_eq!(t.check(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn expired_deadline_trips_on_check() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(0));
        assert_eq!(t.check(), Some(CancelReason::Deadline));
        // Cached: stays cancelled.
        assert!(t.is_cancelled());
    }

    #[test]
    fn distant_deadline_stays_live() {
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        assert_eq!(t.check(), None);
    }

    #[test]
    fn eval_budget_trips_at_count() {
        let t = CancelToken::new().with_eval_budget(3);
        t.note_evaluation();
        t.note_evaluation();
        assert_eq!(t.check(), None);
        t.note_evaluation();
        assert_eq!(t.check(), Some(CancelReason::EvaluationBudget));
        assert_eq!(t.evaluations(), 3);
    }

    #[test]
    fn zero_eval_budget_starts_cancelled() {
        let t = CancelToken::new().with_eval_budget(0);
        assert_eq!(t.check(), Some(CancelReason::EvaluationBudget));
    }

    #[test]
    fn state_budget_trips_at_cumulative_count() {
        let t = CancelToken::new().with_state_budget(100);
        t.note_states(40);
        t.note_states(59);
        assert_eq!(t.check(), None);
        t.note_states(1);
        assert_eq!(t.check(), Some(CancelReason::MemoryBudget));
        assert_eq!(t.states_noted(), 100);
    }

    #[test]
    fn zero_state_budget_starts_cancelled() {
        let t = CancelToken::new().with_state_budget(0);
        assert_eq!(t.check(), Some(CancelReason::MemoryBudget));
    }

    #[test]
    fn unbudgeted_states_never_trip() {
        let t = CancelToken::new();
        t.note_states(u64::MAX / 2);
        assert_eq!(t.check(), None);
        assert_eq!(t.states_noted(), u64::MAX / 2);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(CancelReason::Deadline.name(), "deadline");
        assert_eq!(CancelReason::Interrupt.name(), "interrupt");
        assert_eq!(CancelReason::EvaluationBudget.name(), "eval-budget");
        assert_eq!(CancelReason::MemoryBudget.name(), "memory-budget");
        assert!(CancelReason::Interrupt.to_string().contains("interrupted"));
    }
}
