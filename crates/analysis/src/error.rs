//! Error types for SDF analyses.

use buffy_graph::GraphError;
use core::fmt;

/// Errors raised by execution, throughput and MCM analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A graph-level error (inconsistency, …).
    Graph(GraphError),
    /// The state space grew beyond the configured limit.
    StateLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// Actors with execution time 0 fired without bound within a single
    /// time step (a zero-delay cycle), so time cannot advance.
    ZeroTimeLivelock,
    /// The observed actor completes firings but no time passes between
    /// cycle states; throughput would be unbounded.
    ZeroPeriod,
    /// A cycle of the (HSDF) graph carries no initial tokens, so the graph
    /// deadlocks and cycle-ratio analysis is undefined.
    NotLive,
    /// The iterative MCM solver failed to converge within its iteration cap
    /// (should not happen; indicates a malformed input).
    McmDidNotConverge,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Graph(e) => write!(f, "{e}"),
            AnalysisError::StateLimitExceeded { limit } => {
                write!(f, "state space exceeded the limit of {limit} states")
            }
            AnalysisError::ZeroTimeLivelock => write!(
                f,
                "zero-execution-time actors fire without bound within one time step"
            ),
            AnalysisError::ZeroPeriod => {
                write!(
                    f,
                    "periodic phase has zero duration; throughput is unbounded"
                )
            }
            AnalysisError::NotLive => {
                write!(f, "graph has a token-free cycle and deadlocks")
            }
            AnalysisError::McmDidNotConverge => {
                write!(f, "maximum cycle mean computation did not converge")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for AnalysisError {
    fn from(e: GraphError) -> Self {
        AnalysisError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AnalysisError::ZeroTimeLivelock.to_string().contains("zero"));
        assert!(AnalysisError::StateLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        let e: AnalysisError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("no actors"));
    }
}
