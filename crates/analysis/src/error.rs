//! Error types for SDF analyses.

use crate::budget::CancelReason;
use buffy_graph::GraphError;
use core::fmt;

/// Which exploration limit a state-space search ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The cap on stored states ([`max_states`](crate::ExplorationLimits::max_states)).
    States,
    /// The cap on simulated time steps ([`max_steps`](crate::ExplorationLimits::max_steps)).
    Steps,
}

impl LimitKind {
    /// Stable machine-readable name (`"states"` / `"steps"`).
    pub fn name(self) -> &'static str {
        match self {
            LimitKind::States => "states",
            LimitKind::Steps => "steps",
        }
    }
}

/// Errors raised by execution, throughput and MCM analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A graph-level error (inconsistency, …).
    Graph(GraphError),
    /// The state space grew beyond the configured limit. Carries the
    /// limit that was hit and the channel capacities under analysis so the
    /// offending distribution is identifiable from logs.
    StateLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// Which limit: stored states or simulated steps.
        kind: LimitKind,
        /// The per-channel capacities in effect (`None` = unbounded).
        capacities: Vec<Option<u64>>,
    },
    /// The analysis was cooperatively cancelled (deadline, interrupt or
    /// exhausted budget) before completing.
    Cancelled {
        /// Why the run was cancelled.
        reason: CancelReason,
    },
    /// Actors with execution time 0 fired without bound within a single
    /// time step (a zero-delay cycle), so time cannot advance.
    ZeroTimeLivelock,
    /// The observed actor completes firings but no time passes between
    /// cycle states; throughput would be unbounded.
    ZeroPeriod,
    /// A cycle of the (HSDF) graph carries no initial tokens, so the graph
    /// deadlocks and cycle-ratio analysis is undefined.
    NotLive,
    /// The iterative MCM solver failed to converge within its iteration cap
    /// (should not happen; indicates a malformed input).
    McmDidNotConverge,
}

/// Renders capacities as `⟨4, 2, ?⟩` (`?` = unbounded).
pub(crate) fn fmt_capacities(caps: &[Option<u64>], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "⟨")?;
    for (i, c) in caps.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        match c {
            Some(c) => write!(f, "{c}")?,
            None => write!(f, "?")?,
        }
    }
    write!(f, "⟩")
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Graph(e) => write!(f, "{e}"),
            AnalysisError::StateLimitExceeded {
                limit,
                kind,
                capacities,
            } => {
                match kind {
                    LimitKind::States => {
                        write!(f, "state space exceeded the limit of {limit} states")?
                    }
                    LimitKind::Steps => {
                        write!(f, "simulation exceeded the limit of {limit} steps")?
                    }
                }
                write!(f, " under capacities ")?;
                fmt_capacities(capacities, f)
            }
            AnalysisError::Cancelled { reason } => {
                write!(f, "analysis cancelled: {reason}")
            }
            AnalysisError::ZeroTimeLivelock => write!(
                f,
                "zero-execution-time actors fire without bound within one time step"
            ),
            AnalysisError::ZeroPeriod => {
                write!(
                    f,
                    "periodic phase has zero duration; throughput is unbounded"
                )
            }
            AnalysisError::NotLive => {
                write!(f, "graph has a token-free cycle and deadlocks")
            }
            AnalysisError::McmDidNotConverge => {
                write!(f, "maximum cycle mean computation did not converge")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for AnalysisError {
    fn from(e: GraphError) -> Self {
        AnalysisError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AnalysisError::ZeroTimeLivelock.to_string().contains("zero"));
        let e = AnalysisError::StateLimitExceeded {
            limit: 10,
            kind: LimitKind::States,
            capacities: vec![Some(4), Some(2)],
        };
        assert!(e.to_string().contains("10"), "{e}");
        assert!(e.to_string().contains("states"), "{e}");
        assert!(e.to_string().contains("⟨4, 2⟩"), "{e}");
        let e: AnalysisError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("no actors"));
    }

    #[test]
    fn steps_limit_names_steps_and_unbounded_channels() {
        let e = AnalysisError::StateLimitExceeded {
            limit: 7,
            kind: LimitKind::Steps,
            capacities: vec![Some(3), None],
        };
        assert!(e.to_string().contains("7 steps"), "{e}");
        assert!(e.to_string().contains("⟨3, ?⟩"), "{e}");
    }

    #[test]
    fn cancelled_display_carries_reason() {
        let e = AnalysisError::Cancelled {
            reason: CancelReason::Deadline,
        };
        assert!(e.to_string().contains("deadline"), "{e}");
    }
}
