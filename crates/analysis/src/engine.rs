//! The timed self-timed execution engine.
//!
//! Implements the operational semantics of the paper (§2, §6, Fig. 2 and
//! the generated code of Fig. 8):
//!
//! - an actor may start firing when it is idle, enough tokens are present
//!   on every input channel, and enough free space is present on every
//!   output channel (*claiming* the space — sound because each channel has
//!   exactly one producer and auto-concurrency is excluded);
//! - tokens are consumed from the inputs and produced on the outputs at the
//!   *end* of the firing;
//! - every enabled actor fires as soon as possible, which maximizes
//!   throughput (§5) and makes execution deterministic (§6).
//!
//! The executor is [`DataflowEngine`], generic over any
//! [`DataflowSemantics`] model: each firing executes the actor's current
//! phase and advances it, so plain SDF (one phase per actor) and CSDF
//! (cyclic phase sequences) run through the same code. [`Engine`] is the
//! SDF-typed alias that the SDF analyses use.
//!
//! One call to [`DataflowEngine::step`] advances time by one unit: it
//! first completes firings whose remaining time reaches zero, then starts
//! every enabled firing. Actors with execution time 0 complete within the
//! step; a fixpoint loop handles chains of zero-time firings.

use crate::error::AnalysisError;
use crate::semantics::DataflowSemantics;
use buffy_graph::{ActorId, ChannelId, SdfGraph, StorageDistribution};

/// Per-channel capacities; `None` means conceptually unbounded storage.
///
/// ```
/// use buffy_analysis::Capacities;
/// use buffy_graph::{ChannelId, StorageDistribution};
///
/// let c = Capacities::from_distribution(&StorageDistribution::from_capacities(vec![4, 2]));
/// assert_eq!(c.get(ChannelId::new(0)), Some(4));
/// let u = Capacities::unbounded(2);
/// assert_eq!(u.get(ChannelId::new(0)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capacities {
    caps: Vec<Option<u64>>,
}

impl Capacities {
    /// All channels unbounded.
    pub fn unbounded(num_channels: usize) -> Capacities {
        Capacities {
            caps: vec![None; num_channels],
        }
    }

    /// Bounded capacities taken from a storage distribution.
    pub fn from_distribution(dist: &StorageDistribution) -> Capacities {
        Capacities {
            caps: dist.as_slice().iter().map(|&c| Some(c)).collect(),
        }
    }

    /// The capacity of `channel` (`None` = unbounded).
    pub fn get(&self, channel: ChannelId) -> Option<u64> {
        self.caps[channel.index()]
    }

    /// The raw per-channel capacities (`None` = unbounded), in channel
    /// order.
    pub fn as_slice(&self) -> &[Option<u64>] {
        &self.caps
    }

    /// Number of channels covered.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether no channels are covered.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

impl From<&StorageDistribution> for Capacities {
    fn from(d: &StorageDistribution) -> Self {
        Capacities::from_distribution(d)
    }
}

/// A snapshot of the execution state: remaining firing times, current
/// firing phases, and channel fill levels (paper Def. 5).
///
/// Plain SDF keeps every phase at 0, so [`SdfState`] is a type alias:
/// single-phase models hash and compare identically whether they entered
/// the kernel as SDF or as a single-phase CSDF embedding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataflowState {
    /// Remaining time of the current firing per actor (0 = idle).
    pub act_clk: Vec<u64>,
    /// Current phase per actor (always 0 for plain SDF).
    pub phase: Vec<u32>,
    /// Tokens currently stored per channel.
    pub tokens: Vec<u64>,
}

impl DataflowState {
    /// Whether no actor is currently firing.
    pub fn all_idle(&self) -> bool {
        self.act_clk.iter().all(|&t| t == 0)
    }
}

/// The SDF execution state: the single-phase case of [`DataflowState`].
pub type SdfState = DataflowState;

/// What happened during one [`DataflowEngine::step`]: completed and
/// started firings with the phase that fired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FiringEvents {
    /// `(actor, phase)` firings completed in this step (zero-time
    /// firings appear once per completed firing).
    pub completed: Vec<(ActorId, u32)>,
    /// `(actor, phase)` firings started in this step (ditto).
    pub started: Vec<(ActorId, u32)>,
}

/// Outcome of advancing a [`DataflowEngine`] by one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FiringOutcome {
    /// Time advanced normally.
    Progress(FiringEvents),
    /// No actor is firing and none can start: the model is deadlocked
    /// (paper §3); the state will never change again.
    Deadlock,
}

/// Maximum number of zero-execution-time firings tolerated within a single
/// time step before declaring a livelock.
const ZERO_TIME_FIRING_CAP: u64 = 1 << 22;

/// Deterministic self-timed executor for any [`DataflowSemantics`] model
/// under given channel capacities.
///
/// The SDF analyses use the [`Engine`] alias; CSDF wraps this engine in
/// `buffy-csdf`.
#[derive(Debug, Clone)]
pub struct DataflowEngine<'g, M: DataflowSemantics> {
    model: &'g M,
    caps: Capacities,
    state: DataflowState,
    time: u64,
    started: bool,
    /// Completed phase firings per actor, kept to cross-check token
    /// counts.
    #[cfg(feature = "strict-invariants")]
    fired: Vec<u64>,
    /// Time at the last invariant check; time must never move backwards.
    #[cfg(feature = "strict-invariants")]
    last_time: u64,
}

impl<'g, M: DataflowSemantics> DataflowEngine<'g, M> {
    /// Creates an engine at time 0 with all actors idle in phase 0 and
    /// channels at their initial token counts. Call
    /// [`start_initial`](Self::start_initial) before stepping.
    ///
    /// # Panics
    ///
    /// Panics if `caps` does not cover exactly the model's channels.
    pub fn new(model: &'g M, caps: Capacities) -> DataflowEngine<'g, M> {
        assert_eq!(
            caps.len(),
            model.num_channels(),
            "capacities must cover every channel"
        );
        let tokens = (0..model.num_channels())
            .map(|i| model.initial_tokens(ChannelId::new(i)))
            .collect();
        DataflowEngine {
            model,
            caps,
            state: DataflowState {
                act_clk: vec![0; model.num_actors()],
                phase: vec![0; model.num_actors()],
                tokens,
            },
            time: 0,
            started: false,
            #[cfg(feature = "strict-invariants")]
            fired: vec![0; model.num_actors()],
            #[cfg(feature = "strict-invariants")]
            last_time: 0,
        }
    }

    /// Hard invariant checks compiled in by the `strict-invariants`
    /// feature: the clock is monotone, every channel's fill level equals
    /// `initial + produced − consumed` (token conservation, summing the
    /// phase rates of the completed firings), capacities are respected
    /// (channels whose initial tokens exceed the capacity may stay
    /// over-full until drained) and no running firing exceeds its phase's
    /// execution time.
    #[cfg(feature = "strict-invariants")]
    fn assert_invariants(&mut self) {
        assert!(self.time >= self.last_time, "time moved backwards");
        self.last_time = self.time;
        // Tokens moved by `fired` phase firings of `actor`, which always
        // executes its phases in order starting at 0.
        let moved = |fired: u64, actor: ActorId, rate: &dyn Fn(u32) -> u64| -> i128 {
            let n = self.model.num_phases(actor) as u64;
            let cycle: i128 = (0..n as u32).map(|p| rate(p) as i128).sum();
            let full = (fired / n) as i128 * cycle;
            let partial: i128 = (0..(fired % n) as u32).map(|p| rate(p) as i128).sum();
            full + partial
        };
        for i in 0..self.model.num_channels() {
            let cid = ChannelId::new(i);
            let src = self.model.channel_source(cid);
            let tgt = self.model.channel_target(cid);
            let produced = moved(self.fired[src.index()], src, &|p| {
                self.model.production(cid, p)
            });
            let consumed = moved(self.fired[tgt.index()], tgt, &|p| {
                self.model.consumption(cid, p)
            });
            let initial = self.model.initial_tokens(cid);
            let expected = initial as i128 + produced - consumed;
            assert_eq!(
                self.state.tokens[i] as i128,
                expected,
                "token conservation violated on channel {}",
                self.model.channel_name(cid)
            );
            if let Some(cap) = self.caps.get(cid) {
                assert!(
                    self.state.tokens[i] <= cap.max(initial),
                    "capacity exceeded on channel {}",
                    self.model.channel_name(cid)
                );
            }
        }
        for i in 0..self.model.num_actors() {
            let aid = ActorId::new(i);
            assert!(
                self.state.act_clk[i] <= self.model.execution_time(aid, self.state.phase[i]),
                "clock of actor {} exceeds its execution time",
                self.model.actor_name(aid)
            );
        }
    }

    /// The model being executed.
    pub fn model(&self) -> &'g M {
        self.model
    }

    /// The channel capacities in effect.
    pub fn capacities(&self) -> &Capacities {
        &self.caps
    }

    /// The current state.
    pub fn state(&self) -> &DataflowState {
        &self.state
    }

    /// The current time (number of completed steps).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether `actor` can start a firing of its current phase in the
    /// current state.
    pub fn is_enabled(&self, actor: ActorId) -> bool {
        if self.state.act_clk[actor.index()] > 0 {
            return false; // no auto-concurrency
        }
        let phase = self.state.phase[actor.index()];
        for &cid in self.model.input_channels(actor) {
            if self.state.tokens[cid.index()] < self.model.consumption(cid, phase) {
                return false;
            }
        }
        for &cid in self.model.output_channels(actor) {
            if let Some(cap) = self.caps.get(cid) {
                // Self-loops consume at the end of the firing, so the space
                // check cannot net out the consumption; claim the full
                // production (conservative, matches the paper's model).
                let free = cap.saturating_sub(self.state.tokens[cid.index()]);
                if free < self.model.production(cid, phase) {
                    return false;
                }
            }
        }
        true
    }

    /// Performs the initial start phase (time stays 0): every enabled actor
    /// begins its first firing, zero-time firings complete immediately.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::ZeroTimeLivelock`] if zero-time firings never
    /// stabilize.
    pub fn start_initial(&mut self) -> Result<FiringEvents, AnalysisError> {
        assert!(!self.started, "start_initial must be called exactly once");
        self.started = true;
        let mut events = FiringEvents::default();
        self.start_enabled(&mut events)?;
        #[cfg(feature = "strict-invariants")]
        self.assert_invariants();
        Ok(events)
    }

    /// Advances the execution by one time step.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::ZeroTimeLivelock`] if zero-time firings never
    /// stabilize within the step.
    ///
    /// # Panics
    ///
    /// Panics if [`start_initial`](Self::start_initial) has not been called.
    pub fn step(&mut self) -> Result<FiringOutcome, AnalysisError> {
        assert!(self.started, "call start_initial before step");
        // Deadlock check on the *current* state: nothing firing, nothing
        // enabled.
        if self.state.all_idle() && !self.any_enabled() {
            return Ok(FiringOutcome::Deadlock);
        }

        self.time += 1;
        let mut events = FiringEvents::default();

        // 1. Advance clocks; complete firings that reach zero.
        for i in 0..self.state.act_clk.len() {
            if self.state.act_clk[i] > 0 {
                self.state.act_clk[i] -= 1;
                if self.state.act_clk[i] == 0 {
                    let phase = self.state.phase[i];
                    self.complete(ActorId::new(i));
                    events.completed.push((ActorId::new(i), phase));
                }
            }
        }

        // 2. Start every enabled firing (fixpoint for zero-time phases).
        self.start_enabled(&mut events)?;
        #[cfg(feature = "strict-invariants")]
        self.assert_invariants();
        Ok(FiringOutcome::Progress(events))
    }

    /// Runs until the observed condition: convenience that steps `n` times
    /// or stops early on deadlock. Returns the number of steps taken.
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Self::step) errors.
    pub fn run_steps(&mut self, n: u64) -> Result<u64, AnalysisError> {
        for done in 0..n {
            if let FiringOutcome::Deadlock = self.step()? {
                return Ok(done);
            }
        }
        Ok(n)
    }

    fn any_enabled(&self) -> bool {
        (0..self.model.num_actors()).any(|i| self.is_enabled(ActorId::new(i)))
    }

    /// Applies the end-of-firing effects of `actor`'s current phase:
    /// consume inputs, produce outputs, advance the phase (paper Fig. 2).
    fn complete(&mut self, actor: ActorId) {
        #[cfg(feature = "strict-invariants")]
        {
            self.fired[actor.index()] += 1;
        }
        let phase = self.state.phase[actor.index()];
        for &cid in self.model.input_channels(actor) {
            let consume = self.model.consumption(cid, phase);
            debug_assert!(self.state.tokens[cid.index()] >= consume);
            self.state.tokens[cid.index()] -= consume;
        }
        for &cid in self.model.output_channels(actor) {
            let produce = self.model.production(cid, phase);
            self.state.tokens[cid.index()] += produce;
            if let Some(cap) = self.caps.get(cid) {
                // Over-full channels (initial tokens above the capacity)
                // are tolerated as long as nothing is produced on them.
                debug_assert!(
                    produce == 0 || self.state.tokens[cid.index()] <= cap,
                    "claimed space was violated on channel {}",
                    self.model.channel_name(cid)
                );
            }
        }
        self.state.phase[actor.index()] =
            (self.state.phase[actor.index()] + 1) % self.model.num_phases(actor);
    }

    /// Starts all enabled firings; zero-time firings complete immediately
    /// and may enable more starts (possibly of the actor's next phase),
    /// hence the fixpoint loop.
    fn start_enabled(&mut self, events: &mut FiringEvents) -> Result<(), AnalysisError> {
        let mut zero_firings: u64 = 0;
        loop {
            let mut changed = false;
            for i in 0..self.model.num_actors() {
                let actor = ActorId::new(i);
                // An actor may chain several zero-time phases and then
                // start a timed one within the same pass.
                loop {
                    if self.state.act_clk[i] > 0 || !self.is_enabled(actor) {
                        break;
                    }
                    let phase = self.state.phase[i];
                    let exec = self.model.execution_time(actor, phase);
                    if exec > 0 {
                        self.state.act_clk[i] = exec;
                        events.started.push((actor, phase));
                        changed = true;
                        break;
                    }
                    // Zero-time phase: fires (and may refire) within the
                    // step.
                    events.started.push((actor, phase));
                    self.complete(actor);
                    events.completed.push((actor, phase));
                    changed = true;
                    zero_firings += 1;
                    if zero_firings > ZERO_TIME_FIRING_CAP {
                        return Err(AnalysisError::ZeroTimeLivelock);
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }
}

/// Deterministic self-timed executor for an SDF graph under given channel
/// capacities: the single-phase instantiation of [`DataflowEngine`].
///
/// Events carry `(actor, phase)` pairs; for plain SDF the phase is
/// always 0.
///
/// # Examples
///
/// Reproducing the first states of the paper's §6 trace for the running
/// example with storage distribution ⟨4, 2⟩:
///
/// ```
/// use buffy_analysis::{Capacities, Engine};
/// use buffy_graph::{SdfGraph, StorageDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SdfGraph::builder("example");
/// let a = b.actor("a", 1);
/// let bb = b.actor("b", 2);
/// let c = b.actor("c", 2);
/// b.channel("alpha", a, 2, bb, 3)?;
/// b.channel("beta", bb, 1, c, 2)?;
/// let g = b.build()?;
///
/// let dist = StorageDistribution::from_capacities(vec![4, 2]);
/// let mut engine = Engine::new(&g, Capacities::from_distribution(&dist));
/// engine.start_initial()?;                     // a starts firing
/// assert_eq!(engine.state().act_clk, vec![1, 0, 0]);
/// assert_eq!(engine.state().tokens, vec![0, 0]);
/// engine.step()?;                              // a completes, produces 2, restarts
/// assert_eq!(engine.state().act_clk, vec![1, 0, 0]);
/// assert_eq!(engine.state().tokens, vec![2, 0]);
/// engine.step()?;                              // a completes; b starts (3 tokens)
/// assert_eq!(engine.state().act_clk, vec![0, 2, 0]);
/// assert_eq!(engine.state().tokens, vec![4, 0]);
/// # Ok(())
/// # }
/// ```
pub type Engine<'g> = DataflowEngine<'g, SdfGraph>;

#[cfg(test)]
mod tests {
    use super::*;
    use buffy_graph::SdfGraph;

    fn example() -> SdfGraph {
        let mut b = SdfGraph::builder("example");
        let a = b.actor("a", 1);
        let bb = b.actor("b", 2);
        let c = b.actor("c", 2);
        b.channel("alpha", a, 2, bb, 3).unwrap();
        b.channel("beta", bb, 1, c, 2).unwrap();
        b.build().unwrap()
    }

    fn engine<'g>(g: &'g SdfGraph, caps: &[u64]) -> Engine<'g> {
        let d = StorageDistribution::from_capacities(caps.to_vec());
        let mut e = Engine::new(g, Capacities::from_distribution(&d));
        e.start_initial().unwrap();
        e
    }

    /// The full §6 trace of the paper for γ = ⟨4, 2⟩:
    /// (1,0,0,0,0) → (1,0,0,2,0) → (0,2,0,4,0) → … throughput cycle.
    #[test]
    fn paper_trace_prefix() {
        let g = example();
        let mut e = engine(&g, &[4, 2]);
        assert_eq!(e.state().act_clk, vec![1, 0, 0]);
        assert_eq!(e.state().tokens, vec![0, 0]);

        e.step().unwrap(); // t=1: a completes (+2 on α), a restarts
        assert_eq!(e.state().act_clk, vec![1, 0, 0]);
        assert_eq!(e.state().tokens, vec![2, 0]);

        e.step().unwrap(); // t=2: a completes (+2), b starts; a blocked (space 0)
        assert_eq!(e.state().act_clk, vec![0, 2, 0]);
        assert_eq!(e.state().tokens, vec![4, 0]);

        e.step().unwrap(); // t=3: b still firing
        assert_eq!(e.state().act_clk, vec![0, 1, 0]);
        assert_eq!(e.state().tokens, vec![4, 0]);

        e.step().unwrap(); // t=4: b completes (−3 α, +1 β); a restarts; b lacks tokens
        assert_eq!(e.state().act_clk, vec![1, 0, 0]);
        assert_eq!(e.state().tokens, vec![1, 1]);

        // The execution reaches its periodic phase: the state at t=2 must
        // recur at t=9 (period 7, matching the paper's throughput 1/7).
        let snapshot = {
            let mut probe = engine(&g, &[4, 2]);
            probe.run_steps(2).unwrap();
            probe.state().clone()
        };
        let mut probe = engine(&g, &[4, 2]);
        probe.run_steps(9).unwrap();
        assert_eq!(probe.state(), &snapshot);
    }

    #[test]
    fn deadlock_detected_on_zero_capacity() {
        let g = example();
        // α can never hold the 2 tokens a produces.
        let mut e = Engine::new(
            &g,
            Capacities::from_distribution(&StorageDistribution::from_capacities(vec![1, 2])),
        );
        e.start_initial().unwrap();
        assert!(e.state().all_idle());
        assert_eq!(e.step().unwrap(), FiringOutcome::Deadlock);
        // Deadlock is stable.
        assert_eq!(e.step().unwrap(), FiringOutcome::Deadlock);
    }

    #[test]
    fn unbounded_capacities_never_block() {
        let g = example();
        let mut e = Engine::new(&g, Capacities::unbounded(2));
        e.start_initial().unwrap();
        for _ in 0..50 {
            match e.step().unwrap() {
                FiringOutcome::Progress(_) => {}
                FiringOutcome::Deadlock => panic!("unbounded execution must not deadlock"),
            }
        }
        // a fires every time step: after 50 steps it produced 100 tokens,
        // of which b consumed some.
        assert!(e.state().tokens[0] > 20);
    }

    #[test]
    fn events_report_starts_and_completions() {
        let g = example();
        let mut e = engine(&g, &[4, 2]);
        let a = g.actor_by_name("a").unwrap();
        let b = g.actor_by_name("b").unwrap();
        if let FiringOutcome::Progress(ev) = e.step().unwrap() {
            assert_eq!(ev.completed, vec![(a, 0)]);
            assert_eq!(ev.started, vec![(a, 0)]);
        } else {
            panic!("expected progress");
        }
        if let FiringOutcome::Progress(ev) = e.step().unwrap() {
            assert_eq!(ev.completed, vec![(a, 0)]);
            assert_eq!(ev.started, vec![(b, 0)]);
        } else {
            panic!("expected progress");
        }
    }

    #[test]
    fn generic_events_carry_phases() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let mut e = DataflowEngine::new(&g, Capacities::from_distribution(&d));
        let ev = e.start_initial().unwrap();
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(ev.started, vec![(a, 0)]);
        // SDF stays in phase 0 forever.
        let FiringOutcome::Progress(ev) = e.step().unwrap() else {
            panic!("expected progress");
        };
        assert_eq!(ev.completed, vec![(a, 0)]);
        assert!(e.state().phase.iter().all(|&p| p == 0));
    }

    #[test]
    fn zero_time_actor_fires_within_step() {
        // src (1 time unit) -> z (0 time) -> sink capacity blocks at 3.
        let mut bld = SdfGraph::builder("zt");
        let src = bld.actor("src", 1);
        let z = bld.actor("z", 0);
        bld.channel("c1", src, 1, z, 1).unwrap();
        bld.channel("c2", z, 1, src, 1).unwrap(); // feedback, no initial token
        let g = bld.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![1, 1]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        // Feedback channel needs a token for src to ever fire: deadlock now.
        e.start_initial().unwrap();
        assert_eq!(e.step().unwrap(), FiringOutcome::Deadlock);

        // With one initial token on the feedback channel the pair ping-pongs.
        let mut bld = SdfGraph::builder("zt2");
        let src = bld.actor("src", 1);
        let z = bld.actor("z", 0);
        bld.channel("c1", src, 1, z, 1).unwrap();
        bld.channel_with_tokens("c2", z, 1, src, 1, 1).unwrap();
        let g = bld.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![1, 1]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        e.start_initial().unwrap(); // src consumes the feedback token, starts
        assert_eq!(e.state().act_clk[src.index()], 1);
        let FiringOutcome::Progress(ev) = e.step().unwrap() else {
            panic!("expected progress");
        };
        // src completes; z fires instantly (zero time) and returns the
        // token; src restarts — all in the same step.
        assert!(ev.completed.contains(&(z, 0)));
        assert!(ev.started.iter().filter(|&&(a, _)| a == src).count() == 1);
        assert_eq!(e.state().act_clk[src.index()], 1);
    }

    #[test]
    fn zero_time_livelock_detected() {
        // Two zero-time actors exchanging a token forever within one step.
        let mut bld = SdfGraph::builder("ll");
        let x = bld.actor("x", 0);
        let y = bld.actor("y", 0);
        bld.channel_with_tokens("f", x, 1, y, 1, 0).unwrap();
        bld.channel_with_tokens("r", y, 1, x, 1, 1).unwrap();
        let g = bld.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![1, 1]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        assert_eq!(
            e.start_initial().unwrap_err(),
            AnalysisError::ZeroTimeLivelock
        );
    }

    #[test]
    fn self_loop_serializes_firings() {
        // One token on a self-loop: the actor can never overlap itself, and
        // with consumption at the end, the loop admits one firing at a time.
        let mut bld = SdfGraph::builder("sl");
        let x = bld.actor("x", 2);
        bld.channel_with_tokens("s", x, 1, x, 1, 1).unwrap();
        let g = bld.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![2]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        e.start_initial().unwrap();
        assert_eq!(e.state().act_clk, vec![2]);
        e.step().unwrap();
        assert_eq!(e.state().act_clk, vec![1]);
        e.step().unwrap(); // completes, token returns, restarts
        assert_eq!(e.state().act_clk, vec![2]);
    }

    #[test]
    fn self_loop_capacity_must_hold_production_plus_pending() {
        // Capacity 1 with 1 initial token: claiming 1 space fails (free=0),
        // so the actor deadlocks — the conservative claim semantics.
        let mut bld = SdfGraph::builder("sl2");
        let x = bld.actor("x", 1);
        bld.channel_with_tokens("s", x, 1, x, 1, 1).unwrap();
        let g = bld.build().unwrap();
        let d = StorageDistribution::from_capacities(vec![1]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        e.start_initial().unwrap();
        assert_eq!(e.step().unwrap(), FiringOutcome::Deadlock);
    }

    #[test]
    fn run_steps_counts_progress() {
        let g = example();
        let mut e = engine(&g, &[4, 2]);
        assert_eq!(e.run_steps(10).unwrap(), 10);
        assert_eq!(e.time(), 10);
        let mut e = engine(&g, &[1, 1]);
        assert_eq!(e.run_steps(10).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "start_initial")]
    fn step_before_start_panics() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4, 2]);
        let mut e = Engine::new(&g, Capacities::from_distribution(&d));
        let _ = e.step();
    }

    #[test]
    #[should_panic(expected = "every channel")]
    fn capacity_arity_checked() {
        let g = example();
        let d = StorageDistribution::from_capacities(vec![4]);
        let _ = Engine::new(&g, Capacities::from_distribution(&d));
    }
}
