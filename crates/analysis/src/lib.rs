//! # buffy-analysis
//!
//! Timed analyses for Synchronous Dataflow graphs, implementing the
//! execution model and state-space machinery of Stuijk, Geilen & Basten,
//! *"Exploring Trade-Offs in Buffer Requirements and Throughput Constraints
//! for Synchronous Dataflow Graphs"* (DAC 2006):
//!
//! - [`DataflowSemantics`]: the model interface of the unified kernel —
//!   every analysis below is written once, generically, and instantiated
//!   for SDF here and for CSDF in `buffy-csdf`;
//! - [`Engine`]: the deterministic self-timed executor (paper §2, §6) with
//!   claim-space-at-start / release-at-end buffer semantics and no
//!   auto-concurrency — the SDF view of the generic [`DataflowEngine`];
//! - [`throughput`]: throughput of an actor under a storage distribution
//!   via the *reduced* state space (paper §7);
//! - [`explore`]: the full timed state space (paper §6, Fig. 3), used as a
//!   didactic view and cross-check;
//! - [`Schedule`]: extraction, validation and Gantt rendering of the
//!   self-timed schedule (paper §4, Table 1);
//! - [`Hsdf`] and [`maximal_throughput`]: homogeneous expansion and
//!   maximum-cycle-ratio analysis giving the graph's maximal achievable
//!   throughput (paper §9, \[GG93\]);
//! - [`graph_algos`]: strongly connected components and topological order.
//!
//! # Example
//!
//! ```
//! use buffy_analysis::{maximal_throughput, throughput};
//! use buffy_graph::{Rational, SdfGraph, StorageDistribution};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SdfGraph::builder("example");
//! let a = b.actor("a", 1);
//! let bb = b.actor("b", 2);
//! let c = b.actor("c", 2);
//! b.channel("alpha", a, 2, bb, 3)?;
//! b.channel("beta", bb, 1, c, 2)?;
//! let g = b.build()?;
//!
//! // Throughput under the paper's storage distribution ⟨4, 2⟩ …
//! let r = throughput(&g, &StorageDistribution::from_capacities(vec![4, 2]), c)?;
//! assert_eq!(r.throughput, Rational::new(1, 7));
//! // … and the maximal achievable throughput over all distributions.
//! assert_eq!(maximal_throughput(&g, c)?, Rational::new(1, 4));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod budget;
mod dependencies;
mod energy;
mod engine;
mod error;
pub mod graph_algos;
mod hsdf;
mod interner;
mod latency;
mod mcm;
mod memory;
mod schedule;
mod semantics;
mod state_space;
mod static_bounds;
mod throughput;
pub mod transform;

pub use budget::{CancelReason, CancelToken};
pub use dependencies::{
    dependencies_from_run_for, throughput_with_dependencies, throughput_with_dependencies_for,
    DependencyReport,
};
pub use energy::{schedule_energy_per_iteration, EnergyModel};
pub use engine::{
    Capacities, DataflowEngine, DataflowState, Engine, FiringEvents, FiringOutcome, SdfState,
};
pub use error::{AnalysisError, LimitKind};
pub use hsdf::{Hsdf, HsdfEdge, HsdfNode};
pub use interner::{
    fx_hash, FxBuildHasher, FxHasher, Interned, ProbeStats, StateStore, PROBE_BINS,
};
pub use latency::{latency, LatencyReport};
pub use mcm::{
    max_cycle_ratio, max_cycle_ratio_brute_force, maximal_throughput, RatioEdge, RatioGraph,
};
pub use memory::{shared_memory_peak, SharedMemoryReport};
pub use schedule::{Firing, Schedule, ScheduleViolation};
pub use semantics::{bmlb, rate_step, DataflowSemantics};
pub use state_space::{explore, explore_for, StateSpace};
pub use static_bounds::{BoundCertificate, StaticBounds};
pub use throughput::{
    throughput, throughput_for, throughput_for_reusing, throughput_for_with_cancel,
    throughput_with_capacities, throughput_with_limits, AnalysisWorkspace, ExplorationLimits,
    ReducedState, ThroughputReport,
};
